"""Incremental recompilation measured: edit one leaf of a ≥20-module
project and rebuild.

The clean baseline compiles every module from scratch (empty cache);
the incremental rebuild starts from a warm cache after an edit to a
module nothing depends on, so exactly one module recompiles and the
rest replay as class skeletons from disk.  The acceptance bar (ISSUE:
incremental ≥ 5x clean) is asserted here, and the ratio is gated by
``compare.py``'s higher-is-better ``*_speedup`` rule as
``modules_incremental_speedup`` in ``BENCH_modules.json``.

Both paths also assert byte-identical combined artifacts — the
benchmark refuses to report a speedup bought with wrong output.
"""

import shutil
import statistics
import tempfile
import time

from conftest import record_metric, report

from repro.modules import MemorySources, ModuleBuilder

LAYERS = 7
WIDTH = 3
ROUNDS = 3
MIN_SPEEDUP = 5.0


def synthetic_project():
    """A layered DAG of ``LAYERS * WIDTH`` library modules plus one
    application root — 22 modules with WIDTH=3, LAYERS=7.

    ``lib.L<i>x<j>`` imports every module of the previous layer, so the
    dependency cone of an upper-layer edit is wide; ``app.Main`` (the
    edit target) imports the top layer and is depended on by nothing.
    """
    sources = {}
    for layer in range(LAYERS):
        for slot in range(WIDTH):
            name = f"lib.L{layer}x{slot}"
            imports, terms = "", [f"{layer + slot + 1}"]
            if layer:
                for dep in range(WIDTH):
                    imports += f"import lib.L{layer - 1}x{dep};\n"
                    terms.append(f"L{layer - 1}x{dep}.value()")
            helpers = "\n".join(
                f"    static int h{k}(int n) {{\n"
                f"        int total = 0;\n"
                f"        for (int i = 0; i < n; i++) {{\n"
                f"            if (i % {k + 2} == 0) {{ total += i; }}\n"
                f"            else {{ total -= {k}; }}\n"
                f"        }}\n"
                f"        return total;\n"
                f"    }}" for k in range(12))
            sources[name] = (
                f"{imports}"
                f"class L{layer}x{slot} {{\n"
                f"{helpers}\n"
                f"    static int value() "
                f"{{ return {' + '.join(terms)} + "
                f"L{layer}x{slot}.h0(3); }}\n"
                f"}}\n")
    top = "".join(f"import lib.L{LAYERS - 1}x{slot};\n"
                  for slot in range(WIDTH))
    calls = " + ".join(f"L{LAYERS - 1}x{slot}.value()"
                       for slot in range(WIDTH))
    sources["app.Main"] = (
        f"{top}class Main {{ static void main() "
        f"{{ System.out.println({calls}); }} }}\n")
    return sources


def build_ms(sources, cache_dir):
    started = time.perf_counter()
    result = ModuleBuilder(MemorySources(sources),
                           cache_dir=cache_dir).build(["app.Main"])
    return (time.perf_counter() - started) * 1000.0, result


def test_incremental_rebuild_speedup():
    sources = synthetic_project()
    clean_ms, incremental_ms = [], []
    scratch = tempfile.mkdtemp(prefix="bench-modules-")
    try:
        for round_no in range(ROUNDS):
            cache = f"{scratch}/round{round_no}"
            cold_ms, cold = build_ms(sources, cache)
            assert len(cold.order) >= 20
            assert cold.recompiled == cold.order

            edited = dict(sources)
            edited["app.Main"] = sources["app.Main"].replace(
                "System.out.println", f"/* edit {round_no} */ "
                                      "System.out.println")
            warm_ms, warm = build_ms(edited, cache)
            assert warm.recompiled == ["app.Main"]
            assert len(warm.reused) == len(cold.order) - 1

            # No speedup bought with wrong bytes: the incremental
            # artifact must match a from-scratch build of the edit.
            clean_of_edit = ModuleBuilder(
                MemorySources(edited)).build(["app.Main"])
            assert warm.expanded() == clean_of_edit.expanded()

            clean_ms.append(cold_ms)
            incremental_ms.append(warm_ms)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    clean = statistics.median(clean_ms)
    incremental = statistics.median(incremental_ms)
    speedup = clean / incremental
    modules = LAYERS * WIDTH + 1
    report(
        f"E16: leaf edit in a {modules}-module project "
        f"(median of {ROUNDS})",
        [["clean rebuild", f"{clean:.1f} ms", f"{modules} compiled"],
         ["incremental rebuild", f"{incremental:.1f} ms",
          f"1 compiled, {modules - 1} reused"],
         ["speedup", f"{speedup:.1f}x", f"bar: >= {MIN_SPEEDUP:.0f}x"]],
        header=["path", "median", "modules"])
    record_metric("modules_clean_build_ms", round(clean, 3), "ms")
    record_metric("modules_incremental_build_ms", round(incremental, 3),
                  "ms")
    record_metric("modules_incremental_speedup", round(speedup, 3), "x")
    assert speedup >= MIN_SPEEDUP, \
        f"incremental rebuild only {speedup:.1f}x faster than clean"
