"""Module-build performance: incremental, parallel, and deep-restore.

* **E16 — incremental rebuild**: edit one leaf of a ≥20-module project
  and rebuild from a warm cache; exactly one module recompiles.  Bar:
  ≥5x over clean.
* **E17a — parallel clean build**: a 100-module fan-out built with
  ``jobs=1`` vs ``jobs=cpu_count`` (fork workers, like mayac).  The
  ≥2x bar is asserted only on multi-core hosts — under the GIL on one
  CPU there is nothing to win and the honest ratio is ~1x — but the
  measured value is always recorded, and byte-equality always asserted.
  Deep-chain and diamond shapes are reported alongside for scheduling
  shape coverage (a 30-deep chain has zero exploitable parallelism; a
  diamond has exactly two lanes).
* **E17b — warm deep restore**: a warm ``need_bodies`` build with the
  deep (pickled checked-AST) artifact vs the same build forced down
  the expanded-source recompile path.  Bar: ≥2x.

Every ratio lands in ``BENCH_modules.json`` under ``*_speedup`` names,
so ``compare.py``'s higher-is-better rule gates regressions; every
path asserts byte-identical combined artifacts first — no speedup
bought with wrong output.
"""

import os
import shutil
import statistics
import tempfile
import time

from conftest import record_metric, report

from repro.modules import MemorySources, ModuleBuilder
from repro.modules.procpool import fork_available

LAYERS = 7
WIDTH = 3
ROUNDS = 3
MIN_SPEEDUP = 5.0
WIDE_MODULES = 100
CHAIN_DEPTH = 30
MIN_PARALLEL_SPEEDUP = 2.0
MIN_RESTORE_SPEEDUP = 2.0


def synthetic_project():
    """A layered DAG of ``LAYERS * WIDTH`` library modules plus one
    application root — 22 modules with WIDTH=3, LAYERS=7.

    ``lib.L<i>x<j>`` imports every module of the previous layer, so the
    dependency cone of an upper-layer edit is wide; ``app.Main`` (the
    edit target) imports the top layer and is depended on by nothing.
    """
    sources = {}
    for layer in range(LAYERS):
        for slot in range(WIDTH):
            name = f"lib.L{layer}x{slot}"
            imports, terms = "", [f"{layer + slot + 1}"]
            if layer:
                for dep in range(WIDTH):
                    imports += f"import lib.L{layer - 1}x{dep};\n"
                    terms.append(f"L{layer - 1}x{dep}.value()")
            helpers = "\n".join(
                f"    static int h{k}(int n) {{\n"
                f"        int total = 0;\n"
                f"        for (int i = 0; i < n; i++) {{\n"
                f"            if (i % {k + 2} == 0) {{ total += i; }}\n"
                f"            else {{ total -= {k}; }}\n"
                f"        }}\n"
                f"        return total;\n"
                f"    }}" for k in range(12))
            sources[name] = (
                f"{imports}"
                f"class L{layer}x{slot} {{\n"
                f"{helpers}\n"
                f"    static int value() "
                f"{{ return {' + '.join(terms)} + "
                f"L{layer}x{slot}.h0(3); }}\n"
                f"}}\n")
    top = "".join(f"import lib.L{LAYERS - 1}x{slot};\n"
                  for slot in range(WIDTH))
    calls = " + ".join(f"L{LAYERS - 1}x{slot}.value()"
                       for slot in range(WIDTH))
    sources["app.Main"] = (
        f"{top}class Main {{ static void main() "
        f"{{ System.out.println({calls}); }} }}\n")
    return sources


def build_ms(sources, cache_dir):
    started = time.perf_counter()
    result = ModuleBuilder(MemorySources(sources),
                           cache_dir=cache_dir).build(["app.Main"])
    return (time.perf_counter() - started) * 1000.0, result


def test_incremental_rebuild_speedup():
    sources = synthetic_project()
    clean_ms, incremental_ms = [], []
    scratch = tempfile.mkdtemp(prefix="bench-modules-")
    try:
        for round_no in range(ROUNDS):
            cache = f"{scratch}/round{round_no}"
            cold_ms, cold = build_ms(sources, cache)
            assert len(cold.order) >= 20
            assert cold.recompiled == cold.order

            edited = dict(sources)
            edited["app.Main"] = sources["app.Main"].replace(
                "System.out.println", f"/* edit {round_no} */ "
                                      "System.out.println")
            warm_ms, warm = build_ms(edited, cache)
            assert warm.recompiled == ["app.Main"]
            assert len(warm.reused) == len(cold.order) - 1

            # No speedup bought with wrong bytes: the incremental
            # artifact must match a from-scratch build of the edit.
            clean_of_edit = ModuleBuilder(
                MemorySources(edited)).build(["app.Main"])
            assert warm.expanded() == clean_of_edit.expanded()

            clean_ms.append(cold_ms)
            incremental_ms.append(warm_ms)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    clean = statistics.median(clean_ms)
    incremental = statistics.median(incremental_ms)
    speedup = clean / incremental
    modules = LAYERS * WIDTH + 1
    report(
        f"E16: leaf edit in a {modules}-module project "
        f"(median of {ROUNDS})",
        [["clean rebuild", f"{clean:.1f} ms", f"{modules} compiled"],
         ["incremental rebuild", f"{incremental:.1f} ms",
          f"1 compiled, {modules - 1} reused"],
         ["speedup", f"{speedup:.1f}x", f"bar: >= {MIN_SPEEDUP:.0f}x"]],
        header=["path", "median", "modules"])
    record_metric("modules_clean_build_ms", round(clean, 3), "ms")
    record_metric("modules_incremental_build_ms", round(incremental, 3),
                  "ms")
    record_metric("modules_incremental_speedup", round(speedup, 3), "x")
    assert speedup >= MIN_SPEEDUP, \
        f"incremental rebuild only {speedup:.1f}x faster than clean"


def _body(name: str, terms, helpers: int = 6) -> str:
    """One synthetic class with enough method-body work that a module
    compile is dominated by real lex/parse/check, not fixed overhead."""
    methods = "\n".join(
        f"    static int h{k}(int n) {{\n"
        f"        int total = 0;\n"
        f"        for (int i = 0; i < n; i++) {{\n"
        f"            if (i % {k + 2} == 0) {{ total += i; }}\n"
        f"            else {{ total -= {k}; }}\n"
        f"        }}\n"
        f"        return total;\n"
        f"    }}" for k in range(helpers))
    value = " + ".join(list(terms) + [f"{name}.h0(3)"])
    return (f"class {name} {{\n{methods}\n"
            f"    static int value() {{ return {value}; }}\n}}\n")


def wide_project(width: int = WIDE_MODULES):
    """``width`` mutually independent leaves plus one root importing
    them all: the maximally parallel shape."""
    sources = {}
    for slot in range(width):
        sources[f"lib.W{slot}"] = _body(f"W{slot}", [str(slot)])
    imports = "".join(f"import lib.W{slot};\n" for slot in range(width))
    calls = " + ".join(f"W{slot}.value()" for slot in range(width))
    sources["app.Main"] = (
        f"{imports}class Main {{ static void main() "
        f"{{ System.out.println({calls}); }} }}\n")
    return sources


def chain_project(depth: int = CHAIN_DEPTH):
    """A ``depth``-long single chain: zero exploitable parallelism —
    the scheduler must degrade to serial without added cost."""
    sources = {"lib.C0": _body("C0", ["1"])}
    for link in range(1, depth):
        sources[f"lib.C{link}"] = (
            f"import lib.C{link - 1};\n"
            + _body(f"C{link}", [f"C{link - 1}.value()"]))
    sources["app.Main"] = (
        f"import lib.C{depth - 1};\nclass Main {{ static void main() "
        f"{{ System.out.println(C{depth - 1}.value()); }} }}\n")
    return sources


def diamond_project():
    """Root → two independent lanes of 10 → joined tip: exactly two
    lanes of parallelism with a barrier at each end."""
    sources = {"lib.Base": _body("Base", ["1"])}
    for lane in ("A", "B"):
        prev = "Base"
        for step in range(10):
            name = f"{lane}{step}"
            sources[f"lib.{name}"] = (
                f"import lib.{prev};\n"
                + _body(name, [f"{prev}.value()"]))
            prev = name
    sources["app.Main"] = (
        "import lib.A9;\nimport lib.B9;\n"
        "class Main { static void main() "
        "{ System.out.println(A9.value() + B9.value()); } }\n")
    return sources


def _timed_build(sources, jobs: int, mode: str, cache_dir=None,
                 need_bodies: bool = False, deep_restore: bool = True):
    builder = ModuleBuilder(MemorySources(sources), cache_dir=cache_dir,
                            jobs=jobs, mode=mode,
                            deep_restore=deep_restore)
    started = time.perf_counter()
    result = builder.build(["app.Main"], need_bodies=need_bodies)
    return (time.perf_counter() - started) * 1000.0, result


def test_parallel_clean_speedup():
    """E17a: fan a clean build over the import DAG."""
    cpus = os.cpu_count() or 1
    jobs = max(2, min(cpus, 8))
    mode = "fork" if fork_available() else "thread"

    shapes = []
    wide = wide_project()
    serial_ms, parallel_ms = [], []
    for _ in range(ROUNDS):
        one_ms, one = _timed_build(wide, 1, mode)
        many_ms, many = _timed_build(wide, jobs, mode)
        assert many.expanded() == one.expanded()
        assert many.report() == one.report()
        serial_ms.append(one_ms)
        parallel_ms.append(many_ms)
    serial = statistics.median(serial_ms)
    parallel = statistics.median(parallel_ms)
    speedup = serial / parallel
    shapes.append([f"wide ({WIDE_MODULES}+1 modules)",
                   f"{serial:.0f} ms", f"{parallel:.0f} ms",
                   f"{speedup:.2f}x"])

    for label, sources in (("deep (30-chain)", chain_project()),
                           ("diamond (2 lanes x 10)", diamond_project())):
        one_ms, one = _timed_build(sources, 1, mode)
        many_ms, many = _timed_build(sources, jobs, mode)
        assert many.expanded() == one.expanded()
        shapes.append([label, f"{one_ms:.0f} ms", f"{many_ms:.0f} ms",
                       f"{one_ms / many_ms:.2f}x"])

    report(
        f"E17a: parallel clean builds, jobs=1 vs jobs={jobs} "
        f"({mode} workers, {cpus} CPUs, median of {ROUNDS} for wide)",
        shapes,
        header=["shape", "jobs=1", f"jobs={jobs}", "speedup"])
    record_metric("modules_parallel_clean_speedup", round(speedup, 3), "x")
    record_metric("modules_parallel_wide_jobs1_ms", round(serial, 3), "ms")
    record_metric("modules_parallel_wide_jobsN_ms", round(parallel, 3),
                  "ms")
    if cpus >= 2 and mode == "fork":
        assert speedup >= MIN_PARALLEL_SPEEDUP, \
            f"wide clean build only {speedup:.2f}x with {cpus} CPUs"
    else:
        # One CPU (or no fork): nothing to win under the GIL; the bar
        # is scheduling overhead staying small, not a speedup.
        assert speedup >= 0.5, \
            f"parallel scheduling overhead too high ({speedup:.2f}x)"


def test_warm_restore_speedup():
    """E17b: deep (checked-AST) restore vs expanded-source recompile
    on a warm ``need_bodies`` build."""
    sources = synthetic_project()
    scratch = tempfile.mkdtemp(prefix="bench-deep-")
    shallow_ms, deep_ms = [], []
    try:
        _timed_build(sources, 1, "thread", cache_dir=scratch)  # warm it
        baseline = None
        for _ in range(ROUNDS):
            cold_ms, cold = _timed_build(sources, 1, "thread",
                                         cache_dir=scratch,
                                         need_bodies=True,
                                         deep_restore=False)
            warm_ms, warm = _timed_build(sources, 1, "thread",
                                         cache_dir=scratch,
                                         need_bodies=True,
                                         deep_restore=True)
            assert cold.reused == cold.order
            assert warm.reused == warm.order
            assert warm.expanded() == cold.expanded()
            if baseline is None:
                baseline = cold.expanded()
            assert warm.expanded() == baseline
            shallow_ms.append(cold_ms)
            deep_ms.append(warm_ms)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    shallow = statistics.median(shallow_ms)
    deep = statistics.median(deep_ms)
    speedup = shallow / deep
    modules = LAYERS * WIDTH + 1
    report(
        f"E17b: warm materialization of a {modules}-module project "
        f"(median of {ROUNDS})",
        [["expanded-source recompile", f"{shallow:.1f} ms",
          "lex+parse+check per module"],
         ["deep AST restore", f"{deep:.1f} ms",
          "unpickle+shape+check only"],
         ["speedup", f"{speedup:.1f}x",
          f"bar: >= {MIN_RESTORE_SPEEDUP:.0f}x"]],
        header=["path", "median", "work"])
    record_metric("modules_warm_shallow_ms", round(shallow, 3), "ms")
    record_metric("modules_warm_deep_ms", round(deep, 3), "ms")
    record_metric("modules_warm_restore_speedup", round(speedup, 3), "x")
    assert speedup >= MIN_RESTORE_SPEEDUP, \
        f"deep restore only {speedup:.1f}x over expanded-source recompile"
