"""E5/E6: pattern parsing — figure 6's algorithm and figure 5's
parameter-structure inference, timed."""

from conftest import make_compiler, report

from repro.grammar import Grammar, nonterminal
from repro.lalr import build_tables
from repro.lalr.tables import tables_for
from repro.lexer import scan
from repro.patterns import compile_parameter_list, lex_pattern
from repro.patterns.items import HoleItem, TokItem
from repro.patterns.pattern_parser import PatternParser

EFOREACH_PATTERN = (
    "Expression:java.util.Enumeration enumExp \\. foreach "
    "(Formal var) lazy(BraceTree, BlockStmts) body"
)

VFOREACH_PATTERN = (
    "Expression:maya.util.Vector v \\. elements ( ) \\. foreach "
    "(Formal var) lazy(BraceTree, BlockStmts) body"
)


def _foreach_env():
    compiler = make_compiler(macros=True)
    env = compiler.env.child()
    compiler.env.find_metaprogram(["maya", "util", "ForEach"]).run(env)
    return env


def test_e5_parameter_list_inference(benchmark):
    """Figure 5/7: infer EForEach's and VForEach's structures."""
    env = _foreach_env()
    tables = tables_for(env.grammar)

    def compile_both():
        e = compile_parameter_list(tables, "Statement", EFOREACH_PATTERN)
        v = compile_parameter_list(tables, "Statement", VFOREACH_PATTERN)
        return e, v

    (e_prod, e_params, _), (v_prod, v_params, _) = benchmark(compile_both)
    assert e_prod is v_prod  # both Mayans implement one production
    report("E5: inferred parameter structures", [
        ["EForEach", " ".join(repr(p) for p in e_params)],
        ["VForEach", " ".join(repr(p) for p in v_params)],
    ])


def _fig6_tables():
    g = Grammar("fig6-bench")
    A = nonterminal("B6A")
    D = nonterminal("B6D")
    F = nonterminal("B6F")
    S = nonterminal("B6S")
    ident = lambda ctx, v: tuple(v)
    for sym, rhs, tag in [
        (A, ["a"], "b6_Aa"), (A, ["b"], "b6_Ab"), (A, ["c"], "b6_Ac"),
        (D, ["d"], "b6_Dd"), (F, ["f"], "b6_Ff"),
        (S, [D, "e", A], "b6_SDeA"), (S, [F, A], "b6_SFA"),
    ]:
        g.add_production(sym, rhs, tag=tag, action=ident, internal=True)
    g.declare_start(S, A, D, F)
    return build_tables(g)


def test_e6_fig6_cases(benchmark):
    """The paper's figure-6 inputs, parsed repeatedly."""
    tables = _fig6_tables()
    parser = PatternParser(tables, driver_nonterminals=())
    A = nonterminal("B6A")

    def items(*specs):
        return [TokItem(scan(s)[0]) if isinstance(s, str)
                else HoleItem(s, name="h") for s in specs]

    case_b = items("d", "e", A)   # goto followed directly
    case_c = items("f", A)        # FIRST(A) forces the F -> f reduction

    def run_cases():
        tree_b, _ = parser.parse("B6S", case_b)
        tree_c, _ = parser.parse("B6S", case_c)
        return tree_b, tree_c

    tree_b, tree_c = benchmark(run_cases)
    report("E6: figure-6 pattern parses", [
        ["(b) d e .A", tree_b.production.tag],
        ["(c) f .A", tree_c.production.tag],
    ])
    assert tree_b.production.tag == "b6_SDeA"
    assert tree_c.production.tag == "b6_SFA"


def test_e5_template_compilation_throughput(benchmark):
    """Static template checking cost (paid once per template)."""
    from repro.patterns import Template

    env = _foreach_env()

    def compile_template():
        template = Template(
            "Statement",
            """
            for (java.util.Enumeration e = $x; e.hasMoreElements(); ) {
                $decl
                $ref = ($t) e.nextElement();
                $body
            }
            """,
            x="Expression", decl="Statement", ref="Expression",
            t="TypeName", body="BlockStmts",
        )
        return template.compiled(env)

    compiled = benchmark(compile_template)
    assert compiled is not None
