"""Shared benchmark helpers.

Every benchmark regenerates a paper artifact (see DESIGN.md's
experiment index) and prints the rows it reproduces, so EXPERIMENTS.md
can quote them; pytest-benchmark adds the timing table.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import MayaCompiler
from repro.interp import Interpreter
from repro.macros import install_macro_library
from repro.multijava import install_multijava


def make_compiler(macros: bool = False, multijava: bool = False) -> MayaCompiler:
    compiler = MayaCompiler()
    if macros:
        install_macro_library(compiler)
    if multijava:
        install_multijava(compiler)
    return compiler


def compile_and_run(source: str, cls: str = "Demo", macros: bool = False,
                    multijava: bool = False) -> Interpreter:
    program = make_compiler(macros, multijava).compile(source)
    interp = Interpreter(program)
    interp.run_static(cls)
    return interp


def report(title: str, rows, header=None) -> None:
    print()
    print(f"== {title} ==")
    if header:
        print("  " + " | ".join(str(h) for h in header))
    for row in rows:
        print("  " + " | ".join(str(cell) for cell in row))
