"""Shared benchmark helpers.

Every benchmark regenerates a paper artifact (see DESIGN.md's
experiment index) and prints the rows it reproduces, so EXPERIMENTS.md
can quote them; pytest-benchmark adds the timing table.

Results are additionally written as machine-readable JSON: every
``report``/``record_metric`` call lands in ``BENCH_<area>.json`` at the
repository root (area = the calling ``bench_<area>.py`` file), so the
performance trajectory is tracked across PRs instead of living only in
scrollback.
"""

import atexit
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import MayaCompiler
from repro.interp import Interpreter
from repro.macros import install_macro_library
from repro.multijava import install_multijava

_REPO_ROOT = Path(__file__).resolve().parent.parent

# area -> {"reports": {title: rows}, "metrics": {name: {...}}}
_RESULTS = {}


def make_compiler(macros: bool = False, multijava: bool = False) -> MayaCompiler:
    compiler = MayaCompiler()
    if macros:
        install_macro_library(compiler)
    if multijava:
        install_multijava(compiler)
    return compiler


def compile_and_run(source: str, cls: str = "Demo", macros: bool = False,
                    multijava: bool = False) -> Interpreter:
    program = make_compiler(macros, multijava).compile(source)
    interp = Interpreter(program)
    interp.run_static(cls)
    return interp


def _caller_area(depth: int = 2) -> str:
    """The bench area of the calling module: bench_<area>.py -> <area>."""
    filename = Path(sys._getframe(depth).f_code.co_filename).stem
    if filename.startswith("bench_"):
        return filename[len("bench_"):]
    return filename


def _area_results(area: str) -> dict:
    return _RESULTS.setdefault(area, {"reports": {}, "metrics": {}})


def report(title: str, rows, header=None, area: str = None) -> None:
    print()
    print(f"== {title} ==")
    if header:
        print("  " + " | ".join(str(h) for h in header))
    for row in rows:
        print("  " + " | ".join(str(cell) for cell in row))
    entry = {"rows": [[str(cell) for cell in row] for row in rows]}
    if header:
        entry["header"] = [str(h) for h in header]
    _area_results(area or _caller_area())["reports"][title] = entry


def record_metric(name: str, value, unit: str = "", area: str = None) -> None:
    """Record one machine-readable number for BENCH_<area>.json."""
    _area_results(area or _caller_area())["metrics"][name] = {
        "value": value,
        "unit": unit,
    }


@atexit.register
def _flush_results() -> None:
    for area, payload in _RESULTS.items():
        path = _REPO_ROOT / f"BENCH_{area}.json"
        try:
            path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        except OSError:
            pass
