"""E9: MultiJava — translation correctness and dispatcher cost.

Regenerates the paper's section-5.2 class-D translation, measures the
Maya-based MultiJava compile, and compares the generated figure-8
dispatcher against the hand-built baseline (the analogue of patching
the compiler directly, section 5.3's comparison axis).
"""

import time

from conftest import compile_and_run, make_compiler, record_metric, report

from repro.interp import Interpreter
from repro.multijava import DirectMultimethodCompiler

PAPER_EXAMPLE = """
    use multijava.MultiJava;
    class C { }
    class D extends C {
        int m(C c) { return 0; }
        int m(C@D c) { return 1; }
    }
    class Demo {
        static void main() {
            D d = new D();
            int total = 0;
            for (int i = 0; i < 200; i++) {
                total += d.m(new C()) + d.m(new D());
            }
            System.out.println(total);
        }
    }
"""


def test_e9_paper_translation(benchmark):
    program = benchmark(
        lambda: make_compiler(multijava=True).compile(PAPER_EXAMPLE))
    source = program.source()
    rows = [[line.strip()] for line in source.splitlines()
            if "$impl" in line or "instanceof" in line]
    report("E9: section-5.2 class D translation", rows)
    # Best-of-N compile time, tracked across PRs (the benchmark
    # fixture's stats are not exported to BENCH_multijava.json).
    best = min(
        _timed(lambda: make_compiler(multijava=True).compile(PAPER_EXAMPLE))
        for _ in range(3))
    record_metric("mj_translation_ms", round(best * 1e3, 3), "ms")
    assert "private int m$impl1(C c)" in source
    assert "instanceof D" in source


def _timed(thunk):
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start


def test_e9_runtime_dispatch(benchmark):
    def run():
        return compile_and_run(PAPER_EXAMPLE, multijava=True)

    interp = benchmark(run)
    assert interp.output == ["200"]
    # Dispatch throughput through the generated dispatcher (program
    # compiled once; interpretation only).
    program = make_compiler(multijava=True).compile(PAPER_EXAMPLE)
    best = float("inf")
    calls = None
    for _ in range(3):
        timed_interp = Interpreter(program)
        start = time.perf_counter()
        timed_interp.run_static("Demo")
        best = min(best, time.perf_counter() - start)
        calls = timed_interp.counters.method_calls
    record_metric("mj_dispatch_calls_per_s", round(calls / best),
                  "calls/s")


def test_e9_generated_vs_baseline_dispatcher(benchmark):
    """The Maya-generated dispatcher and the hand-built baseline must
    agree — and cost the same at runtime (both are instanceof chains)."""
    # Maya-generated version.
    maya_program = make_compiler(multijava=True).compile("""
        use multijava.MultiJava;
        class C { }
        class D extends C { }
        class E extends D { }
        class Host {
            int m(C c) { return 0; }
            int m(C@D c) { return 1; }
            int m(C@E c) { return 2; }
        }
        class Demo {
            static int go() {
                Host h = new Host();
                int total = 0;
                for (int i = 0; i < 100; i++) {
                    total += h.m(new C()) + h.m(new D()) + h.m(new E());
                }
                return total;
            }
        }
    """)
    maya_interp = Interpreter(maya_program)
    maya_result = maya_interp.run_static("Demo", "go")

    # Baseline: same impls, dispatcher hand-built without Maya.  The
    # dispatcher is attached between the two compiles (the unit that
    # calls it must see it).
    base_compiler = make_compiler()
    base_program = base_compiler.compile("""
        class C { }
        class D extends C { }
        class E extends D { }
        class Host {
            int m$1(C c) { return 0; }
            int m$2(D c) { return 1; }
            int m$3(E c) { return 2; }
        }
    """)
    registry = base_program.env.registry
    host = registry.require("Host")
    from repro.types import INT

    direct = DirectMultimethodCompiler(
        host, "m", [registry.require("C")], INT)
    direct.add_case([None], "m$1")
    direct.add_case([registry.require("D")], "m$2")
    direct.add_case([registry.require("E")], "m$3")
    dispatcher = direct.build_dispatcher()
    method = host.declare_method(
        "m", [registry.require("C")], INT, ("public",), decl=dispatcher)
    dispatcher.method = method
    # Bind and check the generated body.
    from repro.typecheck import Scope, check_block

    scope = Scope(env=base_program.env).class_scope(host) \
        .method_scope(host, False, INT)
    for formal, param_type in zip(dispatcher.formals, method.param_types):
        formal.scope = scope
        scope.define(formal.name.name, param_type, "param", formal)
    check_block(dispatcher.body, scope)

    base_program = base_compiler.compile("""
        class Demo {
            static int go() {
                Host h = new Host();
                int total = 0;
                for (int i = 0; i < 100; i++) {
                    total += h.m(new C()) + h.m(new D()) + h.m(new E());
                }
                return total;
            }
        }
    """)
    base_interp = Interpreter(base_program)
    base_result = base_interp.run_static("Demo", "go")

    assert maya_result == base_result == 300

    maya_ops = None

    def timed():
        interp = Interpreter(maya_program)
        interp.run_static("Demo", "go")
        return interp.counters.method_calls

    maya_ops = benchmark(timed)
    base_ops_interp = Interpreter(base_program)
    base_ops_interp.run_static("Demo", "go")
    report("E9: generated vs hand-built dispatcher", [
        ["maya-generated result", maya_result],
        ["baseline result", base_result],
        ["maya method calls", maya_ops],
        ["baseline method calls", base_ops_interp.counters.method_calls],
    ])


def test_e9_open_class_compile(benchmark):
    source = """
        use multijava.MultiJava;
        class Shape { }
        class Circle extends Shape { }
        int Shape.sides() { return 0; }
        int Circle.sides() { return 1; }
        class Demo {
            static void main() {
                Shape s = new Circle();
                System.out.println(s.sides());
            }
        }
    """
    interp = benchmark(lambda: compile_and_run(source, multijava=True))
    assert interp.output == ["1"]
