"""The compile service's reason to exist, measured: a warm mayad
answering repeated compiles versus a cold one-shot mayac.

The cold baseline regenerates everything a fresh ``mayac`` process
would — a new compiler, the macro library, and the LALR tables (the
in-memory cache is bypassed) — per compile.  The warm path sends the
same corpus through a prewarmed daemon over real sockets, with the
content-addressed artifact cache *disabled*, so the speedup measures
shared grammar/table state, not response replay.  The acceptance bar
(ISSUE: warm ≥ 5x cold) is asserted here and the throughput number is
gated by ``compare.py``'s ``*_requests_per_s`` rule.
"""

import statistics
import time

from conftest import record_metric, report

from repro.lalr.tables import bypass_caches
from repro.server import DaemonConfig, MayaClient, MayaDaemon

WARM_REQUESTS = 60
COLD_COMPILES = 3


def corpus_source(index: int) -> str:
    return f"""
        import java.util.*;
        class Bench{index} {{
            static void main() {{
                use maya.util.ForEach;
                Vector v = new Vector();
                v.addElement("r{index}");
                v.elements().foreach(String s) {{
                    System.out.println(s);
                }}
            }}
        }}
    """


def cold_compile_ms(index: int) -> float:
    """One fully cold compile: fresh compiler, macro library, and LALR
    tables built from scratch (as a new mayac process would)."""
    from repro import MayaCompiler
    from repro.macros import install_macro_library

    started = time.perf_counter()
    with bypass_caches():
        compiler = MayaCompiler()
        install_macro_library(compiler)
        compiler.compile(corpus_source(index), f"cold{index}.maya")
    return (time.perf_counter() - started) * 1000.0


def percentile(values, fraction: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1,
                       int(len(ordered) * fraction))]


def test_warm_daemon_vs_cold_mayac():
    cold_ms = [cold_compile_ms(i) for i in range(COLD_COMPILES)]
    cold = statistics.mean(cold_ms)

    server = MayaDaemon(DaemonConfig(workers=2, prewarm=True)).start()
    try:
        client = MayaClient(server.address, retries=0)
        warm_ms = []
        for index in range(WARM_REQUESTS):
            started = time.perf_counter()
            response = client.compile(corpus_source(index),
                                      f"warm{index}.maya", cache=False)
            warm_ms.append((time.perf_counter() - started) * 1000.0)
            assert response["status"] == "ok"
    finally:
        server.stop()

    p50 = percentile(warm_ms, 0.50)
    p99 = percentile(warm_ms, 0.99)
    mean = statistics.mean(warm_ms)
    requests_per_s = 1000.0 / mean
    speedup = cold / mean

    report("Warm mayad vs cold mayac", [
        ["cold mayac compile (mean of "
         f"{COLD_COMPILES})", f"{cold:.1f} ms"],
        ["warm daemon request (mean of "
         f"{WARM_REQUESTS})", f"{mean:.2f} ms"],
        ["warm p50 / p99", f"{p50:.2f} / {p99:.2f} ms"],
        ["warm throughput", f"{requests_per_s:.0f} requests/s"],
        ["speedup", f"{speedup:.0f}x"],
    ])
    record_metric("server_cold_mayac_ms", round(cold, 2), "ms")
    record_metric("server_warm_p50_ms", round(p50, 3), "ms")
    record_metric("server_warm_p99_ms", round(p99, 3), "ms")
    record_metric("server_warm_requests_per_s",
                  round(requests_per_s, 1), "requests/s")
    record_metric("server_warm_speedup", round(speedup, 1), "x")

    # The acceptance bar: a warm daemon must beat cold mayac 5x over.
    assert speedup >= 5.0, (
        f"warm daemon only {speedup:.1f}x faster than cold mayac")


def test_artifact_cache_replay_is_near_instant():
    """With caching on, repeating a request skips the queue entirely."""
    server = MayaDaemon(DaemonConfig(workers=2, prewarm=True)).start()
    try:
        client = MayaClient(server.address, retries=0)
        source = corpus_source(0)
        first = client.compile(source, "replay.maya", expand=True)
        assert first["status"] == "ok"
        replay_ms = []
        for _ in range(20):
            started = time.perf_counter()
            response = client.compile(source, "replay.maya",
                                      expand=True)
            replay_ms.append((time.perf_counter() - started) * 1000.0)
            assert response["cached"] is True
    finally:
        server.stop()
    p50 = percentile(replay_ms, 0.50)
    report("Artifact-cache replay", [
        ["replay p50 (socket round-trip)", f"{p50:.2f} ms"],
    ])
    record_metric("server_replay_p50_ms", round(p50, 3), "ms")
