"""E7: Mayan dispatch overhead.

Measures the per-reduction cost of the dispatcher as the number of
imported Mayans on a production grows, and the win/lose structure of
the specificity rules (VForEach > EForEach) on real input.
"""

from conftest import make_compiler, record_metric, report

from repro.ast import nodes as n
from repro.core import CompileContext, CompileEnv
from repro.dispatch import Mayan
from repro.lalr import Parser
from repro.lexer import stream_lex


def _literal_mayan(tag):
    class Tagged(Mayan):
        result = "Literal"
        pattern = "IntLit value"

        def expand(self, ctx, value):
            return ctx.next_rewrite()

    Tagged.__name__ = f"Tagged{tag}"
    return Tagged()


def _parse_many(env, count=50):
    ctx = CompileContext(env)
    parser = Parser(env.tables(), ctx)
    tokens = stream_lex("1 + 2 * 3 - 4 / 5")
    for _ in range(count):
        parser.parse("Expression", tokens)


def test_e7_dispatch_scaling(benchmark):
    """Reduction cost with 0 vs 8 chained Mayans on one production."""
    bare = CompileEnv()
    loaded = CompileEnv()
    for index in range(8):
        _literal_mayan(index).run(loaded)

    import time

    # Warm both environments (tables, dispatch plans, specializer
    # compilation) so the timed runs measure steady-state reductions.
    _parse_many(bare, count=5)
    _parse_many(loaded, count=5)

    start = time.perf_counter()
    _parse_many(bare)
    bare_time = time.perf_counter() - start
    start = time.perf_counter()
    _parse_many(loaded)
    loaded_time = time.perf_counter() - start

    # 44 dispatched reductions per "1 + 2 * 3 - 4 / 5" parse (5 hit the
    # Mayan chain on Literal; the rest take the no-Mayan fast path).
    reductions = 50 * 44
    report("E7: dispatch overhead (50 expression parses)", [
        ["no user Mayans", f"{bare_time * 1e3:.2f} ms"],
        ["8 chained Mayans", f"{loaded_time * 1e3:.2f} ms"],
        ["ratio", f"{loaded_time / bare_time:.2f}x"],
    ])
    record_metric("parse_50_exprs_no_mayans_ms", round(bare_time * 1e3, 3), "ms")
    record_metric("parse_50_exprs_8_mayans_ms", round(loaded_time * 1e3, 3), "ms")
    record_metric("per_reduction_8_mayans_us",
                  round(loaded_time * 1e6 / reductions, 3), "us")
    record_metric("overhead_ratio_8_vs_0", round(loaded_time / bare_time, 2), "x")

    benchmark(lambda: _parse_many(loaded, count=10))


def test_e7_specificity_selection(benchmark):
    """VForEach selected over EForEach by structure+type specificity;
    measured on the same production with both imported."""
    source = """
        class Demo {
            static void main() {
                use maya.util.ForEach;
                maya.util.Vector v = new maya.util.Vector();
                v.addElement("x");
                v.elements().foreach(String s) { int n = s.length(); }
            }
        }
    """

    def compile_it():
        return make_compiler(macros=True).compile(source)

    program = benchmark(compile_it)
    expanded = program.source()
    assert "getElementData" in expanded
    report("E7: most-specific Mayan selected", [
        ["input", "v.elements().foreach(...) with v : maya.util.Vector"],
        ["selected", "VForEach (structure + static-type specializers)"],
        ["evidence", "expansion calls getElementData, no Enumeration"],
    ])


def test_e7_dispatch_count(benchmark):
    """Total dispatcher invocations for a small compile."""
    compiler = make_compiler(macros=True)
    program = compiler.compile("""
        class Counted {
            static int f(int x) { return x * 2 + 1; }
        }
    """)
    count = compiler.env.dispatcher.dispatch_count
    report("E7: dispatcher reductions for a 3-line class", [
        ["reductions dispatched", count],
    ])
    assert count > 0

    benchmark(lambda: make_compiler().compile("class X { int f; }"))
