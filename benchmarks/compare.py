"""The perf-regression gate: diff fresh BENCH_*.json against baselines.

Every benchmark run writes machine-readable numbers into
``BENCH_<area>.json`` (see conftest.report / conftest.record_metric);
the committed copies at the repository root are the baselines.  CI
snapshots those baselines, re-runs the benchmarks, then calls::

    python benchmarks/compare.py --baseline ci-baselines --current .

which exits non-zero if any tracked metric regressed beyond its
tolerance.  Tolerances are deliberately loose (shared CI runners are
noisy); ``--tolerance-scale`` loosens or tightens them uniformly, so a
flaky runner can run with ``--tolerance-scale 2`` without editing the
per-metric rules.

What counts as a regression:

* timing metrics (unit ``ms``/``us``/``s``) are lower-is-better;
* ratio metrics matched by name (``overhead_ratio*``,
  ``fingerprint_size_ratio``) are lower-is-better — they measure
  overhead, and ``fingerprint_size_ratio`` growing past ~1 would mean
  grammar fingerprinting stopped being O(1);
* laziness percentages (``*never_forced_pct``, ``*never_parsed_pct``)
  are higher-is-better — a drop means the compiler started eagerly
  parsing work it used to skip;
* backend speedups (``*_speedup``), dispatch throughput
  (``*_calls_per_s``) and inline-cache hit rates (``*_hit_rate_pct``)
  are higher-is-better — a drop means the closure backend's payoff
  shrank;
* budget metrics (``*_overhead_pct``) are gated by an *absolute*
  ceiling, not a trajectory: observability overhead must stay under
  its 5% budget regardless of how the baseline drifted — relative
  change on a near-zero baseline is meaningless noise;
* a metric present in the baseline but missing from the fresh run is a
  regression too (the benchmark lost coverage);
* anything else (counts, unclassified units) is reported as
  informational but never fails the gate.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: (name glob, direction, relative tolerance).  First match wins;
#: checked before the unit-based default so names can override units.
NAME_RULES: Tuple[Tuple[str, str, float], ...] = (
    ("*never_forced*", "higher", 0.25),
    ("*never_parsed*", "higher", 0.25),
    ("overhead_ratio*", "lower", 0.50),
    ("fingerprint_size_ratio", "lower", 0.60),
    # Backend speedup ratios (walk ms / closure ms) — a drop means the
    # closure backend stopped paying off.
    ("*_speedup", "higher", 0.35),
    ("*_calls_per_s", "higher", 0.50),
    # Warm-daemon throughput — a drop means the compile service's
    # shared caches stopped paying off.
    ("*_requests_per_s", "higher", 0.50),
    ("*_hit_rate_pct", "higher", 0.05),
)

#: (name glob, ceiling).  These gate the *absolute* value of the
#: fresh run: the metric is a budget, and the build fails the moment
#: the budget is blown, whatever the baseline said.  Checked before
#: NAME_RULES; ``--tolerance-scale`` deliberately does not loosen
#: them (a budget is a budget).
ABSOLUTE_CEILINGS: Tuple[Tuple[str, float], ...] = (
    # Observability (per-request tracing + event log) must cost < 5%
    # of the warm-daemon path — see benchmarks/bench_obs.py.
    ("*_overhead_pct", 5.0),
)

#: unit -> (direction, relative tolerance) when no name rule matches.
UNIT_RULES: Dict[str, Tuple[str, float]] = {
    "ms": ("lower", 0.60),
    "us": ("lower", 0.60),
    "s": ("lower", 0.60),
}


def classify(name: str, unit: str) -> Optional[Tuple[str, float]]:
    """(direction, tolerance) for a metric, or None for info-only."""
    for pattern, direction, tolerance in NAME_RULES:
        if fnmatch.fnmatch(name, pattern):
            return direction, tolerance
    return UNIT_RULES.get(unit)


def load_metrics(path: Path) -> Dict[str, Dict[str, object]]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle).get("metrics", {})


def compare_metric(area: str, name: str, base: Dict[str, object],
                   fresh: Optional[Dict[str, object]],
                   scale: float) -> Dict[str, object]:
    """One comparison row.  status: ok | info | regression."""
    unit = str(base.get("unit", ""))
    row: Dict[str, object] = {
        "area": area,
        "metric": name,
        "unit": unit,
        "baseline": base.get("value"),
    }
    if fresh is None:
        row.update(status="regression",
                   detail="metric missing from fresh run")
        return row
    row["current"] = fresh.get("value")
    try:
        old = float(base["value"])
        new = float(row["current"])
    except (TypeError, ValueError, KeyError):
        row.update(status="info", detail="non-numeric")
        return row

    change = (new - old) / old if old else 0.0
    row["change"] = round(change, 4)
    for pattern, ceiling in ABSOLUTE_CEILINGS:
        if fnmatch.fnmatch(name, pattern):
            row["ceiling"] = ceiling
            if new > ceiling:
                row.update(status="regression",
                           detail=f"{new:g} over the {ceiling:g} budget")
            else:
                row.update(status="ok",
                           detail=f"within the {ceiling:g} budget")
            return row

    rule = classify(name, unit)
    if rule is None:
        row.update(status="info", detail="untracked unit")
        return row
    direction, tolerance = rule
    tolerance *= scale
    row["direction"] = direction
    row["tolerance"] = round(tolerance, 4)
    worse = change if direction == "lower" else -change
    if worse > tolerance:
        row.update(
            status="regression",
            detail=f"{'+' if change >= 0 else ''}{change:.0%} "
                   f"(allowed {'+' if direction == 'lower' else '-'}"
                   f"{tolerance:.0%})",
        )
    else:
        row["status"] = "ok"
    return row


def compare_dirs(baseline_dir: Path, current_dir: Path,
                 scale: float) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for base_path in sorted(baseline_dir.glob("BENCH_*.json")):
        area = base_path.stem[len("BENCH_"):]
        base_metrics = load_metrics(base_path)
        current_path = current_dir / base_path.name
        if not current_path.exists():
            if base_metrics:
                rows.append({
                    "area": area, "metric": "*",
                    "status": "regression",
                    "detail": f"{base_path.name} missing from fresh run",
                })
            continue
        fresh_metrics = load_metrics(current_path)
        for name, base in sorted(base_metrics.items()):
            rows.append(compare_metric(area, name, base,
                                       fresh_metrics.get(name), scale))
        for name, fresh in sorted(fresh_metrics.items()):
            if name not in base_metrics:
                rows.append({
                    "area": area, "metric": name,
                    "unit": str(fresh.get("unit", "")),
                    "current": fresh.get("value"),
                    "status": "info", "detail": "new metric (no baseline)",
                })
    return rows


def render(rows: List[Dict[str, object]]) -> str:
    lines = ["== benchmark comparison =="]
    if not rows:
        lines.append("(no tracked metrics found)")
    for row in rows:
        mark = {"ok": " ok ", "info": "info", "regression": "FAIL"}[
            str(row["status"])]
        name = f"{row['area']}/{row['metric']}"
        base = row.get("baseline", "-")
        current = row.get("current", "-")
        unit = row.get("unit", "")
        change = row.get("change")
        delta = f"{change:+.1%}" if isinstance(change, float) else ""
        detail = row.get("detail", "")
        lines.append(
            f"[{mark}] {name:<42} {base!s:>10} -> {current!s:>10} "
            f"{unit:<3} {delta:>8}  {detail}"
        )
    regressions = sum(1 for r in rows if r["status"] == "regression")
    checked = sum(1 for r in rows if r["status"] in ("ok", "regression"))
    lines.append(f"{checked} metrics checked, {regressions} regression"
                 f"{'' if regressions == 1 else 's'}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="compare",
        description="Compare fresh BENCH_*.json against committed baselines.",
    )
    parser.add_argument("--baseline", metavar="DIR", default=".",
                        help="directory with baseline BENCH_*.json "
                             "(default: repository root copies)")
    parser.add_argument("--current", metavar="DIR", default=".",
                        help="directory with freshly generated BENCH_*.json")
    parser.add_argument("--tolerance-scale", type=float, default=1.0,
                        metavar="X",
                        help="multiply every tolerance by X (default 1.0; "
                             "use >1 on noisy runners)")
    parser.add_argument("--report", metavar="FILE",
                        help="also write the comparison as JSON to FILE")
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline)
    current_dir = Path(args.current)
    if not baseline_dir.is_dir():
        print(f"compare: baseline directory not found: {baseline_dir}",
              file=sys.stderr)
        return 2
    if args.tolerance_scale <= 0:
        print("compare: --tolerance-scale must be positive", file=sys.stderr)
        return 2

    rows = compare_dirs(baseline_dir, current_dir, args.tolerance_scale)
    print(render(rows))
    if args.report:
        payload = {
            "schema": "maya.bench-compare/1",
            "tolerance_scale": args.tolerance_scale,
            "rows": rows,
            "regressions": sum(1 for r in rows
                               if r["status"] == "regression"),
        }
        with open(args.report, "w", encoding="utf-8") as out:
            json.dump(payload, out, indent=2)
            out.write("\n")
    return 1 if any(r["status"] == "regression" for r in rows) else 0


if __name__ == "__main__":
    sys.exit(main())
