"""E11: the LALR(1) parser generator.

Times table generation for the base Java grammar and for the grammar
after the macro library's extensions, and shows the fingerprint cache
that makes mid-compile regeneration affordable.
"""

from conftest import make_compiler, report

from repro.javalang import base_grammar
from repro.lalr import build_tables
from repro.lalr.tables import tables_for
from repro.macros.foreach import ForEach
from repro.core import CompileEnv


def test_e11_base_grammar_generation(benchmark):
    grammar = base_grammar()
    tables = benchmark(lambda: build_tables(grammar))
    report("E11: base Java-subset grammar", [
        ["productions", len(grammar.productions)],
        ["LR(0) states", len(tables.automaton.states)],
    ])


def test_e11_extended_grammar_generation(benchmark):
    env = CompileEnv()
    ForEach().run(env)
    tables = benchmark(lambda: build_tables(env.grammar))
    base = base_grammar()
    report("E11: grammar after foreach extension", [
        ["base productions", len(base.productions)],
        ["extended productions", len(env.grammar.productions)],
        ["states", len(tables.automaton.states)],
    ])
    assert len(env.grammar.productions) > len(base.productions)


def test_e11_fingerprint_cache(benchmark):
    """Re-requesting tables for an unchanged grammar is O(1)."""
    env = CompileEnv()
    tables_for(env.grammar)  # warm

    def cached_lookup():
        for _ in range(1000):
            tables_for(env.grammar)

    benchmark(cached_lookup)


def test_e11_conflict_detection_cost(benchmark):
    """Rejecting an ambiguous grammar costs one generation attempt."""
    from repro.grammar import Grammar, nonterminal
    from repro.lalr import ConflictError

    def build_ambiguous():
        g = Grammar("amb-bench")
        E = nonterminal("BenchAmbE")
        g.add_production(E, ["IntLit"], tag="ba_lit", internal=True,
                         action=lambda ctx, v: v[0])
        g.add_production(E, [E, "+", E], tag="ba_add", internal=True,
                         action=lambda ctx, v: v[0])
        g.declare_start(E)
        try:
            build_tables(g)
            return False
        except ConflictError:
            return True

    assert benchmark(build_ambiguous)
