"""E11: the LALR(1) parser generator.

Times table generation for the base Java grammar and for the grammar
after the macro library's extensions, and shows the fingerprint cache
that makes mid-compile regeneration affordable.
"""

from conftest import make_compiler, record_metric, report

from repro.javalang import base_grammar
from repro.lalr import build_tables
from repro.lalr.tables import tables_for
from repro.macros.foreach import ForEach
from repro.core import CompileEnv


def test_e11_base_grammar_generation(benchmark):
    grammar = base_grammar()
    tables = benchmark(lambda: build_tables(grammar))
    report("E11: base Java-subset grammar", [
        ["productions", len(grammar.productions)],
        ["LR(0) states", len(tables.automaton.states)],
    ])


def test_e11_extended_grammar_generation(benchmark):
    env = CompileEnv()
    ForEach().run(env)
    tables = benchmark(lambda: build_tables(env.grammar))
    base = base_grammar()
    report("E11: grammar after foreach extension", [
        ["base productions", len(base.productions)],
        ["extended productions", len(env.grammar.productions)],
        ["states", len(tables.automaton.states)],
    ])
    assert len(env.grammar.productions) > len(base.productions)


def test_e11_fingerprint_cache(benchmark):
    """Re-requesting tables for an unchanged grammar is O(1)."""
    import time

    env = CompileEnv()
    tables_for(env.grammar)  # warm

    def cached_lookup():
        for _ in range(1000):
            tables_for(env.grammar)

    start = time.perf_counter()
    cached_lookup()
    per_lookup_us = (time.perf_counter() - start) * 1e3
    record_metric("cached_tables_lookup_us", round(per_lookup_us, 3), "us")
    benchmark(cached_lookup)


def test_e11_fingerprint_is_o1(benchmark):
    """Fingerprinting an unchanged grammar costs the same whatever its
    size: the digest is version-cached, so a lookup is one attribute
    check + one identity-keyed hash, not an O(productions) walk."""
    import time

    small = CompileEnv().grammar
    big_env = CompileEnv()
    ForEach().run(big_env)
    big = big_env.grammar

    def time_fingerprints(grammar):
        grammar.fingerprint()  # warm the version cache
        start = time.perf_counter()
        for _ in range(10000):
            grammar.fingerprint()
        return time.perf_counter() - start

    small_time = time_fingerprints(small)
    big_time = time_fingerprints(big)
    ratio = big_time / small_time
    report("E11: O(1) fingerprinting (10k fingerprints)", [
        ["base grammar", f"{small_time * 1e3:.2f} ms"],
        [f"extended (+{len(big.productions) - len(small.productions)} prods)",
         f"{big_time * 1e3:.2f} ms"],
        ["big/small ratio", f"{ratio:.2f}x (O(1) => ~1.0)"],
    ])
    record_metric("fingerprint_size_ratio", round(ratio, 2), "x")
    # Grossly superlinear would mean the digest is being recomputed.
    assert ratio < 3.0
    benchmark(lambda: big.fingerprint())


def test_e11_disk_cache_cold_start(benchmark, tmp_path):
    """Restoring pickled tables beats regenerating them from scratch."""
    import time

    from repro.lalr.tables import (
        disable_disk_cache,
        enable_disk_cache,
        table_cache_clear,
    )

    grammar = base_grammar()
    enable_disk_cache(str(tmp_path))
    try:
        start = time.perf_counter()
        table_cache_clear()
        tables_for(grammar)  # generates, then persists
        generate_time = time.perf_counter() - start

        def cold_start():
            table_cache_clear()
            return tables_for(grammar)

        start = time.perf_counter()
        restored = cold_start()
        restore_time = time.perf_counter() - start
        assert restored.action  # really restored, not empty

        report("E11: on-disk table cache (base grammar)", [
            ["generate + persist", f"{generate_time * 1e3:.1f} ms"],
            ["restore from disk", f"{restore_time * 1e3:.1f} ms"],
            ["speedup", f"{generate_time / restore_time:.1f}x"],
        ])
        record_metric("table_generate_ms", round(generate_time * 1e3, 1), "ms")
        record_metric("table_restore_ms", round(restore_time * 1e3, 1), "ms")
        benchmark(cold_start)
    finally:
        disable_disk_cache()
        table_cache_clear()


def test_e11_conflict_detection_cost(benchmark):
    """Rejecting an ambiguous grammar costs one generation attempt."""
    from repro.grammar import Grammar, nonterminal
    from repro.lalr import ConflictError

    def build_ambiguous():
        g = Grammar("amb-bench")
        E = nonterminal("BenchAmbE")
        g.add_production(E, ["IntLit"], tag="ba_lit", internal=True,
                         action=lambda ctx, v: v[0])
        g.add_production(E, [E, "+", E], tag="ba_add", internal=True,
                         action=lambda ctx, v: v[0])
        g.declare_start(E)
        try:
            build_tables(g)
            return False
        except ConflictError:
            return True

    assert benchmark(build_ambiguous)
