"""E10: the paper's section-5.3 lines-of-code comparison.

The paper: Clifton's direct MultiJava "added or materially altered
20,000 of the 50,000 lines in kjc.  In contrast, our MultiJava
implementation is less than 2,500 noncomment, nonblank lines of code."

We reproduce the *shape* of that table for our stack: the Maya-based
MultiJava extension (src/repro/multijava, minus the baseline) versus
the whole compiler it would otherwise have had to modify (all of
src/repro), with the paper's numbers alongside.  The claim that holds
is the ratio: the extension is a small fraction of the host compiler.
"""

import io
import tokenize
from pathlib import Path

from conftest import report

ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def ncnb_lines(path: Path) -> int:
    """Noncomment, nonblank lines of a Python file (docstrings and
    comments excluded, matching the paper's NCNB metric)."""
    source = path.read_text()
    kept = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type in (tokenize.COMMENT, tokenize.NL,
                              tokenize.NEWLINE, tokenize.INDENT,
                              tokenize.DEDENT, tokenize.ENDMARKER):
                continue
            if token.type == tokenize.STRING and \
                    token.string.startswith(('"""', "'''", 'r"""', "r'''")):
                continue  # docstrings
            for line in range(token.start[0], token.end[0] + 1):
                kept.add(line)
    except tokenize.TokenError:  # pragma: no cover
        return len([l for l in source.splitlines() if l.strip()])
    return len(kept)


def count_tree(root: Path, exclude=()) -> int:
    total = 0
    for path in sorted(root.rglob("*.py")):
        if any(part in exclude for part in path.parts):
            continue
        total += ncnb_lines(path)
    return total


def test_e10_loc_table(benchmark):
    extension_loc = sum(
        ncnb_lines(p) for p in sorted((ROOT / "multijava").glob("*.py"))
        if p.name != "baseline.py"
    )
    compiler_loc = count_tree(ROOT, exclude=("multijava",))
    total_loc = compiler_loc + extension_loc

    paper_ratio = 2500 / 20000
    our_ratio = extension_loc / compiler_loc

    report(
        "E10: MultiJava implementation size (section 5.3)",
        [
            ["paper: MultiJava via Maya", "< 2,500 NCNB"],
            ["paper: MultiJava via kjc changes", "~20,000 of 50,000"],
            ["ours: MultiJava via repro (Maya)", f"{extension_loc} NCNB"],
            ["ours: host compiler (repro)", f"{compiler_loc} NCNB"],
            ["paper extension/changes ratio", f"{paper_ratio:.3f}"],
            ["our extension/compiler ratio", f"{our_ratio:.3f}"],
        ],
    )

    # The reproduced claim: the extension is a small fraction (the
    # paper's is 2500/20000 = 0.125 of the *changed* lines alone).
    assert extension_loc < 1000
    assert our_ratio < 0.125

    benchmark(lambda: count_tree(ROOT))
