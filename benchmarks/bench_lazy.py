"""E4/E12: lazy parsing — the figure-4 pipeline's payoff.

The stream lexer finds member boundaries without parsing bodies, so
shaping a class is much cheaper than compiling it.  We measure shaping
(parse + member signatures, bodies left as thunks) against full
compilation (bodies forced and checked) for a generated many-method
class, and the cost of grammar regeneration after a mid-file ``use``.
"""

from conftest import make_compiler, record_metric, report

from repro.ast import nodes as n
from repro.core import CompileContext, CompileEnv
from repro.lalr import Parser
from repro.lexer import stream_lex


def big_class(methods: int) -> str:
    body = "\n".join(
        f"""
        int method{i}(int a, int b) {{
            int total = 0;
            for (int j = 0; j < a; j++) {{
                total = total + j * b - (a / (b + 1));
                if (total > 1000) total = total - 999;
            }}
            return total;
        }}
        """
        for i in range(methods)
    )
    return f"class Big {{ {body} }}"


def shape_only(source: str):
    """Parse the class; bodies stay lazy (the shaper's view)."""
    ctx = CompileContext(CompileEnv())
    parser = Parser(ctx.env.tables(), ctx)
    decl, _ = parser.parse("TypeDeclaration", stream_lex(source))
    lazy = sum(1 for m in decl.members
               if isinstance(m, n.MethodDecl)
               and isinstance(m.body, n.LazyNode))
    return decl, lazy


def test_e4_shaping_cheaper_than_compiling(benchmark):
    import time

    source = big_class(40)

    start = time.perf_counter()
    decl, lazy_count = shape_only(source)
    shape_time = time.perf_counter() - start
    assert lazy_count == 40  # every body is a thunk

    start = time.perf_counter()
    make_compiler().compile(source)
    full_time = time.perf_counter() - start

    report("E4: lazy shaping vs full compilation (40 methods)", [
        ["shape only (bodies lazy)", f"{shape_time * 1e3:.1f} ms"],
        ["full compile (bodies forced)", f"{full_time * 1e3:.1f} ms"],
        ["ratio", f"{full_time / shape_time:.1f}x"],
    ])
    record_metric("shape_40_methods_ms", round(shape_time * 1e3, 3), "ms")
    record_metric("full_compile_40_methods_ms", round(full_time * 1e3, 3),
                  "ms")
    assert shape_time < full_time

    benchmark(lambda: shape_only(source))


def test_e12_mid_method_grammar_extension(benchmark):
    """A use directive mid-method re-derives tables for the remaining
    statements; the fingerprint cache amortizes repeats."""
    source = """
        import java.util.*;
        class Demo {
            static void main() {
                Vector v = new Vector();
                v.addElement("a");
                use maya.util.ForEach;
                v.elements().foreach(String s) {
                    System.out.println(s);
                }
            }
        }
    """

    def compile_with_extension():
        return make_compiler(macros=True).compile(source)

    program = benchmark(compile_with_extension)
    assert "hasMoreElements" in program.source()
    report("E12: mid-method use directive", [
        ["statements before use", "parsed with the base grammar"],
        ["statements after use", "parsed with foreach production added"],
    ])


def test_e4_unparsed_bodies_cost_nothing(benchmark):
    """A body full of junk tokens shapes fine — it is never parsed
    unless compiled, the defining property of lazy parsing."""
    source = """
        class Partial {
            int good() { return 1; }
            int never() { this body is @@ not ~~ java at all }
        }
    """
    decl, lazy_count = shape_only(source)
    assert lazy_count == 2
    benchmark(lambda: shape_only(source))


MULTIJAVA_WORKLOAD = """
    use multijava.MultiJava;
    class C { }
    class D extends C {
        int m(C c) { return 0; }
        int m(C@D c) { return 1; }
    }
"""


def test_e4_laziness_profile(benchmark):
    """Measure what lazy parsing never does: compile the MultiJava
    multimethod workload under the laziness profiler and record the
    never-forced fractions.  ``rescope_lazy`` rebinds multimethod
    bodies into a child environment (for the method-local SuperSend
    Mayan), so the original thunks are permanently abandoned — a
    structural source of never-parsed work that the profiler should
    see."""
    from repro.obs import lazy as obs_lazy

    def profiled():
        profiler = obs_lazy.activate()
        try:
            make_compiler(multijava=True).compile(MULTIJAVA_WORKLOAD)
        finally:
            obs_lazy.deactivate()
        return profiler

    profiler = profiled()
    assert profiler.forced_total <= profiler.created_total
    assert profiler.never_forced > 0  # the abandoned rescope originals
    thunk_pct = profiler.never_forced_fraction * 100
    token_pct = profiler.never_parsed_token_fraction * 100
    report("E4b: laziness profile (MultiJava multimethod workload)", [
        ["thunks created", profiler.created_total],
        ["thunks forced", profiler.forced_total],
        ["thunks never forced", f"{profiler.never_forced} "
                                f"({thunk_pct:.0f}%)"],
        ["tokens captured lazily", profiler.tokens_created_total],
        ["tokens never parsed", f"{token_pct:.1f}%"],
    ])
    record_metric("mj_never_forced_pct", round(thunk_pct, 1), "%")
    record_metric("mj_never_parsed_tokens_pct", round(token_pct, 1), "%")
    benchmark(profiled)
