"""Ablations for the design choices DESIGN.md calls out.

A1 — grammar versioning + table cache: importing an extension forces a
     table regeneration, but the fingerprint cache amortizes it across
     compilations (without the cache, every `use` would pay ~0.3 s).
A2 — compile-once templates: a template's pattern parse and hygiene
     analysis are paid once; instantiation replays reductions only.
A3 — statement-at-a-time parsing: the early-accept driver's overhead
     relative to parsing a block in one LALR run is modest, and it is
     what makes mid-block `use` possible at all.
"""

import time

from conftest import make_compiler, report

from repro.core import CompileContext, CompileEnv
from repro.lalr import Parser
from repro.lalr.tables import _TABLE_CACHE, build_tables, tables_for
from repro.lexer import stream_lex
from repro.patterns import Template


def test_a1_table_cache_amortization(benchmark):
    """First use of an extension regenerates tables; later compiles of
    the same environment shape hit the fingerprint cache."""
    source = """
        import java.util.*;
        class Demo {
            static void main() {
                use maya.util.ForEach;
                Vector v = new Vector();
                v.elements().foreach(String s) { }
            }
        }
    """

    compiler = make_compiler(macros=True)

    start = time.perf_counter()
    compiler.compile(source.replace("Demo", "Demo0"))
    cold = time.perf_counter() - start

    start = time.perf_counter()
    for index in range(1, 4):
        compiler.compile(source.replace("Demo", f"Demo{index}"))
    warm = (time.perf_counter() - start) / 3

    report("A1: extension table-regeneration amortization", [
        ["first compile (tables cold)", f"{cold * 1e3:.0f} ms"],
        ["later compiles (cached)", f"{warm * 1e3:.0f} ms"],
        ["speedup", f"{cold / warm:.1f}x"],
    ])
    assert warm < cold

    benchmark(lambda: compiler.compile(source.replace("Demo", "DemoB")))


def test_a2_template_compile_once(benchmark):
    """Template instantiation must not re-run pattern parsing."""
    env = CompileEnv()
    ctx = CompileContext(env)

    template = Template(
        "Statement",
        "{ int acc = $x; while (acc > 0) { acc = acc - 1; } }",
        x="Expression",
    )
    from repro.ast.nodes import Literal

    start = time.perf_counter()
    template.compiled(env)
    compile_time = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(20):
        template.instantiate(ctx, x=Literal("int", 5))
    instantiate_time = (time.perf_counter() - start) / 20

    report("A2: template compile vs instantiate", [
        ["compile (once)", f"{compile_time * 1e3:.2f} ms"],
        ["instantiate (each)", f"{instantiate_time * 1e3:.2f} ms"],
    ])

    benchmark(lambda: template.instantiate(ctx, x=Literal("int", 5)))


def test_a3_statement_at_a_time_overhead(benchmark):
    """Cost of the incremental block driver on a 60-statement body."""
    stmts = "\n".join(f"int v{i} = {i} * 2 + 1;" for i in range(60))
    source = f"class Big {{ static void run() {{ {stmts} }} }}"

    def compile_it():
        return make_compiler().compile(source)

    program = benchmark(compile_it)
    body = program.class_named("Big").decl.members[0].body
    report("A3: statement-at-a-time block driver", [
        ["statements parsed incrementally", len(body.stmts)],
        ["benefit", "mid-block `use` can extend the grammar"],
    ])
    assert len(body.stmts) == 60
