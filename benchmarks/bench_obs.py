"""What observability costs on the warm-daemon path, measured.

Per-request observability is always on in the daemon — a scoped span
tracer per compile, lifecycle events into the bounded ring, phase
timings and outcomes accumulated onto the request context.  The design
bar is that all of it together stays under 5% of warm-path latency
(the budget the ISSUE gates in CI): events below the level threshold
must cost one dict lookup, and tracing must touch only Mayan-relevant
work, never per-AST-node paths.

Two identical warm daemons answer the same corpus over real sockets:
one with everything on (per-request tracing, info-level event log —
the shipped defaults), one with tracing off and the event log
thresholded to ``error`` (lifecycle events filter out at the cheap
path).  The medians' gap is the overhead; ``obs_overhead_pct`` lands
in BENCH_obs.json and ``compare.py`` fails CI when it crosses the
absolute 5% ceiling.
"""

import statistics
import time

from conftest import record_metric, report

from repro.obs import log as obs_log
from repro.server import DaemonConfig, MayaClient, MayaDaemon

WARMUP = 15
REQUESTS = 120

SOURCE = """
    import java.util.*;
    class ObsBench {
        static void main() {
            use maya.util.ForEach;
            Vector v = new Vector();
            v.addElement("obs");
            v.elements().foreach(String s) { System.out.println(s); }
        }
    }
"""


def measure_ms(trace_requests: bool, log_level: str) -> list:
    """Median-friendly latency samples against one warm daemon."""
    previous_level = obs_log.LOG.level
    obs_log.LOG.set_level(log_level)
    server = MayaDaemon(DaemonConfig(
        workers=2, prewarm=True,
        trace_requests=trace_requests)).start()
    try:
        client = MayaClient(server.address, retries=0)
        for _ in range(WARMUP):
            assert client.compile(SOURCE, "warmup.maya",
                                  cache=False)["status"] == "ok"
        samples = []
        for _ in range(REQUESTS):
            started = time.perf_counter()
            response = client.compile(SOURCE, "obs.maya", cache=False)
            samples.append((time.perf_counter() - started) * 1000.0)
            assert response["status"] == "ok"
        return samples
    finally:
        server.stop()
        obs_log.LOG.set_level(previous_level)


def test_observability_overhead_is_under_budget():
    off = measure_ms(trace_requests=False, log_level="error")
    on = measure_ms(trace_requests=True, log_level="info")

    off_median = statistics.median(off)
    on_median = statistics.median(on)
    delta_ms = on_median - off_median
    overhead_pct = delta_ms / off_median * 100.0

    report(
        "observability overhead (warm daemon, per request)",
        [
            ("obs off (no tracing, error-level log)",
             f"{off_median:.3f} ms"),
            ("obs on (per-request tracing, info-level log)",
             f"{on_median:.3f} ms"),
            ("overhead", f"{delta_ms:+.3f} ms ({overhead_pct:+.2f}%)"),
        ],
        header=("mode", "median latency"),
    )
    record_metric("obs_off_p50_ms", round(off_median, 3), "ms")
    record_metric("obs_on_p50_ms", round(on_median, 3), "ms")
    record_metric("obs_overhead_pct", round(max(overhead_pct, 0.0), 2),
                  "pct")

    # The budget: everything-on must cost < 5% of the warm path.  A
    # sub-0.2ms median gap is below this harness's timer noise on a
    # busy runner; don't let jitter fail the build.
    assert overhead_pct < 5.0 or delta_ms < 0.2, (
        f"observability overhead {overhead_pct:.2f}% "
        f"({delta_ms:+.3f} ms) blew the 5% budget"
    )
