"""E14/E15: the compiled backends vs the seed tree-walker.

Each workload is compiled once and then run under all three backends
(``Interpreter(backend=...)``); walk, closure, and pycode must produce
identical results.  The recorded ``*_speedup`` ratios are the
paper-style payoff of compiling method bodies — to Python closures
with slot frames and inline caches (E14), and further to generated
Python source with guarded direct calls and native operators (E15,
``pycode_*_speedup`` measured against the *closure* backend).  The E9
workload reruns the MultiJava dispatcher benchmark so the speedups are
measured on expanded (generated) code, not just hand-written loops.
"""

import time

from conftest import make_compiler, record_metric, report

from repro.interp import Interpreter
from repro.obs.metrics import REGISTRY

#: Tight arithmetic/branching loop: statement execution overhead.
LOOP_SOURCE = """
    class Demo {
        static int main() {
            int total = 0;
            for (int i = 0; i < 60000; i++) {
                if (i % 3 == 0) { total += i; } else { total -= 1; }
            }
            return total;
        }
    }
"""

#: Virtual-call-heavy: the inline caches' home turf.
CALL_SOURCE = """
    class Adder {
        int bump(int x) { return x + 1; }
    }
    class Doubler extends Adder {
        int bump(int x) { return x + 2; }
    }
    class Demo {
        static int main() {
            Adder a = new Adder();
            Adder b = new Doubler();
            int total = 0;
            for (int i = 0; i < 12000; i++) {
                total += a.bump(i) + b.bump(total % 7);
            }
            return total;
        }
    }
"""

#: Field read/write loop: the field inline caches and direct stores.
FIELD_SOURCE = """
    class Cell {
        int value;
        Cell next;
    }
    class Demo {
        static int main() {
            Cell head = new Cell();
            head.next = new Cell();
            head.next.next = head;
            Cell cursor = head;
            int total = 0;
            for (int i = 0; i < 20000; i++) {
                cursor.value = cursor.value + i;
                total += cursor.value % 97;
                cursor = cursor.next;
            }
            return total;
        }
    }
"""

#: E9's MultiJava dispatcher workload: generated instanceof-chain
#: dispatchers plus the impl bodies, i.e. expanded code end to end.
E9_SOURCE = """
    use multijava.MultiJava;
    class C { }
    class D extends C { }
    class E extends D { }
    class Host {
        int m(C c) { return 0; }
        int m(C@D c) { return 1; }
        int m(C@E c) { return 2; }
    }
    class Demo {
        static int main() {
            Host h = new Host();
            C c = new C();
            C d = new D();
            C e = new E();
            int total = 0;
            for (int i = 0; i < 4000; i++) {
                total += h.m(c) + h.m(d) + h.m(e);
            }
            return total;
        }
    }
"""

REPEATS = 5


def _time_backend(program, backend, repeats=REPEATS):
    """Best-of-N wall-clock ms for Demo.main() under one backend (the
    first closure run compiles plans; best-of excludes that warmup)."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        interp = Interpreter(program, backend=backend)
        start = time.perf_counter()
        value = interp.run_static("Demo")
        best = min(best, time.perf_counter() - start)
    return best * 1e3, value


def _compare(name, source, multijava=False):
    program = make_compiler(multijava=multijava).compile(source)
    walk_ms, walk_value = _time_backend(program, "walk")
    closure_ms, closure_value = _time_backend(program, "closure")
    pycode_ms, pycode_value = _time_backend(program, "pycode")
    assert walk_value == closure_value, (
        f"{name}: backends disagree ({walk_value!r} vs {closure_value!r})")
    assert walk_value == pycode_value, (
        f"{name}: pycode disagrees ({walk_value!r} vs {pycode_value!r})")
    speedup = walk_ms / closure_ms if closure_ms else 0.0
    pycode_speedup = closure_ms / pycode_ms if pycode_ms else 0.0
    record_metric(f"{name}_walk_ms", round(walk_ms, 3), "ms",
                  area="interp")
    record_metric(f"{name}_closure_ms", round(closure_ms, 3), "ms",
                  area="interp")
    record_metric(f"{name}_pycode_ms", round(pycode_ms, 3), "ms",
                  area="interp")
    record_metric(f"{name}_speedup", round(speedup, 3), "x",
                  area="interp")
    record_metric(f"pycode_{name}_speedup", round(pycode_speedup, 3),
                  "x", area="interp")
    return {
        "walk_ms": walk_ms,
        "closure_ms": closure_ms,
        "pycode_ms": pycode_ms,
        "speedup": speedup,
        "pycode_speedup": pycode_speedup,
        "value": walk_value,
    }


def _rows(timings):
    return [
        ["result", timings["value"]],
        ["walk ms", round(timings["walk_ms"], 2)],
        ["closure ms", round(timings["closure_ms"], 2)],
        ["pycode ms", round(timings["pycode_ms"], 2)],
        ["closure speedup", f"{timings['speedup']:.2f}x"],
        ["pycode vs closure", f"{timings['pycode_speedup']:.2f}x"],
    ]


def test_e14_loop_workload():
    timings = _compare("loop", LOOP_SOURCE)
    report("E14/E15: loop workload", _rows(timings), area="interp")
    assert timings["speedup"] > 1.0
    assert timings["pycode_speedup"] > 1.0


def test_e14_call_workload():
    timings = _compare("call", CALL_SOURCE)
    report("E14/E15: virtual-call workload", _rows(timings),
           area="interp")
    # The E14 headline: inline caches must pay off on call-heavy code.
    # 2x here is a loose floor for noisy runners; the committed
    # baseline records ~4-5x.
    assert timings["speedup"] >= 2.0
    # The E15 headline: guarded direct calls through generated code
    # must be at least 2x faster again than the closure backend.
    assert timings["pycode_speedup"] >= 2.0


def test_e14_field_workload():
    timings = _compare("field", FIELD_SOURCE)
    report("E14/E15: field-access workload", _rows(timings),
           area="interp")
    assert timings["speedup"] > 1.0
    assert timings["pycode_speedup"] > 1.0


def test_e14_multijava_workload():
    timings = _compare("e9_dispatch", E9_SOURCE, multijava=True)
    report("E14/E15: E9 MultiJava dispatch workload", _rows(timings),
           area="interp")
    assert timings["value"] == 4000 * 3
    assert timings["speedup"] >= 1.2
    assert timings["pycode_speedup"] >= 1.0


def test_e14_inline_cache_health():
    """After the timed runs, the call inline caches should be almost
    entirely hits (each site sees a handful of receiver classes)."""
    family = REGISTRY.get("maya_interp_ic_events_total")
    assert family is not None

    def total(event):
        return sum(child.value for labels, child in family.samples()
                   if labels[0] == "call" and labels[1] == event)

    hits, misses = total("hit"), total("miss")
    lookups = hits + misses
    assert lookups > 0
    hit_rate = hits / lookups
    record_metric("ic_call_hit_rate_pct", round(hit_rate * 100, 2), "%",
                  area="interp")
    report("E14: inline-cache health", [
        ["call IC hits", hits],
        ["call IC misses", misses],
        ["hit rate", f"{hit_rate:.1%}"],
    ], area="interp")
    assert hit_rate > 0.99
