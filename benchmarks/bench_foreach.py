"""E1/E2: the section-3 foreach example and the optimized VForEach.

E1 regenerates the paper's expansion (the for-loop over an Enumeration
with the hygienic enumVar$) and times compilation; E2 reproduces the
optimization claim — "this code can avoid both object allocation and
method calls" — by comparing interpreter operation counts of the
generic (EForEach) and specialized (VForEach) expansions of the *same*
source, selected purely by multiple dispatch.
"""

import pytest

from conftest import compile_and_run, make_compiler, report

HASHTABLE_DEMO = """
    import java.util.*;
    class Demo {
        static void main() {
            use maya.util.ForEach;
            Hashtable h = new Hashtable();
            h.put("one", "1");
            h.put("two", "2");
            h.keys().foreach(String st) {
                System.err.println(st + " = " + h.get(st));
            }
        }
    }
"""


def loop_source(vector_class: str, size: int) -> str:
    return f"""
        import java.util.*;
        class Demo {{
            static void main() {{
                use maya.util.ForEach;
                {vector_class} v = new {vector_class}();
                for (int i = 0; i < {size}; i++) v.addElement("item");
                int n = 0;
                v.elements().foreach(String s) {{
                    n = n + s.length();
                }}
            }}
        }}
    """


def test_e1_expansion_matches_paper(benchmark):
    """The compile pipeline produces exactly the paper's loop shape."""
    program = benchmark(
        lambda: make_compiler(macros=True).compile(HASHTABLE_DEMO)
    )
    source = program.source()
    assert "for (java.util.Enumeration enumVar$" in source
    assert "hasMoreElements" in source
    report("E1: section-3 foreach expansion (fragment)", [
        [line.strip()] for line in source.splitlines()
        if "enumVar$" in line or "nextElement" in line
    ])


@pytest.mark.parametrize("size", [100])
def test_e2_vforeach_saves_operations(benchmark, size):
    """Paper section 3: the maya.util.Vector expansion avoids the
    Enumeration allocation and per-element method calls."""
    generic = compile_and_run(loop_source("java.util.Vector", size),
                              macros=True)
    optimized = compile_and_run(loop_source("maya.util.Vector", size),
                                macros=True)

    g = generic.counters
    o = optimized.counters
    report(
        f"E2: foreach operation counts (N={size})",
        [
            ["EForEach (java.util.Vector)", g.allocations, g.method_calls],
            ["VForEach (maya.util.Vector)", o.allocations, o.method_calls],
            ["savings", g.allocations - o.allocations,
             g.method_calls - o.method_calls],
        ],
        header=["expansion", "allocations", "method calls"],
    )
    # Shape of the paper's claim: strictly fewer allocations and calls,
    # and the call savings grow with N (hasMoreElements+nextElement per
    # element are gone).
    assert o.allocations < g.allocations
    assert g.method_calls - o.method_calls >= 2 * size

    benchmark(lambda: compile_and_run(
        loop_source("maya.util.Vector", size), macros=True))


def test_e2_interpreted_runtime(benchmark):
    """Wall-clock comparison of the two expansions' execution."""
    compiler = make_compiler(macros=True)
    program_g = compiler.compile(
        loop_source("java.util.Vector", 300).replace("class Demo", "class DemoG"))
    program_o = compiler.compile(
        loop_source("maya.util.Vector", 300).replace("class Demo", "class DemoO"))

    from repro.interp import Interpreter

    def run_both():
        Interpreter(program_g).run_static("DemoG")
        Interpreter(program_o).run_static("DemoO")

    benchmark(run_both)
