"""Definition of the base Java-subset grammar.

Grammar conventions
-------------------
* Tree tokens (ParenTree, BraceTree, BracketTree, Dims, EmptyParen,
  CastParen) are single terminals; productions that need their contents
  parse them recursively (eagerly or lazily) in their actions, exactly
  as the paper's generated G0/G1 productions do.
* Dotted names are parsed as QName and reclassified by the type checker
  (JLS "ambiguous name" treatment), which keeps the grammar LALR(1).
* Binding positions use the ``UnboundLocal`` nonterminal — the paper's
  hygiene rule that "productions that establish lexically scoped
  bindings must use special nonterminals" (section 4.3).
* ``BlockStmts``, class member lists, and compilation units are parsed
  by *driver loops*, one statement/member at a time, so that a ``use``
  directive can extend the grammar for the syntax that follows it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.ast import nodes as n
from repro.grammar import (
    Assoc,
    Grammar,
    LazySym,
    ListSym,
    Nonterminal,
    Production,
    nonterminal,
)
from repro.lexer import Token

# Production -> base semantic action fn(ctx, values, location) -> value
BASE_ACTIONS: Dict[Production, Callable] = {}

# Nonterminals parsed by driver loops rather than LALR (see core.drivers).
DRIVER_NONTERMINALS = ("BlockStmts", "MemberList", "CompilationUnit")

_NODE_SYMBOLS: Dict[str, Nonterminal] = {}


def node_symbol(name: str) -> Nonterminal:
    """The node-type nonterminal with the given name."""
    return _NODE_SYMBOLS[name]


_grammar_cache: Optional[Grammar] = None


def base_grammar() -> Grammar:
    """The (singleton) base grammar; copy it before extending."""
    global _grammar_cache
    if _grammar_cache is None:
        _grammar_cache = _build()
    return _grammar_cache


# ---------------------------------------------------------------------------
# Small helpers used by actions
# ---------------------------------------------------------------------------


def _ident(token: Token) -> n.Ident:
    return n.Ident(token.text, location=token.location)


def _name_parts(name_expr: n.NameExpr) -> Tuple[str, ...]:
    return name_expr.parts


def _parse_args(ctx, token: Token):
    """Parse an argument-list paren tree into a list of Expressions."""
    if token.kind == "EmptyParen":
        return []
    return ctx.parse_subtree(token, _NODE_SYMBOLS["ArgList"])


def _parse_formals(ctx, token: Token):
    if token.kind == "EmptyParen":
        return []
    return ctx.parse_subtree(token, _NODE_SYMBOLS["FormalList"])


# ---------------------------------------------------------------------------
# Grammar construction
# ---------------------------------------------------------------------------


def _build() -> Grammar:
    grammar = Grammar("maya-base")

    # -- node-type symbols -------------------------------------------------
    def declare(name: str, node_class=None) -> Nonterminal:
        symbol = nonterminal(name, node_class)
        _NODE_SYMBOLS[name] = symbol
        return symbol

    CompilationUnit = declare("CompilationUnit", n.CompilationUnit)
    Declaration = declare("Declaration", n.Declaration)
    PackageDecl = declare("PackageDecl", n.PackageDecl)
    ImportDecl = declare("ImportDecl", n.ImportDecl)
    UseDecl = declare("UseDecl", n.UseDecl)
    TypeDeclaration = declare("TypeDeclaration", n.TypeDecl)
    MemberDecl = declare("MemberDecl", n.MemberDecl)
    Statement = declare("Statement", n.Statement)
    BlockStmts = declare("BlockStmts", n.BlockStmts)
    Expression = declare("Expression", n.Expression)
    Literal = declare("Literal", n.Literal)
    Primary = declare("Primary", n.Primary)
    MethodName = declare("MethodName", n.MethodName)
    QName = declare("QName", n.NameExpr)
    TypeNT = declare("TypeName", n.TypeName)
    Formal = declare("Formal", n.Formal)
    FormalList = declare("FormalList")
    ArgList = declare("ArgList")
    VarDeclarator = declare("VarDeclarator", n.VarDeclarator)
    Modifier = declare("Modifier")
    UnboundLocal = declare("UnboundLocal", n.Ident)
    ForHeader = declare("ForHeader")
    VarInit = declare("VarInit")
    VarInitList = declare("VarInitList")
    MemberList = declare("MemberList")

    # Intermediate expression levels (not node-type symbols, but public
    # enough that patterns may mention a few of them).
    AssignExpr = declare("AssignExpr")
    CondExpr = declare("CondExpr")
    OrExpr = declare("OrExpr")
    AndExpr = declare("AndExpr")
    BitOrExpr = declare("BitOrExpr")
    BitXorExpr = declare("BitXorExpr")
    BitAndExpr = declare("BitAndExpr")
    EqExpr = declare("EqExpr")
    RelExpr = declare("RelExpr")
    ShiftExpr = declare("ShiftExpr")
    AddExpr = declare("AddExpr")
    MulExpr = declare("MulExpr")
    UnaryExpr = declare("UnaryExpr")
    UnaryNPM = declare("UnaryNPM")
    PostfixExpr = declare("PostfixExpr")

    Mods = ListSym(Modifier)
    CommaExprs = ListSym(Expression, ",")
    LazyBody = LazySym(("BraceTree",), BlockStmts)

    def add(lhs, rhs, action, tag=None, prec=None, trees=None) -> Production:
        """Add a production with its base action.

        ``trees`` maps rhs positions holding raw tree tokens to
        (content nonterminal, lazy?) so pattern/template parsing can
        statically check group contents.
        """
        production = grammar.add_production(lhs, rhs, tag=tag, prec=prec)
        BASE_ACTIONS[production] = action
        if trees:
            for position, spec in trees.items():
                symbol, lazy = spec if isinstance(spec, tuple) else (spec, False)
                production.tree_contents[position] = (symbol, lazy)
        return production

    def passthrough(lhs, rhs, tag=None):
        production = add(lhs, rhs, lambda ctx, v, loc: v[0], tag=tag)
        production.passthrough = True
        return production

    # -- precedence (dangling else only) ---------------------------------
    grammar.declare_precedence(Assoc.NONASSOC, "if")
    grammar.declare_precedence(Assoc.NONASSOC, "else")

    # ======================================================================
    # Names and types
    # ======================================================================

    add(
        QName,
        ["Identifier"],
        lambda ctx, v, loc: n.NameExpr((v[0].text,), location=loc),
        tag="qname_single",
    )
    add(
        QName,
        [QName, ".", "Identifier"],
        lambda ctx, v, loc: n.NameExpr(v[0].parts + (v[2].text,), location=loc),
        tag="qname_more",
    )

    add(
        UnboundLocal,
        ["Identifier"],
        lambda ctx, v, loc: _ident(v[0]),
        tag="unbound_local",
    )

    add(
        TypeNT,
        [QName],
        lambda ctx, v, loc: n.TypeName(v[0].parts, 0, location=loc),
        tag="type_name",
    )
    for prim in ("boolean", "byte", "short", "int", "long", "char",
                 "float", "double", "void"):
        add(
            TypeNT,
            [prim],
            lambda ctx, v, loc: n.TypeName((v[0].text,), 0, location=loc),
            tag=f"type_{prim}",
        )
    add(
        TypeNT,
        [TypeNT, "Dims"],
        lambda ctx, v, loc: n.TypeName(v[0].base, v[0].dims + 1, location=loc),
        tag="type_array",
    )

    for mod in ("public", "private", "protected", "static", "final",
                "abstract", "native", "synchronized"):
        add(Modifier, [mod], lambda ctx, v, loc: v[0].text, tag=f"mod_{mod}")

    # ======================================================================
    # Expressions
    # ======================================================================

    passthrough(Expression, [AssignExpr], tag="expr")

    passthrough(AssignExpr, [CondExpr], tag="assign_pass")
    for op in ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>=", ">>>="):
        add(
            AssignExpr,
            [CondExpr, op, AssignExpr],
            lambda ctx, v, loc: n.Assignment(v[0], v[1].text, v[2], location=loc),
            tag=f"assign_{op}",
        )

    passthrough(CondExpr, [OrExpr], tag="cond_pass")
    add(
        CondExpr,
        [OrExpr, "?", Expression, ":", CondExpr],
        lambda ctx, v, loc: n.ConditionalExpr(v[0], v[2], v[4], location=loc),
        tag="conditional",
    )

    def binary(lhs, lower, ops, tag_prefix):
        passthrough(lhs, [lower], tag=f"{tag_prefix}_pass")
        for op in ops:
            add(
                lhs,
                [lhs, op, lower],
                lambda ctx, v, loc: n.BinaryExpr(v[1].text, v[0], v[2], location=loc),
                tag=f"{tag_prefix}_{op}",
            )

    binary(OrExpr, AndExpr, ("||",), "or")
    binary(AndExpr, BitOrExpr, ("&&",), "and")
    binary(BitOrExpr, BitXorExpr, ("|",), "bitor")
    binary(BitXorExpr, BitAndExpr, ("^",), "bitxor")
    binary(BitAndExpr, EqExpr, ("&",), "bitand")
    binary(EqExpr, RelExpr, ("==", "!="), "eq")
    binary(RelExpr, ShiftExpr, ("<", ">", "<=", ">="), "rel")
    add(
        RelExpr,
        [RelExpr, "instanceof", TypeNT],
        lambda ctx, v, loc: n.InstanceofExpr(v[0], v[2], location=loc),
        tag="instanceof",
    )
    binary(ShiftExpr, AddExpr, ("<<", ">>", ">>>"), "shift")
    binary(AddExpr, MulExpr, ("+", "-"), "add")
    binary(MulExpr, UnaryExpr, ("*", "/", "%"), "mul")

    passthrough(UnaryExpr, [UnaryNPM], tag="unary_pass")
    for op in ("+", "-", "++", "--"):
        add(
            UnaryExpr,
            [op, UnaryExpr],
            lambda ctx, v, loc: n.UnaryExpr(v[0].text, v[1], location=loc),
            tag=f"unary_{op}",
        )

    passthrough(UnaryNPM, [PostfixExpr], tag="npm_pass")
    for op in ("!", "~"):
        add(
            UnaryNPM,
            [op, UnaryExpr],
            lambda ctx, v, loc: n.UnaryExpr(v[0].text, v[1], location=loc),
            tag=f"npm_{op}",
        )

    def cast_action(ctx, v, loc):
        type_name = ctx.parse_subtree(v[0], TypeNT)
        return n.CastExpr(type_name, v[1], location=loc)

    add(UnaryNPM, ["CastParen", UnaryExpr], cast_action, tag="cast_prim",
        trees={0: TypeNT})
    add(UnaryNPM, ["ParenTree", UnaryNPM], cast_action, tag="cast_ref",
        trees={0: TypeNT})

    passthrough(PostfixExpr, [Primary], tag="postfix_primary")
    passthrough(PostfixExpr, [QName], tag="postfix_name")
    for op in ("++", "--"):
        add(
            PostfixExpr,
            [PostfixExpr, op],
            lambda ctx, v, loc: n.PostfixExpr(v[1].text, v[0], location=loc),
            tag=f"postfix_{op}",
        )

    # -- primaries ---------------------------------------------------------

    passthrough(Primary, [Literal], tag="primary_literal")
    add(Primary, ["this"], lambda ctx, v, loc: n.ThisExpr(location=loc),
        tag="primary_this")
    add(
        Primary,
        ["ParenTree"],
        lambda ctx, v, loc: n.ParenExpr(
            ctx.parse_subtree(v[0], Expression), location=loc
        ),
        tag="paren_expr",
        trees={0: Expression},
    )

    literal_kinds = {
        "IntLit": "int",
        "LongLit": "long",
        "DoubleLit": "double",
        "CharLit": "char",
        "StringLit": "String",
    }
    for token_kind, type_kind in literal_kinds.items():
        add(
            Literal,
            [token_kind],
            lambda ctx, v, loc, _k=type_kind: n.Literal(_k, v[0].value, location=loc),
            tag=f"lit_{type_kind}",
        )
    add(Literal, ["true"], lambda ctx, v, loc: n.Literal("boolean", True, location=loc),
        tag="lit_true")
    add(Literal, ["false"], lambda ctx, v, loc: n.Literal("boolean", False, location=loc),
        tag="lit_false")
    add(Literal, ["null"], lambda ctx, v, loc: n.Literal("null", None, location=loc),
        tag="lit_null")

    FieldAccessNT = declare("FieldAccess", n.FieldAccess)
    add(
        FieldAccessNT,
        [Primary, ".", "Identifier"],
        lambda ctx, v, loc: n.FieldAccess(v[0], v[2].text, location=loc),
        tag="field_access",
    )
    add(
        FieldAccessNT,
        ["super", ".", "Identifier"],
        lambda ctx, v, loc: n.FieldAccess(
            n.SuperExpr(location=loc), v[2].text, location=loc
        ),
        tag="super_field",
    )
    passthrough(Primary, [FieldAccessNT], tag="primary_field")

    ArrayAccessNT = declare("ArrayAccess", n.ArrayAccess)
    for receiver in (QName, Primary):
        add(
            ArrayAccessNT,
            [receiver, "BracketTree"],
            lambda ctx, v, loc: n.ArrayAccess(
                v[0], ctx.parse_subtree(v[1], Expression), location=loc
            ),
            tag=f"array_access_{receiver.name}",
            trees={1: Expression},
        )
    passthrough(Primary, [ArrayAccessNT], tag="primary_array")

    add(
        MethodName,
        [QName],
        lambda ctx, v, loc: n.MethodName(None, v[0].parts, location=loc),
        tag="method_name_qname",
    )
    add(
        MethodName,
        [Primary, ".", "Identifier"],
        lambda ctx, v, loc: n.MethodName(v[0], (v[2].text,), location=loc),
        tag="method_name_primary",
    )
    add(
        MethodName,
        ["super", ".", "Identifier"],
        lambda ctx, v, loc: n.MethodName(
            n.SuperExpr(location=loc), (v[2].text,), location=loc
        ),
        tag="method_name_super",
    )

    MethodInvocationNT = declare("MethodInvocation", n.MethodInvocation)
    for args_kind in ("ParenTree", "EmptyParen"):
        add(
            MethodInvocationNT,
            [MethodName, args_kind],
            lambda ctx, v, loc: n.MethodInvocation(
                v[0], _parse_args(ctx, v[1]), location=loc
            ),
            tag=f"invoke_{args_kind}",
            trees={1: ArgList} if args_kind == "ParenTree" else None,
        )
    passthrough(Primary, [MethodInvocationNT], tag="primary_invoke")

    # -- new expressions ---------------------------------------------------

    NewExprNT = declare("NewExpr", n.Primary)
    for args_kind in ("ParenTree", "EmptyParen"):
        add(
            NewExprNT,
            ["new", TypeNT, args_kind],
            lambda ctx, v, loc: n.NewObject(v[1], _parse_args(ctx, v[2]), location=loc),
            tag=f"new_object_{args_kind}",
            trees={2: ArgList} if args_kind == "ParenTree" else None,
        )
    passthrough(Primary, [NewExprNT], tag="primary_new")

    # Array creation lives at the PostfixExpr level, not Primary, so a
    # creation's brackets cannot be re-parsed as array accesses (Java's
    # rule that "new int[2][3]" is a 2-D creation).
    BracketExpr = nonterminal("BracketExpr")
    add(
        BracketExpr,
        ["BracketTree"],
        lambda ctx, v, loc: ctx.parse_subtree(v[0], Expression),
        tag="bracket_expr",
        trees={0: Expression},
    )
    DimsTok = nonterminal("DimsTok")
    add(DimsTok, ["Dims"], lambda ctx, v, loc: v[0], tag="dims_tok")
    add(
        PostfixExpr,
        ["new", TypeNT, BracketExpr, ListSym(BracketExpr), ListSym(DimsTok)],
        lambda ctx, v, loc: n.NewArray(
            n.TypeName(v[1].base, v[1].dims, location=v[1].location),
            [v[2]] + v[3],
            len(v[4]),
            None,
            location=loc,
        ),
        tag="new_array",
    )

    ArrayInitNT = declare("ArrayInit", n.ArrayInitializer)
    add(
        ArrayInitNT,
        ["BraceTree"],
        lambda ctx, v, loc: n.ArrayInitializer(
            ctx.parse_subtree(v[0], VarInitList), location=loc
        ),
        tag="array_init",
        trees={0: VarInitList},
    )

    def new_init_array(ctx, v, loc):
        # The dims are part of the TypeNT ("new int[] {...}"); the element
        # type is the base with one fewer dimension.
        type_name = v[1]
        element = n.TypeName(type_name.base, max(type_name.dims - 1, 0),
                             location=type_name.location)
        return n.NewArray(element, [], max(type_name.dims - 1, 0), v[2],
                          location=loc)

    add(PostfixExpr, ["new", TypeNT, ArrayInitNT], new_init_array,
        tag="new_array_init")

    passthrough(VarInit, [Expression], tag="varinit_expr")
    passthrough(VarInit, [ArrayInitNT], tag="varinit_array")
    add(
        VarInitList,
        [ListSym(VarInit, ",")],
        lambda ctx, v, loc: v[0],
        tag="varinit_list",
    )

    add(ArgList, [ListSym(Expression, ",")], lambda ctx, v, loc: v[0], tag="args")

    # ======================================================================
    # Statements
    # ======================================================================

    add(
        Statement,
        ["BraceTree"],
        lambda ctx, v, loc: n.Block(ctx.parse_subtree(v[0], BlockStmts), location=loc),
        tag="block",
        trees={0: BlockStmts},
    )
    add(Statement, [";"], lambda ctx, v, loc: n.EmptyStmt(location=loc), tag="empty")
    add(
        Statement,
        [Expression, ";"],
        lambda ctx, v, loc: n.ExprStmt(v[0], location=loc),
        tag="expr_stmt",
    )

    add(
        VarDeclarator,
        [UnboundLocal, ListSym(DimsTok)],
        lambda ctx, v, loc: n.VarDeclarator(v[0], len(v[1]), None, location=loc),
        tag="declarator",
    )
    add(
        VarDeclarator,
        [UnboundLocal, ListSym(DimsTok), "=", VarInit],
        lambda ctx, v, loc: n.VarDeclarator(v[0], len(v[1]), v[3], location=loc),
        tag="declarator_init",
    )
    VarDecls = ListSym(VarDeclarator, ",", min1=True)

    def local_var(ctx, v, loc):
        return n.LocalVarDecl([], v[0], v[1], location=loc)

    LocalVarDeclNT = declare("LocalVarDecl", n.LocalVarDecl)
    add(LocalVarDeclNT, [TypeNT, VarDecls], local_var, tag="local_var")
    add(
        LocalVarDeclNT,
        ["final", TypeNT, VarDecls],
        lambda ctx, v, loc: n.LocalVarDecl(["final"], v[1], v[2], location=loc),
        tag="local_var_final",
    )
    add(
        Statement,
        [LocalVarDeclNT, ";"],
        lambda ctx, v, loc: v[0],
        tag="local_var_stmt",
    )

    def cond_of(ctx, token):
        return ctx.parse_subtree(token, Expression)

    add(
        Statement,
        ["if", "ParenTree", Statement],
        lambda ctx, v, loc: n.IfStmt(cond_of(ctx, v[1]), v[2], None, location=loc),
        tag="if_then",
        prec="if",
        trees={1: Expression},
    )
    add(
        Statement,
        ["if", "ParenTree", Statement, "else", Statement],
        lambda ctx, v, loc: n.IfStmt(cond_of(ctx, v[1]), v[2], v[4], location=loc),
        tag="if_else",
        trees={1: Expression},
    )
    add(
        Statement,
        ["while", "ParenTree", Statement],
        lambda ctx, v, loc: n.WhileStmt(cond_of(ctx, v[1]), v[2], location=loc),
        tag="while",
        trees={1: Expression},
    )
    add(
        Statement,
        ["do", Statement, "while", "ParenTree", ";"],
        lambda ctx, v, loc: n.DoStmt(v[1], cond_of(ctx, v[3]), location=loc),
        tag="do_while",
        trees={3: Expression},
    )
    add(
        Statement,
        ["for", "ParenTree", Statement],
        lambda ctx, v, loc: _make_for(ctx, v[1], v[2], loc),
        tag="for",
        trees={1: ForHeader},
    )
    add(Statement, ["return", ";"],
        lambda ctx, v, loc: n.ReturnStmt(None, location=loc), tag="return_void")
    add(Statement, ["return", Expression, ";"],
        lambda ctx, v, loc: n.ReturnStmt(v[1], location=loc), tag="return_value")
    add(Statement, ["throw", Expression, ";"],
        lambda ctx, v, loc: n.ThrowStmt(v[1], location=loc), tag="throw")
    add(Statement, ["break", ";"],
        lambda ctx, v, loc: n.BreakStmt(location=loc), tag="break")
    add(Statement, ["continue", ";"],
        lambda ctx, v, loc: n.ContinueStmt(location=loc), tag="continue")

    add(
        Statement,
        ["use", QName, ";"],
        lambda ctx, v, loc: ctx.make_use_statement(v[1].parts, loc),
        tag="use_stmt",
    )

    # try / catch / finally
    CatchClause = declare("CatchClause", n.CatchClause)
    add(
        CatchClause,
        ["catch", "ParenTree", "BraceTree"],
        lambda ctx, v, loc: n.CatchClause(
            ctx.parse_subtree(v[1], Formal),
            ctx.parse_subtree(v[2], BlockStmts),
            location=loc,
        ),
        tag="catch_clause",
        trees={1: Formal, 2: BlockStmts},
    )
    FinallyOpt = declare("FinallyOpt")
    add(FinallyOpt, [], lambda ctx, v, loc: None, tag="finally_none")
    add(
        FinallyOpt,
        ["finally", "BraceTree"],
        lambda ctx, v, loc: ctx.parse_subtree(v[1], BlockStmts),
        tag="finally_some",
        trees={1: BlockStmts},
    )

    def try_stmt(ctx, v, loc):
        body = ctx.parse_subtree(v[1], BlockStmts)
        catches, finally_body = v[2], v[3]
        if not catches and finally_body is None:
            raise ctx.error("try needs at least one catch or a finally", loc)
        return n.TryStmt(body, catches, finally_body, location=loc)

    add(
        Statement,
        ["try", "BraceTree", ListSym(CatchClause), FinallyOpt],
        try_stmt,
        tag="try_stmt",
        trees={1: BlockStmts},
    )

    # for-header, parsed from the paren-tree content
    OptExpr = declare("OptExpr")
    add(OptExpr, [], lambda ctx, v, loc: None, tag="opt_expr_none")
    passthrough(OptExpr, [Expression], tag="opt_expr_some")

    ForInit = declare("ForInit")
    add(ForInit, [], lambda ctx, v, loc: None, tag="for_init_none")
    passthrough(ForInit, [LocalVarDeclNT], tag="for_init_decl")
    add(ForInit, [Expression, ListSym(nonterminal("CommaExpr"))],
        lambda ctx, v, loc: [v[0]] + v[1], tag="for_init_exprs")
    CommaExpr = nonterminal("CommaExpr")
    add(CommaExpr, [",", Expression], lambda ctx, v, loc: v[1], tag="comma_expr")

    ForUpdate = declare("ForUpdate")
    add(ForUpdate, [], lambda ctx, v, loc: [], tag="for_update_none")
    add(ForUpdate, [Expression, ListSym(CommaExpr)],
        lambda ctx, v, loc: [v[0]] + v[1], tag="for_update_some")

    add(
        ForHeader,
        [ForInit, ";", OptExpr, ";", ForUpdate],
        lambda ctx, v, loc: (v[0], v[2], v[4]),
        tag="for_header",
    )

    # ======================================================================
    # Declarations
    # ======================================================================

    for formal_tag, rhs in (
        ("formal", [Mods, TypeNT, UnboundLocal, ListSym(DimsTok)]),
    ):
        def formal_action(ctx, v, loc):
            type_name = v[1]
            extra = len(v[3])
            if extra:
                type_name = n.TypeName(type_name.base, type_name.dims + extra,
                                       location=type_name.location)
            return n.Formal(v[0], type_name, v[2], location=loc)

        add(Formal, rhs, formal_action, tag=formal_tag)

    add(FormalList, [ListSym(Formal, ",")], lambda ctx, v, loc: v[0], tag="formals")

    Throws = declare("Throws")
    add(Throws, [], lambda ctx, v, loc: [], tag="throws_none")
    add(Throws, ["throws", ListSym(QName, ",", min1=True)],
        lambda ctx, v, loc: [n.TypeName(q.parts, 0, location=q.location) for q in v[1]],
        tag="throws_some")

    MethodBody = declare("MethodBody")
    add(MethodBody, [";"], lambda ctx, v, loc: None, tag="abstract_body")
    add(MethodBody, [LazyBody], lambda ctx, v, loc: v[0], tag="lazy_body")

    def method_decl(ctx, v, loc):
        formals = _parse_formals(ctx, v[3])
        return n.MethodDecl(v[0], v[1], _ident(v[2]), formals, v[4], v[5],
                            location=loc)

    for paren in ("ParenTree", "EmptyParen"):
        add(
            MemberDecl,
            [Mods, TypeNT, "Identifier", paren, Throws, MethodBody],
            method_decl,
            tag=f"method_decl_{paren}",
            trees={3: FormalList} if paren == "ParenTree" else None,
        )

    def ctor_decl(ctx, v, loc):
        formals = _parse_formals(ctx, v[2])
        return n.ConstructorDecl(v[0], _ident(v[1]), formals, v[3], v[4],
                                 location=loc)

    for paren in ("ParenTree", "EmptyParen"):
        add(
            MemberDecl,
            [Mods, "Identifier", paren, Throws, LazyBody],
            ctor_decl,
            tag=f"ctor_decl_{paren}",
            trees={2: FormalList} if paren == "ParenTree" else None,
        )

    add(
        MemberDecl,
        [Mods, TypeNT, VarDecls, ";"],
        lambda ctx, v, loc: n.FieldDecl(v[0], v[1], v[2], location=loc),
        tag="field_decl",
    )

    add(
        MemberDecl,
        ["use", QName, ";"],
        lambda ctx, v, loc: ctx.make_use_member(v[1].parts, loc),
        tag="use_member",
    )

    # explicit constructor calls
    for receiver in ("this", "super"):
        for paren in ("ParenTree", "EmptyParen"):
            add(
                Statement,
                [receiver, paren, ";"],
                lambda ctx, v, loc: n.ExprStmt(
                    n.MethodInvocation(
                        n.MethodName(None, ("<" + v[0].text + ">",), location=loc),
                        _parse_args(ctx, v[1]),
                        location=loc,
                    ),
                    location=loc,
                ),
                tag=f"ctor_call_{receiver}_{paren}",
                trees={1: ArgList} if paren == "ParenTree" else None,
            )

    # -- type declarations ------------------------------------------------

    SuperOpt = declare("SuperOpt")
    add(SuperOpt, [], lambda ctx, v, loc: None, tag="super_none")
    add(SuperOpt, ["extends", QName],
        lambda ctx, v, loc: n.TypeName(v[1].parts, 0, location=loc), tag="super_some")

    IfacesOpt = declare("IfacesOpt")
    add(IfacesOpt, [], lambda ctx, v, loc: [], tag="ifaces_none")
    add(IfacesOpt, ["implements", ListSym(QName, ",", min1=True)],
        lambda ctx, v, loc: [n.TypeName(q.parts, 0, location=q.location) for q in v[1]],
        tag="ifaces_some")

    def class_decl(ctx, v, loc):
        members = ctx.parse_subtree(v[5], MemberList)
        return n.ClassDecl(v[0], _ident(v[2]), v[3], v[4], members, location=loc)

    add(
        TypeDeclaration,
        [Mods, "class", "Identifier", SuperOpt, IfacesOpt, "BraceTree"],
        class_decl,
        tag="class_decl",
        trees={5: MemberList},
    )

    ExtendsIfaces = declare("ExtendsIfaces")
    add(ExtendsIfaces, [], lambda ctx, v, loc: [], tag="iext_none")
    add(ExtendsIfaces, ["extends", ListSym(QName, ",", min1=True)],
        lambda ctx, v, loc: [n.TypeName(q.parts, 0, location=q.location) for q in v[1]],
        tag="iext_some")

    def interface_decl(ctx, v, loc):
        members = ctx.parse_subtree(v[4], MemberList)
        return n.InterfaceDecl(v[0], _ident(v[2]), v[3], members, location=loc)

    add(
        TypeDeclaration,
        [Mods, "interface", "Identifier", ExtendsIfaces, "BraceTree"],
        interface_decl,
        tag="interface_decl",
        trees={4: MemberList},
    )

    # -- compilation-unit level declarations -------------------------------

    add(PackageDecl, ["package", QName, ";"],
        lambda ctx, v, loc: n.PackageDecl(v[1].parts, location=loc), tag="package")
    add(ImportDecl, ["import", QName, ";"],
        lambda ctx, v, loc: n.ImportDecl(v[1].parts, False, location=loc),
        tag="import_single")
    add(ImportDecl, ["import", QName, ".", "*", ";"],
        lambda ctx, v, loc: n.ImportDecl(v[1].parts, True, location=loc),
        tag="import_on_demand")
    add(UseDecl, ["use", QName, ";"],
        lambda ctx, v, loc: n.UseDecl(v[1].parts, location=loc), tag="use_decl")

    passthrough(Declaration, [PackageDecl], tag="decl_package")
    passthrough(Declaration, [ImportDecl], tag="decl_import")
    passthrough(Declaration, [UseDecl], tag="decl_use")
    passthrough(Declaration, [TypeDeclaration], tag="decl_type")

    # ======================================================================
    # Start symbols
    # ======================================================================
    grammar.declare_start(
        Declaration,
        TypeDeclaration,
        MemberDecl,
        Statement,
        Expression,
        Formal,
        FormalList,
        ArgList,
        TypeNT,
        QName,
        MethodName,
        VarDeclarator,
        ForHeader,
        VarInitList,
        LocalVarDeclNT,
        UnboundLocal,
        Literal,
        Primary,
        MethodInvocationNT,
        FieldAccessNT,
        ArrayAccessNT,
        NewExprNT,
    )

    return grammar


def _make_for(ctx, header_token: Token, body, loc):
    init, cond, update = ctx.parse_subtree(
        header_token, _NODE_SYMBOLS["ForHeader"]
    )
    return n.ForStmt(init, cond, update, body, location=loc)
