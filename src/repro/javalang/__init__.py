"""The base Java-subset language: grammar and base semantic actions.

The base grammar's semantic actions are ordinary (built-in) Mayans in
Maya's model: they are consulted by the dispatcher *first* in import
order, so user Mayans imported later override them purely through the
lexical tie-breaking rule (paper section 4.4) — which is how MultiJava
transparently retranslates ordinary method declarations (section 5.2).
"""

from repro.javalang.grammar_def import (
    BASE_ACTIONS,
    DRIVER_NONTERMINALS,
    base_grammar,
    node_symbol,
)

__all__ = [
    "BASE_ACTIONS",
    "DRIVER_NONTERMINALS",
    "base_grammar",
    "node_symbol",
]
