"""mayac: a command-line front end.

    python -m repro.mayac [options] file.maya ...

Options:
    --use NAME        import a metaprogram compiler-wide (repeatable;
                      the paper's -use option)
    --run CLASS       interpret CLASS.main() after compiling
    --expand          print the expanded (plain Java) source
    --no-macros       do not register the maya.util library
    --multijava       register the MultiJava extension

The macro library is registered by default, so sources can say
``use maya.util.ForEach;`` etc.
"""

from __future__ import annotations

import argparse
import sys

from repro import MayaCompiler
from repro.interp import Interpreter
from repro.macros import install_macro_library
from repro.multijava import install_multijava


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mayac", description="Compile (and run) Maya source files."
    )
    parser.add_argument("files", nargs="+", help="source files")
    parser.add_argument("--use", action="append", default=[],
                        metavar="NAME",
                        help="import a metaprogram compiler-wide")
    parser.add_argument("--run", metavar="CLASS",
                        help="run CLASS.main() after compiling")
    parser.add_argument("--expand", action="store_true",
                        help="print the expanded source")
    parser.add_argument("--no-macros", action="store_true",
                        help="skip the maya.util macro library")
    parser.add_argument("--multijava", action="store_true",
                        help="enable the MultiJava extension")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    compiler = MayaCompiler()
    if not args.no_macros:
        install_macro_library(compiler)
    if args.multijava:
        install_multijava(compiler)
    for name in args.use:
        compiler.use(name)

    program = None
    for path in args.files:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            program = compiler.compile(source, path)
        except Exception as error:  # surface compile errors cleanly
            print(f"mayac: {error}", file=sys.stderr)
            return 1

    if args.expand and program is not None:
        print(program.source())

    if args.run and program is not None:
        interp = Interpreter(program, echo=True)
        try:
            interp.run_static(args.run)
        except Exception as error:
            print(f"mayac: runtime error: {error}", file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
