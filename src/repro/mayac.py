"""mayac: a command-line front end.

    python -m repro.mayac [options] file.maya ...

Options:
    --daemon ADDR     compile on a running mayad at ADDR (host:port or
                      a Unix socket path) instead of in-process — the
                      warm daemon skips grammar/table building; see
                      ``python -m repro.server``
    --daemon-status   print the daemon's live introspection snapshot
                      (worker states, queue, rolling latency
                      percentiles, cache hit ratios, slow requests)
                      and exit; needs --daemon ADDR.  The continuous
                      version is ``python -m repro.server.top``
    --log-out FILE    mirror the structured event log to FILE as JSONL
                      (request-stamped lifecycle events; same record
                      discipline as --trace-out)
    --log-level LEVEL event-log threshold: debug/info/warn/error
    --use NAME        import a metaprogram compiler-wide (repeatable;
                      the paper's -use option)
    --run CLASS       interpret CLASS.main() after compiling
    --backend walk|closure|pycode
                      execution backend for --run: the seed tree-walker
                      (default), the closure compiler with slot frames
                      and inline caches, or the pycode backend that
                      generates Python source with specialized call
                      sites; also settable via the MAYA_BACKEND
                      environment variable
    --dump-codegen [METHOD]
                      print the pycode backend's generated Python
                      source (optionally only for methods whose
                      qualified label contains METHOD, e.g. Demo.main)
    --expand          print the expanded (plain Java) source
    --module-path DIR resolve ``import``s against .maya module files
                      under DIR (repeatable).  Naming several source
                      files, or any --module-path, switches mayac into
                      module mode: each file/importee is one module,
                      compiled in dependency order, with Mayans used at
                      a module's top level exported to its importers
    --module-cache DIR
                      persist per-module build products under DIR so an
                      unchanged module (and unchanged transitive deps)
                      is reused instead of recompiled (also honours the
                      MAYA_MODULE_CACHE environment variable)
    --module-report   print which modules were recompiled vs. reused
                      to stderr after a module-mode build
    --jobs N          build up to N modules concurrently where the
                      import DAG allows (module mode; ``auto`` = one
                      per CPU; also honours MAYA_JOBS).  Output is
                      byte-identical to --jobs 1; forwarded to the
                      daemon under --daemon
    --no-macros       do not register the maya.util library
    --multijava       register the MultiJava extension
    --max-errors N    stop collecting after N errors (default 20)
    --fuel N          Mayan expansion depth budget (default 64)
    --profile         print per-phase timings, dispatch counts, and
                      cache hit rates to stderr after compiling
    --table-cache DIR persist generated LALR tables under DIR so later
                      runs skip table generation (also honours the
                      MAYA_TABLE_CACHE environment variable)
    --trace           print the expansion trace (nested phase /
                      dispatch / Mayan spans with before/after
                      rewrites) to stderr after compiling
    --trace-out FILE  write the trace as JSONL (span records plus a
                      final metrics record) to FILE; ``-`` for stdout
    --provenance      with --expand, annotate generated statements
                      with the Mayan/template/use-site that made them
    --metrics-out FILE
                      write the metrics registry (cache, dispatch,
                      phase-timing, laziness, span counts) to FILE;
                      ``-`` for stdout
    --metrics-format prom|json
                      metrics output format (default prom: Prometheus
                      text exposition)
    --flamegraph FILE write a flamegraph of the compile's span tree to
                      FILE; ``-`` for stdout
    --flamegraph-format speedscope|folded
                      flamegraph format (default speedscope: JSON that
                      loads at https://www.speedscope.app; folded:
                      flamegraph.pl collapsed stacks)
    --lazy-report     print the laziness profile (lazy thunks created
                      vs. forced, per phase and production, and the
                      never-parsed fraction) to stderr

The macro library is registered by default, so sources can say
``use maya.util.ForEach;`` etc.

Unlike the paper's mayac (which stops at the first error), this front
end keeps compiling past recoverable errors and renders every collected
diagnostic — source line, caret, notes, expansion backtrace — to
stderr, exiting 1.  Output files that cannot be written are reported
the same way (a rendered diagnostic, non-zero exit), never as a Python
traceback.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import MayaCompiler, perf, trace
from repro.diag import (
    DEFAULT_EXPANSION_DEPTH,
    DEFAULT_MAX_ERRORS,
    CompileFailed,
    Diagnostic,
    DiagnosticError,
)
from repro.interp import Interpreter
from repro.macros import install_macro_library
from repro.multijava import install_multijava
from repro.obs import export as obs_export
from repro.obs import flamegraph as obs_flame
from repro.obs import lazy as obs_lazy
from repro.obs import log as obs_log
from repro.obs.metrics import REGISTRY


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mayac", description="Compile (and run) Maya source files."
    )
    parser.add_argument("files", nargs="*", help="source files")
    parser.add_argument("--daemon", metavar="ADDR",
                        help="compile on a running mayad (host:port or "
                             "socket path) instead of in-process")
    parser.add_argument("--daemon-status", action="store_true",
                        help="print the daemon's live stats snapshot "
                             "and exit (needs --daemon ADDR)")
    parser.add_argument("--log-out", metavar="FILE",
                        help="mirror the structured event log to FILE "
                             "as JSONL")
    parser.add_argument("--log-level", choices=sorted(obs_log.LEVELS),
                        default=None,
                        help="event-log threshold (default info)")
    parser.add_argument("--use", action="append", default=[],
                        metavar="NAME",
                        help="import a metaprogram compiler-wide")
    parser.add_argument("--run", metavar="CLASS",
                        help="run CLASS.main() after compiling")
    parser.add_argument("--backend", choices=("walk", "closure", "pycode"),
                        default=None,
                        help="execution backend for --run (default: "
                             "MAYA_BACKEND or walk)")
    parser.add_argument("--dump-codegen", nargs="?", const="",
                        default=None, metavar="METHOD",
                        help="print the pycode backend's generated "
                             "Python source (optionally filtered to "
                             "methods whose label contains METHOD)")
    parser.add_argument("--expand", action="store_true",
                        help="print the expanded source")
    parser.add_argument("--module-path", action="append", default=[],
                        metavar="DIR",
                        help="resolve imports against .maya modules "
                             "under DIR (repeatable; enables module "
                             "mode)")
    parser.add_argument("--module-cache", metavar="DIR",
                        default=os.environ.get("MAYA_MODULE_CACHE"),
                        help="persist per-module build products under "
                             "DIR for incremental rebuilds")
    parser.add_argument("--module-report", action="store_true",
                        help="print recompiled-vs-reused modules to "
                             "stderr after a module-mode build")
    parser.add_argument("--jobs", metavar="N",
                        default=os.environ.get("MAYA_JOBS"),
                        help="build up to N modules concurrently where "
                             "the import DAG allows ('auto' = one per "
                             "CPU; default 1; also honours MAYA_JOBS)")
    parser.add_argument("--no-macros", action="store_true",
                        help="skip the maya.util macro library")
    parser.add_argument("--multijava", action="store_true",
                        help="enable the MultiJava extension")
    parser.add_argument("--max-errors", type=int, metavar="N",
                        default=DEFAULT_MAX_ERRORS,
                        help="stop collecting after N errors "
                             "(default %(default)s)")
    parser.add_argument("--fuel", type=int, metavar="N",
                        default=DEFAULT_EXPANSION_DEPTH,
                        help="Mayan expansion depth budget "
                             "(default %(default)s)")
    parser.add_argument("--profile", action="store_true",
                        help="print phase timings, dispatch counts, and "
                             "cache hit rates after compiling")
    parser.add_argument("--table-cache", metavar="DIR",
                        help="persist generated LALR tables under DIR")
    parser.add_argument("--trace", action="store_true",
                        help="print the expansion trace to stderr")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="write the trace as JSONL to FILE "
                             "('-' for stdout)")
    parser.add_argument("--provenance", action="store_true",
                        help="with --expand, annotate generated "
                             "statements with their origin")
    parser.add_argument("--metrics-out", metavar="FILE",
                        help="write the metrics registry to FILE "
                             "('-' for stdout)")
    parser.add_argument("--metrics-format", choices=("prom", "json"),
                        default="prom",
                        help="metrics output format (default %(default)s)")
    parser.add_argument("--flamegraph", metavar="FILE",
                        help="write a flamegraph of the compile's spans "
                             "to FILE ('-' for stdout)")
    parser.add_argument("--flamegraph-format",
                        choices=("speedscope", "folded"),
                        default="speedscope",
                        help="flamegraph format (default %(default)s)")
    parser.add_argument("--lazy-report", action="store_true",
                        help="print the laziness profile (thunks created "
                             "vs. forced) to stderr")
    return parser


def _report(engine, error: BaseException) -> None:
    """Render a compile failure to stderr — every collected diagnostic
    for a multi-error CompileFailed, the single diagnostic otherwise."""
    if isinstance(error, CompileFailed):
        rendered = error.render()
        count = sum(1 for d in error.diagnostics if d.severity == "error")
    elif isinstance(error, DiagnosticError):
        rendered = engine.render(error.diagnostic)
        count = 1
    else:
        rendered = f"{type(error).__name__}: {error}"
        count = 1
    print(rendered, file=sys.stderr)
    plural = "s" if count != 1 else ""
    print(f"mayac: {count} error{plural}", file=sys.stderr)


def _write_output(path: str, text: str, engine, what: str) -> bool:
    """Write exporter output to a path ('-' = stdout).  Failures render
    as a diagnostic (never a traceback); returns False on failure so
    the caller can exit non-zero."""
    if path == "-":
        sys.stdout.write(text)
        return True
    try:
        with open(path, "w", encoding="utf-8") as out:
            out.write(text)
        return True
    except OSError as error:
        reason = error.strerror or str(error)
        diagnostic = Diagnostic(
            f"cannot write {what} to {path}: {reason}", phase="general",
        )
        print(engine.render(diagnostic), file=sys.stderr)
        return False


def _module_mode(args) -> bool:
    """Module mode: several source files, or any --module-path."""
    return bool(args.module_path) or len(args.files) > 1


def _print_module_report(order, recompiled) -> None:
    from repro.modules.build import format_module_report

    print(format_module_report(order, recompiled), file=sys.stderr)


def _daemon_modules(args, client) -> int:
    """Module mode over --daemon: discover the graph locally (a token
    scan per file, no parsing), ship every module's source, and let the
    daemon's shared module cache do the incremental work."""
    from repro.diag import DiagnosticError
    from repro.modules import FileSystemSources, ModuleGraph
    from repro.server.client import DaemonError
    from repro.server.protocol import STATUS_COMPILE_ERROR, STATUS_OK
    from repro.types.builtins import standard_registry

    sources = FileSystemSources(args.module_path or [])
    try:
        roots = [sources.module_name_for(path) for path in args.files]
        graph = ModuleGraph.discover(roots, sources,
                                     registry=standard_registry())
    except DiagnosticError as error:
        print(f"mayac: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"mayac: {error}", file=sys.stderr)
        return 1
    payload = {name: info.source for name, info in graph.modules.items()}
    try:
        from repro.modules import resolve_jobs

        resolve_jobs(args.jobs)  # validate before shipping
    except ValueError as error:
        print(f"mayac: {error}", file=sys.stderr)
        return 2
    try:
        response = client.compile_modules(
            payload, roots, expand=args.expand,
            provenance=args.provenance, use=args.use,
            multijava=args.multijava, no_macros=args.no_macros,
            fuel=args.fuel, max_errors=args.max_errors,
            jobs=args.jobs)
    except DaemonError as error:
        print(f"mayac: {error}", file=sys.stderr)
        return 3
    status = response.get("status")
    if status == STATUS_OK:
        modules = response.get("modules") or {}
        if args.module_report:
            _print_module_report(modules.get("order", ()),
                                 modules.get("recompiled", ()))
        if args.expand and "expanded" in response:
            print(response["expanded"])
        return 0
    for diagnostic in response.get("diagnostics", ()):
        print(diagnostic.get("rendered")
              or diagnostic.get("message", ""), file=sys.stderr)
    errors = len(response.get("diagnostics", ())) or 1
    plural = "s" if errors != 1 else ""
    print(f"mayac: {errors} error{plural}", file=sys.stderr)
    return 1 if status == STATUS_COMPILE_ERROR else 3


def _daemon_main(args) -> int:
    """Delegate compilation to a running mayad (``--daemon``)."""
    from repro.server.client import DaemonError, MayaClient
    from repro.server.protocol import STATUS_COMPILE_ERROR, STATUS_OK

    if args.run:
        print("mayac: --run is not supported with --daemon "
              "(the daemon compiles; run locally)", file=sys.stderr)
        return 2
    client = MayaClient(args.daemon)
    if _module_mode(args):
        return _daemon_modules(args, client)
    code = 0
    for path in args.files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            print(f"mayac: cannot read {path}: {error.strerror}",
                  file=sys.stderr)
            return 1
        try:
            response = client.compile(
                source, filename=path, expand=args.expand,
                provenance=args.provenance, use=args.use,
                multijava=args.multijava, no_macros=args.no_macros,
                fuel=args.fuel, max_errors=args.max_errors)
        except DaemonError as error:
            print(f"mayac: {error}", file=sys.stderr)
            return 3
        status = response.get("status")
        if status == STATUS_OK:
            if args.expand and "expanded" in response:
                print(response["expanded"])
            continue
        for diagnostic in response.get("diagnostics", ()):
            print(diagnostic.get("rendered")
                  or diagnostic.get("message", ""), file=sys.stderr)
        errors = len(response.get("diagnostics", ())) or 1
        plural = "s" if errors != 1 else ""
        print(f"mayac: {errors} error{plural}", file=sys.stderr)
        code = 1 if status == STATUS_COMPILE_ERROR else 3
    return code


def _daemon_status(args) -> int:
    """``--daemon-status``: one live ``stats`` snapshot, rendered."""
    from repro.server.client import DaemonError, MayaClient
    from repro.server.top import render_stats

    if not args.daemon:
        print("mayac: --daemon-status needs --daemon ADDR",
              file=sys.stderr)
        return 2
    client = MayaClient(args.daemon, retries=0, timeout_s=5.0)
    try:
        stats = client.stats()
    except DaemonError as error:
        print(f"mayac: {error}", file=sys.stderr)
        return 3
    print(render_stats(stats))
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level:
        obs_log.LOG.set_level(args.log_level)
    if args.log_out:
        obs_log.LOG.set_sink(args.log_out)
    if args.daemon_status:
        return _daemon_status(args)
    if not args.files:
        print("mayac: no source files (nothing to do)", file=sys.stderr)
        return 2
    if args.daemon:
        return _daemon_main(args)
    # Local compiles run under a request scope too: exemplars,
    # diagnostics, and --log-out lines carry one request_id/trace_id
    # per mayac invocation, same contract as a daemon request.
    with obs_log.request_scope():
        return _local_main(args)


def _local_main(args) -> int:
    if args.table_cache:
        from repro.lalr.tables import enable_disk_cache

        enable_disk_cache(args.table_cache)
    # --metrics-out wants phase timings and laziness figures covered,
    # so it implies both profilers; each stays independently available.
    want_profiler = args.profile or args.metrics_out
    want_lazy = args.lazy_report or args.metrics_out
    want_tracer = args.trace or args.trace_out or args.flamegraph
    profiler = perf.activate(perf.Profiler()) if want_profiler else None
    lazy_profiler = obs_lazy.activate() if want_lazy else None
    tracer = trace.activate() if want_tracer else None
    compiler = MayaCompiler()
    engine = compiler.env.diag
    engine.max_errors = max(1, args.max_errors)
    engine.max_expansion_depth = max(1, args.fuel)
    if not args.no_macros:
        install_macro_library(compiler)
    if args.multijava:
        install_multijava(compiler)
    for name in args.use:
        compiler.use(name)

    def finish(code: int) -> int:
        if profiler is not None:
            if args.profile:
                print(profiler.render(dispatcher=compiler.env.dispatcher),
                      file=sys.stderr)
            perf.deactivate()
        if lazy_profiler is not None:
            if args.lazy_report:
                print(lazy_profiler.render(), file=sys.stderr)
            obs_lazy.deactivate()
        if tracer is not None:
            if args.trace:
                print(tracer.render(), file=sys.stderr)
            if args.trace_out:
                # One metrics schema everywhere: the trace's final
                # metrics record is the registry snapshot (the same
                # payload --metrics-out json writes).
                metrics = obs_export.to_json(REGISTRY)
                if profiler is not None:
                    metrics["profile"] = profiler.snapshot()
                if lazy_profiler is not None:
                    metrics["laziness"] = lazy_profiler.snapshot()
                if not _write_output(args.trace_out,
                                     tracer.to_jsonl(metrics),
                                     engine, "trace"):
                    code = max(code, 1)
            if args.flamegraph:
                if args.flamegraph_format == "folded":
                    text = obs_flame.folded_stacks(tracer)
                else:
                    text = obs_flame.to_speedscope_text(
                        tracer, name=" ".join(args.files))
                if not _write_output(args.flamegraph, text,
                                     engine, "flamegraph"):
                    code = max(code, 1)
            trace.deactivate()
        if args.metrics_out:
            if args.metrics_format == "json":
                text = obs_export.to_json_text(REGISTRY)
            else:
                text = obs_export.to_prometheus(REGISTRY)
            if not _write_output(args.metrics_out, text, engine, "metrics"):
                code = max(code, 1)
        return code

    program = None
    if _module_mode(args):
        from repro.modules import (FileSystemSources, ModuleBuilder,
                                   resolve_jobs)

        sources = FileSystemSources(args.module_path or [])
        options = {
            "use": list(args.use),
            "no_macros": args.no_macros,
            "multijava": args.multijava,
            "provenance": args.provenance,
        }
        try:
            jobs = resolve_jobs(args.jobs)
        except ValueError as error:
            print(f"mayac: {error}", file=sys.stderr)
            return finish(2)
        # Fork workers give real CPU parallelism under the GIL; the
        # in-process CLI is single-threaded here, so forking is safe.
        # MAYA_JOBS_MODE=thread opts into the shared-memory scheduler.
        mode = os.environ.get("MAYA_JOBS_MODE", "fork")
        builder = ModuleBuilder(sources, cache_dir=args.module_cache,
                                options=options, env=compiler.env,
                                jobs=jobs, mode=mode)
        need_bodies = bool(args.run) or args.dump_codegen is not None
        try:
            roots = [sources.module_name_for(path) for path in args.files]
            result = builder.build(roots, need_bodies=need_bodies)
        except OSError as error:
            print(f"mayac: {error}", file=sys.stderr)
            return finish(1)
        except Exception as error:
            _report(engine, error)
            return finish(1)
        program = result.program
        if args.module_report:
            _print_module_report(result.order, result.recompiled)
        if args.expand:
            print(result.expanded())
    else:
        for path in args.files:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as error:
                print(f"mayac: cannot read {path}: {error.strerror}",
                      file=sys.stderr)
                return finish(1)
            obs_log.emit("mayac.compile.start", level="debug",
                         filename=path)
            try:
                program = compiler.compile(source, path)
            except Exception as error:  # surface compile errors cleanly
                obs_log.emit("mayac.compile.error", level="error",
                             filename=path,
                             error=type(error).__name__)
                _report(engine, error)
                return finish(1)
            obs_log.emit("mayac.compile.done", filename=path,
                         classes=len(program.classes))

        if args.expand and program is not None:
            print(program.source(provenance=args.provenance))

    interp = None
    if args.run and program is not None:
        interp = Interpreter(program, echo=True, backend=args.backend)
        try:
            with perf.phase("interp"), trace.span("interp", args.run):
                interp.run_static(args.run)
        except DiagnosticError as error:
            print(engine.render(error.diagnostic), file=sys.stderr)
            return finish(2)
        except Exception as error:
            print(f"mayac: runtime error: {error}", file=sys.stderr)
            return finish(2)

    if args.dump_codegen is not None and program is not None:
        if not _dump_codegen(program, interp, args.dump_codegen):
            return finish(1)
    return finish(0)


def _dump_codegen(program, interp, pattern: str) -> bool:
    """Print the pycode backend's generated Python source for every
    compiled method (optionally filtered by a label substring).  Methods
    the codegen declines are listed as walker-fallback comments.  False
    when a filter was given and matched nothing."""
    from repro.interp import pycodegen

    if interp is None or interp.backend != "pycode":
        interp = Interpreter(program, backend="pycode")
    matched = 0
    for compiled in program.classes.values():
        methods = [m for overloads in compiled.type.methods.values()
                   for m in overloads]
        methods.extend(compiled.type.constructors)
        for method in methods:
            label = pycodegen.method_label(method)
            if pattern and pattern not in label:
                continue
            matched += 1
            plan = pycodegen.plan_for(method, interp)
            print(f"# === {label} ===")
            if plan is pycodegen.FALLBACK:
                print("# (no generated code: runs on the walker)")
            else:
                print(plan.source.rstrip())
            print()
    if pattern and not matched:
        print(f"mayac: --dump-codegen: no method matches {pattern!r}",
              file=sys.stderr)
        return False
    return True


def cli(argv=None) -> int:
    """``main`` plus conventional Unix exit behavior: SIGINT exits 130
    (128 + SIGINT) with a one-line note, and a closed stdout (e.g.
    ``mayac --expand | head``) exits 0 — neither ever prints a Python
    traceback."""
    try:
        return main(argv)
    except KeyboardInterrupt:
        try:
            print("mayac: interrupted", file=sys.stderr)
        except Exception:
            pass
        return 130
    except BrokenPipeError:
        # The reader went away; the convention is silent success.
        # Point stdout at devnull so interpreter-exit flushing doesn't
        # raise a secondary BrokenPipeError after we return.
        try:
            import os

            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        except Exception:
            sys.stdout = open(os.devnull, "w")
        return 0


if __name__ == "__main__":
    sys.exit(cli())
