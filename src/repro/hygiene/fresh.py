"""Fresh-name generation.

Generated names contain ``$`` — unwritable in ordinary source (our
scanner accepts them only because templates and the compiler itself
mint them), so they are "guaranteed to be unique within a compilation
unit" by construction.

The counter is thread-local: the incremental module builder resets it
at the start of every recompiled module (so a module's expanded output
is a pure function of its source, the artifact byte-identity the
property tests assert), and daemon workers compile concurrently — a
process-global counter would let one thread's reset tear another
thread's unit mid-compile.
"""

from __future__ import annotations

import itertools
import threading

from repro.ast.nodes import Ident


class _Local(threading.local):
    def __init__(self):
        self.counter = itertools.count(1)


_local = _Local()


def make_id(base: str = "tmp") -> Ident:
    """A fresh identifier that cannot collide with source names."""
    return Ident(f"{base}${next(_local.counter)}")


def fresh_name(base: str) -> str:
    return f"{base}${next(_local.counter)}"


def reset_fresh_names() -> None:
    """Restart this thread's counter — the start-of-unit determinism
    point (tests and the module builder)."""
    _local.counter = itertools.count(1)


class Environment:
    """Paper-style facade: ``Environment.make_id()``."""

    make_id = staticmethod(make_id)
    makeId = staticmethod(make_id)
