"""Fresh-name generation.

Generated names contain ``$`` — unwritable in ordinary source (our
scanner accepts them only because templates and the compiler itself
mint them), so they are "guaranteed to be unique within a compilation
unit" by construction.
"""

from __future__ import annotations

import itertools

from repro.ast.nodes import Ident

_counter = itertools.count(1)


def make_id(base: str = "tmp") -> Ident:
    """A fresh identifier that cannot collide with source names."""
    return Ident(f"{base}${next(_counter)}")


def fresh_name(base: str) -> str:
    return f"{base}${next(_counter)}"


def reset_fresh_names() -> None:
    """Reset the counter (tests only, for stable expected output)."""
    global _counter
    _counter = itertools.count(1)


class Environment:
    """Paper-style facade: ``Environment.make_id()``."""

    make_id = staticmethod(make_id)
    makeId = staticmethod(make_id)
