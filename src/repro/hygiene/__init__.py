"""Hygiene and referential transparency (paper section 4.3).

Maya decides hygiene *statically*, when a template is compiled:
binding constructs are explicit in the grammar (the UnboundLocal
nonterminal), so every identifier's syntactic role is known at template
compile time.  Binders and their references are renamed to fresh
``name$N`` identifiers at instantiation; free variable references are
errors at template compile time; type names are resolved at definition
time (referential transparency) and embedded as StrictTypeNames.
"""

from repro.hygiene.fresh import Environment, make_id, reset_fresh_names
from repro.hygiene.analysis import (
    HygieneError,
    TemplateInfo,
    analyze_template,
)

__all__ = [
    "Environment",
    "HygieneError",
    "TemplateInfo",
    "analyze_template",
    "make_id",
    "reset_fresh_names",
]
