"""Static hygiene analysis of compiled templates.

Runs at template compile time over the pattern parse tree:

* identifiers in binding positions (under ``UnboundLocal``) are
  *binders*: marked for fresh renaming at instantiation;
* name references whose first segment is a template binder are marked
  for the same renaming;
* type names are resolved against the definition-site registry and
  marked to instantiate as ``StrictTypeName`` (referential
  transparency);
* expression names are resolved to class prefixes where possible and
  the resolution embedded as a hint;
* anything else is a *free variable* — reported now, at template
  compile time, not when the template runs (the paper's static
  guarantee).

Unquoted identifiers (holes) are exempt everywhere: unquoting an
Identifier-valued expression is Maya's explicit hygiene-breaking
mechanism.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.diag import DiagnosticError
from repro.patterns.pattern_parser import (
    PTGroup,
    PTHole,
    PTLeaf,
    PTNode,
    PTStmts,
)

BINDING_NONTERMINALS = frozenset(["UnboundLocal"])


class HygieneError(DiagnosticError):
    """A template refers to a free variable or unknown type."""

    phase = "expand"


class TemplateInfo:
    """The result of hygiene analysis: the set of binder names."""

    def __init__(self, binders: Set[str]):
        self.binders = binders


def analyze_template(tree, registry) -> TemplateInfo:
    """Analyze and annotate a template's pattern parse tree in place."""
    binders: Set[str] = set()
    _collect_binders(tree, binders)
    _check_references(tree, None, binders, registry)
    return TemplateInfo(binders)


# ---------------------------------------------------------------------------
# Pass 1: binders
# ---------------------------------------------------------------------------


def _collect_binders(tree, binders: Set[str]) -> None:
    if isinstance(tree, PTNode):
        if tree.production.lhs.name in BINDING_NONTERMINALS:
            child = tree.children[0]
            if isinstance(child, PTLeaf):
                child.meta["binder"] = True
                binders.add(child.token.text)
        for child in tree.children:
            _collect_binders(child, binders)
    elif isinstance(tree, PTStmts):
        for element in tree.elements:
            _collect_binders(element, binders)
    elif isinstance(tree, PTGroup) and tree.content is not None:
        _collect_binders(tree.content, binders)


# ---------------------------------------------------------------------------
# Pass 2: references
# ---------------------------------------------------------------------------


def _check_references(tree, parent: Optional[PTNode], binders, registry) -> None:
    if isinstance(tree, PTNode):
        if tree.production.lhs.name == "QName" and not _parent_is_qname(parent):
            _analyze_qname(tree, parent, binders, registry)
            # Children below a maximal QName were handled by the chain
            # analysis; still descend for nested holes/groups.
        for child in tree.children:
            _check_references(child, tree, binders, registry)
    elif isinstance(tree, PTStmts):
        for element in tree.elements:
            _check_references(element, None, binders, registry)
    elif isinstance(tree, PTGroup) and tree.content is not None:
        _check_references(tree.content, None, binders, registry)


def _parent_is_qname(parent: Optional[PTNode]) -> bool:
    return parent is not None and parent.production.lhs.name == "QName"


def _qname_chain(node: PTNode) -> Tuple[List[str], List[object], bool]:
    """The dotted parts and segment leaves of a QName chain.

    The final flag is False when any segment is a hole (unquoted
    identifier), which exempts the chain from hygiene checks.
    """
    parts: List[str] = []
    leaves: List[object] = []
    pure = True

    def walk(current) -> None:
        nonlocal pure
        if isinstance(current, PTNode) and current.production.lhs.name == "QName":
            for child in current.children:
                walk(child)
        elif isinstance(current, PTLeaf):
            if current.token.kind == "Identifier":
                parts.append(current.token.text)
                leaves.append(current)
        elif isinstance(current, PTHole):
            parts.append(f"${current.item.name}")
            leaves.append(current)
            pure = False

    walk(node)
    return parts, leaves, pure


def _analyze_qname(node: PTNode, parent: Optional[PTNode], binders, registry) -> None:
    parts, leaves, pure = _qname_chain(node)
    if not pure or not parts:
        return
    context = parent.production.tag if parent is not None else None
    parent_lhs = parent.production.lhs.name if parent is not None else None

    if parent_lhs == "TypeName":
        resolved = registry.resolve(tuple(parts))
        if resolved is None:
            raise HygieneError(
                f"{node.location}: template type name "
                f"{'.'.join(parts)} does not resolve at template-definition "
                f"time (referential transparency)"
            )
        parent.meta["strict_type"] = resolved
        return

    check_parts = parts
    if parent_lhs == "MethodName" and len(parts) == 1:
        # An unqualified call: the name is a method selector, resolved
        # against the enclosing class at the expansion site.
        return
    if parent_lhs == "MethodName":
        check_parts = parts[:-1]

    if check_parts and check_parts[0] in binders:
        leaves[0].meta["rename"] = True
        return

    for k in range(len(check_parts), 0, -1):
        resolved = registry.resolve(tuple(check_parts[:k]))
        if resolved is not None:
            node.meta["class_prefix"] = (resolved, k)
            return

    raise HygieneError(
        f"{node.location}: template refers to free variable "
        f"{check_parts[0]!r} (unquote a Reference, or bind it in the "
        f"template)"
    )
