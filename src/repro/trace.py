"""Expansion observability: span tracing and AST provenance.

Mayans run invisibly inside the parser, so the two debugging questions
— *what expanded here?* and *where did this generated node come from?*
— need first-class answers (mcpyrate's step-by-step expansion view is
the model).  This module provides both:

* **Spans** — a :class:`Tracer` records a tree of timed spans: one per
  compiler phase (lex / parse+expand / shape / bodies+check / interp),
  one per Mayan-relevant dispatch, one per Mayan activation (with the
  mcpyrate-style before/after unparse of the rewrite), and one per
  template instantiation.  The tree exports as JSONL
  (``mayac --trace-out FILE``) or as an indented human view
  (``mayac --trace``).  Base-action reductions with no Mayans in scope
  are *not* spanned — they are counted in the metrics instead — so a
  trace stays proportional to the expansion work, not to the grammar.

* **Provenance** — every AST node reduced or instantiated during a
  Mayan activation carries an :class:`Origin`:
  ``Mayan -> template -> use-site SourceSpan``, chained through nested
  expansions via ``parent``.  Diagnostics render the chain as
  "expanded from" notes, and the unparser can annotate statements with
  it (``mayac --expand --provenance``).

When no tracer is active every hook is a single module-attribute read
plus a ``None`` check, so ``--trace`` off stays off the hot paths.
"""

from __future__ import annotations

import contextvars
import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.diag import SourceSpan
from repro.obs import log as obs_log
from repro.obs.metrics import REGISTRY

#: How many origin links a diagnostic renders before eliding.
MAX_ORIGIN_NOTES = 8

#: Span counts land in the process-wide metrics registry so a trace's
#: shape (how many dispatch/expand/template spans) is scrapeable even
#: when the span tree itself is not exported.
_SPANS_TOTAL = REGISTRY.counter(
    "maya_trace_spans_total", "Trace spans recorded, by kind.", ("kind",))


class Origin:
    """Provenance of one generated AST node.

    ``mayan`` names the activation that produced the node, ``template``
    the quasiquote it was instantiated from (None when the Mayan built
    the node directly), ``use_site`` the nearest *real* source position
    of the activation, and ``parent`` the enclosing activation's origin
    for nested expansions.  The chain always terminates at an origin
    whose ``use_site`` points into real source (the outermost
    activation was triggered by user-written syntax).
    """

    # One Origin is allocated per activation whether or not its nodes
    # are ever inspected, so construction must stay cheap: ``mayan``
    # may be the Mayan object itself (stringified on first read) and
    # ``use_site`` a raw lexer Location (converted to a SourceSpan on
    # first read).  Both conversions write back, so the laziness is
    # invisible to consumers.
    __slots__ = ("_mayan", "template", "_use_site", "parent")

    def __init__(self, mayan, template: Optional[str],
                 use_site, parent: Optional["Origin"] = None):
        self._mayan = mayan
        self.template = template
        self._use_site = use_site
        self.parent = parent

    @property
    def mayan(self) -> Optional[str]:
        name = self._mayan
        if name is not None and not isinstance(name, str):
            name = str(name)
            self._mayan = name
        return name

    @property
    def use_site(self) -> SourceSpan:
        site = self._use_site
        if not isinstance(site, SourceSpan):
            site = SourceSpan.from_location(site) if site is not None \
                else SourceSpan()
            self._use_site = site
        return site

    def with_template(self, template: str) -> "Origin":
        """This activation's origin, refined with the template that is
        actually producing the nodes."""
        return Origin(self._mayan, template, self._use_site, self.parent)

    def chain(self) -> Iterator["Origin"]:
        origin: Optional[Origin] = self
        while origin is not None:
            yield origin
            origin = origin.parent

    @property
    def root(self) -> "Origin":
        origin = self
        while origin.parent is not None:
            origin = origin.parent
        return origin

    def describe(self) -> str:
        parts = [self.mayan or "<no Mayan>"]
        if self.template:
            parts.append(f"via {self.template}")
        if self.use_site.is_known:
            parts.append(f"at {self.use_site}")
        return " ".join(parts)

    def brief(self) -> str:
        """A compact form for unparse annotations."""
        name = self.mayan or self.template or "?"
        if self.use_site.is_known:
            return f"{name} @ {self.use_site}"
        return name

    def to_dict(self) -> Dict[str, object]:
        return {
            "mayan": self.mayan,
            "template": self.template,
            "use_site": str(self.use_site) if self.use_site.is_known else None,
        }

    def __repr__(self) -> str:
        return f"<origin {self.describe()}>"


def provenance_notes(node) -> List[str]:
    """The "expanded from" note lines for a node's origin chain (empty
    for ordinary user-written nodes)."""
    origin = getattr(node, "origin", None)
    if origin is None:
        return []
    notes: List[str] = []
    for link in origin.chain():
        if len(notes) >= MAX_ORIGIN_NOTES:
            notes.append("... (origin chain elided)")
            break
        notes.append(f"expanded from {link.describe()}")
    return notes


def use_site_span(location, stack) -> SourceSpan:
    """The nearest *known* source position for an activation: the
    dispatch location itself, or — when the expansion fired inside
    template-made syntax with no position — the innermost enclosing
    activation that still points into real source."""
    if getattr(location, "line", 0) > 0:
        return SourceSpan.from_location(location)
    for _, active_location in reversed(stack):
        if getattr(active_location, "line", 0) > 0:
            return SourceSpan.from_location(active_location)
    return SourceSpan.from_location(location)


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------

#: Span kinds emitted by the compiler.
SPAN_KINDS = ("compile", "phase", "dispatch", "expand", "template", "interp")


class Span:
    """One timed node in the trace tree."""

    __slots__ = ("id", "parent_id", "kind", "name", "attrs",
                 "start", "end", "children")

    def __init__(self, span_id: int, parent_id: Optional[int],
                 kind: str, name: str, attrs: Dict[str, object],
                 start: float):
        self.id = span_id
        self.parent_id = parent_id
        self.kind = kind
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: Optional[float] = None
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def __repr__(self) -> str:
        return f"<span #{self.id} {self.kind} {self.name!r}>"


class Tracer:
    """Collects a tree of spans for one or more compiles.

    A tracer constructed under a bound request context (see
    :mod:`repro.obs.log`) captures the request's IDs, and every
    exported span record carries them — the trace tree of a daemon
    request is joinable against the event log and the response by
    ``request_id``.
    """

    def __init__(self):
        self.roots: List[Span] = []
        self.stack: List[Span] = []
        self._next_id = 0
        self._epoch = time.perf_counter()
        context = obs_log.current_request()
        self.request_id = context.request_id if context else None
        self.trace_id = context.trace_id if context else None

    # -- recording -------------------------------------------------------

    def begin(self, kind: str, name: str, **attrs) -> Span:
        parent = self.stack[-1] if self.stack else None
        span = Span(self._next_id, parent.id if parent else None,
                    kind, name, attrs, time.perf_counter())
        self._next_id += 1
        _SPANS_TOTAL.labels(kind).inc()
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self.stack.append(span)
        return span

    def end(self, span: Span, **attrs) -> None:
        span.end = time.perf_counter()
        if attrs:
            span.attrs.update(attrs)
        # Tolerate exception unwinds that skipped inner end() calls.
        while self.stack and self.stack[-1] is not span:
            dangling = self.stack.pop()
            if dangling.end is None:
                dangling.end = span.end
        if self.stack and self.stack[-1] is span:
            self.stack.pop()

    @contextmanager
    def span(self, kind: str, name: str, **attrs) -> Iterator[Span]:
        entry = self.begin(kind, name, **attrs)
        try:
            yield entry
        finally:
            self.end(entry)

    # -- queries ---------------------------------------------------------

    def iter_spans(self) -> Iterator[Span]:
        def walk(span: Span) -> Iterator[Span]:
            yield span
            for child in span.children:
                yield from walk(child)
        for root in self.roots:
            yield from walk(root)

    def spans_of_kind(self, kind: str) -> List[Span]:
        return [s for s in self.iter_spans() if s.kind == kind]

    # -- export ----------------------------------------------------------

    def to_records(self) -> List[Dict[str, object]]:
        """Span records in pre-order (parents before children)."""
        records = []
        for span in self.iter_spans():
            record = {
                "type": "span",
                "id": span.id,
                "parent": span.parent_id,
                "kind": span.kind,
                "name": span.name,
                "start_ms": round((span.start - self._epoch) * 1e3, 3),
                "dur_ms": round(span.duration * 1e3, 3),
                "attrs": span.attrs,
            }
            if self.request_id is not None:
                record["request_id"] = self.request_id
                record["trace_id"] = self.trace_id
            records.append(record)
        return records

    def to_jsonl(self, metrics: Optional[Dict[str, object]] = None) -> str:
        """The whole trace as JSON Lines: one header record, one record
        per span, and a final metrics record."""
        header: Dict[str, object] = {
            "type": "trace", "version": 1,
            "spans": sum(1 for _ in self.iter_spans())}
        if self.request_id is not None:
            header["request_id"] = self.request_id
            header["trace_id"] = self.trace_id
        lines = [json.dumps(header)]
        for record in self.to_records():
            lines.append(json.dumps(record, default=str))
        if metrics is not None:
            lines.append(json.dumps({"type": "metrics", **metrics},
                                    default=str))
        return "\n".join(lines) + "\n"

    def render(self, max_attr_width: int = 72) -> str:
        """The mcpyrate-style indented human view."""
        lines: List[str] = ["== mayac trace =="]

        def emit(span: Span, depth: int) -> None:
            pad = "  " * depth
            head = f"{pad}{span.kind} {span.name}  [{span.duration * 1e3:.2f} ms]"
            lines.append(head)
            for key in ("mayan", "production", "location", "template"):
                value = span.attrs.get(key)
                if value:
                    lines.append(f"{pad}  {key}: {value}")
            for key in ("before", "after"):
                value = span.attrs.get(key)
                if value:
                    text = " ".join(str(value).split())
                    if len(text) > max_attr_width:
                        text = text[:max_attr_width] + "..."
                    lines.append(f"{pad}  {key}: {text}")
            for child in span.children:
                emit(child, depth + 1)

        for root in self.roots:
            emit(root, 0)
        return "\n".join(lines)


#: The process-wide active tracer, or None (the common case) — set by
#: ``mayac --trace``/``--trace-out``.  Hot paths read :func:`current`,
#: which checks the request-scoped override first.
active: Optional[Tracer] = None

#: A request-scoped tracer override: the daemon activates one tracer
#: *per request* in the worker executing it (contextvars do not leak
#: across threads, so concurrent workers never interleave spans).
_scoped: "contextvars.ContextVar[Optional[Tracer]]" = \
    contextvars.ContextVar("maya_scoped_tracer", default=None)


def current() -> Optional[Tracer]:
    """The tracer in effect here: the request-scoped one if a scope is
    active, else the process-wide one, else None."""
    tracer = _scoped.get()
    return tracer if tracer is not None else active


def activate(tracer: Optional[Tracer] = None) -> Tracer:
    global active
    active = tracer if tracer is not None else Tracer()
    return active


def deactivate() -> None:
    global active
    active = None


@contextmanager
def scoped(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Activate ``tracer`` for this dynamic extent only (the daemon's
    per-request tracing; nested scopes restore the outer tracer)."""
    if tracer is None:
        tracer = Tracer()
    token = _scoped.set(tracer)
    try:
        yield tracer
    finally:
        _scoped.reset(token)


@contextmanager
def span(kind: str, name: str, **attrs) -> Iterator[Optional[Span]]:
    """Span context manager that no-ops when tracing is off."""
    tracer = current()
    if tracer is None:
        yield None
    else:
        with tracer.span(kind, name, **attrs) as entry:
            yield entry
