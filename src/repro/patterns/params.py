"""From pattern parse trees to productions and Mayan parameters.

Two services live here:

* ``production_from_pattern`` — the paper's production declaration,
  ``abstract Statement syntax(MethodName(Formal) lazy(BraceTree,
  BlockStmts))``: a high-level metagrammar line is lowered to an LALR
  production whose subtree/lazy arguments become helper symbols.
* ``compile_parameter_list`` — the paper's Mayan parameter lists: the
  pattern parser infers the structure of the flat parameter sequence
  (figure 5) and we convert the resulting tree into Param specializers
  for the dispatcher.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.dispatch.specializers import Param, StructSpec, TokenSpec
from repro.grammar import (
    Grammar,
    GrammarError,
    LazySym,
    ListSym,
    Nonterminal,
    Production,
    Symbol,
    TreeSym,
    terminal,
)
from repro.lexer import Token, stream_lex
from repro.lalr.tables import ParseTables
from repro.patterns.items import (
    GroupItem,
    HoleItem,
    PatternError,
    TokItem,
    lex_pattern,
)
from repro.patterns.pattern_parser import (
    PatternParser,
    PTGroup,
    PTHole,
    PTLeaf,
    PTNode,
)

# Content symbols that may legally be empty, so their paren groups also
# accept the EmptyParen token.
_EMPTIABLE_CONTENT = frozenset(["FormalList", "ArgList", "VarInitList"])


# ---------------------------------------------------------------------------
# Production declaration
# ---------------------------------------------------------------------------


def production_from_pattern(grammar: Grammar, result: str, source: str,
                            tag: Optional[str] = None) -> Production:
    """Declare a production from the paper's metagrammar surface syntax.

    Example:  production_from_pattern(g, "Statement",
                  "MethodName (Formal) lazy(BraceTree, BlockStmts)")
    """
    tokens = stream_lex(source, "<production>")
    rhs = _decl_rhs(tokens)
    for item in rhs:
        if isinstance(item, _SyntheticGroup):
            item.install(grammar)
    return grammar.add_production(result, rhs, tag=tag)


def _decl_rhs(tokens) -> List[object]:
    rhs: List[object] = []
    position = 0
    while position < len(tokens):
        token = tokens[position]
        position += 1
        if token.text == "\\":
            rhs.append(terminal(tokens[position].kind
                                if tokens[position].kind != "Identifier"
                                else tokens[position].text))
            position += 1
            continue
        if token.kind == "Identifier":
            if token.text in ("lazy", "list", "list1") and position < len(tokens) \
                    and tokens[position].kind == "ParenTree":
                rhs.append(_decl_parameterized(token.text, tokens[position]))
                position += 1
                continue
            symbol = Symbol.lookup(token.text)
            if symbol is not None:
                rhs.append(symbol)
            else:
                # A token literal: matched against identifier spellings.
                rhs.append(terminal(token.text))
            continue
        if token.kind in ("ParenTree", "BraceTree", "BracketTree"):
            rhs.append(_group_symbol(token))
            continue
        # Fixed tokens (keywords, operators) are literal terminals.
        rhs.append(terminal(token.kind))
    return rhs


def _group_symbol(token: Token):
    """A subtree group in a production declaration.

    A single known symbol becomes a TreeSym on that symbol (the paper's
    G0: "the semantic action ... recursively parses the ParenTree to a
    Formal").  Multiple symbols synthesize a *group nonterminal* whose
    production parses the sequence and yields a SyntaxList, so Mayan
    patterns can destructure it.
    """
    kind = token.kind
    inner = list(token.children)
    if len(inner) == 1 and Symbol.lookup(inner[0].text) is not None:
        content = Symbol.lookup(inner[0].text)
        kinds = (kind, "EmptyParen") if kind == "ParenTree" \
            and content.name in _EMPTIABLE_CONTENT else (kind,)
        return TreeSym(kinds, content)
    # Multi-symbol group: synthesize Group -> <sequence>.
    sequence = _decl_rhs(inner)
    group_name = "group(" + " ".join(_item_name(s) for s in sequence) + ")"
    from repro.grammar import nonterminal as make_nonterminal

    group_nt = make_nonterminal(group_name)
    return _SyntheticGroup(kind, group_nt, sequence)


def _item_name(item) -> str:
    if isinstance(item, Symbol):
        return item.name
    return item.helper_name()


class _SyntheticGroup(TreeSym):
    """A TreeSym over a synthesized group nonterminal; installing it
    also installs the group's sequence production."""

    def __init__(self, kind: str, group_nt, sequence):
        super().__init__((kind,), group_nt)
        self.sequence = sequence

    def install(self, grammar: Grammar) -> None:
        from repro.ast.nodes import SyntaxList

        holder = {}

        def action(ctx, values):
            node = SyntaxList(list(values))
            node.syntax = (holder["production"], tuple(values))
            return node

        production = grammar.add_production(
            self.content, self.sequence, tag=f"group:{self.content.name}",
            action=action, internal=True,
        )
        holder["production"] = production


def _decl_parameterized(keyword: str, paren: Token):
    args: List[List[Token]] = [[]]
    for child in paren.children:
        if child.text == ",":
            args.append([])
        else:
            args[-1].append(child)
    if keyword == "lazy":
        if len(args) != 2:
            raise PatternError(f"{paren.location}: lazy(TreeKind, Symbol)")
        content = Symbol.lookup(args[1][0].text)
        if content is None:
            raise PatternError(
                f"{paren.location}: unknown symbol {args[1][0].text!r}"
            )
        return LazySym((args[0][0].text,), content)
    element = Symbol.lookup(args[0][0].text)
    if element is None:
        raise PatternError(f"{paren.location}: unknown symbol {args[0][0].text!r}")
    separator = args[1][0].text if len(args) > 1 else ""
    return ListSym(element, separator, min1=(keyword == "list1"))


# ---------------------------------------------------------------------------
# Mayan parameter lists
# ---------------------------------------------------------------------------


def compile_parameter_list(
    tables: ParseTables, result: str, source: str
) -> Tuple[Production, List[Param], List[str]]:
    """Compile a Mayan parameter list against the given tables.

    Returns the production the Mayan implements, one Param per
    right-hand-side slot, and the binding names in appearance order.
    """
    items = lex_pattern(source)
    parser = PatternParser(tables)
    tree, _ = parser.parse(result, items)
    tree = _collapse(tree)
    if not isinstance(tree, PTNode):
        raise PatternError(
            f"parameter list for {result} does not select a production"
        )
    params = [_param_of(child) for child in tree.children]
    names: List[str] = []
    for param in params:
        _collect_names(param, names)
    return tree.production, params, names


def _collapse(tree):
    while isinstance(tree, PTNode) and tree.production.passthrough:
        tree = tree.children[0]
    return tree


def _param_of(child) -> Param:
    child = _collapse(child)
    if isinstance(child, PTHole):
        item = child.item
        return Param(item.declared, item.name, item.spec)
    if isinstance(child, PTLeaf):
        token = child.token
        if token.kind == "Identifier":
            return Param(terminal("Identifier"), None, TokenSpec(token.text))
        return Param(terminal(token.kind))
    if isinstance(child, PTGroup):
        # A group slot on an ordinary production holds the *raw tree
        # token* at dispatch time (the base action parses it itself).
        content = _collapse(child.content) if child.content is not None else None
        if content is None:
            return Param(terminal(child.group.kind))
        if isinstance(content, PTHole) and content.item.spec is None \
                and content.item.declared is child.content_symbol:
            # A whole-content hole (e.g. "(ArgList args)"): bind the raw
            # token; the Mayan parses it with ctx.parse_subtree.
            return Param(terminal(child.group.kind), content.item.name)
        # Destructured content: parse the token during matching.
        elements: List[Param] = []
        _flatten_elements(content, elements)
        from repro.dispatch.specializers import GroupSpec

        return Param(
            terminal(child.group.kind), None,
            GroupSpec(child.content_symbol, elements),
        )
    if isinstance(child, PTNode):
        production = child.production
        if production.internal and production.tree_contents.get(0):
            # Tree/lazy helper: the runtime value is the parsed content.
            return _content_param(child.children[0], production)
        if production.internal and production.tag.startswith("group:"):
            subparams = [_param_of(sub) for sub in child.children]
            return Param(production.lhs, None, StructSpec(production, subparams))
        if production.internal and production.lhs.name.startswith("list"):
            # A list helper with explicit element patterns: match the
            # runtime list elementwise (binds element names).
            from repro.dispatch.specializers import GroupSpec

            elements: List[Param] = []
            _flatten_elements(child, elements)
            if any(_has_binding_or_spec(p) for p in elements):
                return Param(production.lhs, None,
                             GroupSpec(production.lhs, elements))
            return Param(production.lhs)
        if production.internal:
            # Other helpers: match anything the helper produces.
            return Param(production.lhs)
        subparams = [_param_of(sub) for sub in child.children]
        return Param(production.lhs, None, StructSpec(production, subparams))
    raise PatternError(f"cannot convert {child!r} to a parameter")


def _has_binding_or_spec(param: Param) -> bool:
    if param.name or param.spec:
        return True
    return False


def _flatten_elements(tree, out: List[Param]) -> None:
    """Element-level params of a (possibly list-structured) content."""
    tree = _collapse(tree)
    if isinstance(tree, PTNode):
        production = tree.production
        if production.internal and production.lhs.name.startswith("list"):
            for sub in tree.children:
                if isinstance(sub, PTLeaf) and not sub.token.is_tree \
                        and sub.token.kind in (",", ";"):
                    continue
                _flatten_elements(sub, out)
            return
        if not production.internal and len(production.rhs) == 1 \
                and production.rhs[0].name.startswith(("list(", "list1(")):
            _flatten_elements(tree.children[0], out)
            return
    out.append(_param_of(tree))


def _content_param(group_child, helper_production) -> Param:
    """The parameter for a tree-helper slot: its parsed content."""
    if isinstance(group_child, PTGroup):
        if group_child.content is None:
            raise PatternError(
                f"{group_child.group.location}: group has no grammatical "
                f"content here"
            )
        return _param_of(group_child.content)
    return _param_of(group_child)


def _collect_names(param: Param, names: List[str]) -> None:
    if param.name:
        names.append(param.name)
    if isinstance(param.spec, StructSpec):
        for sub in param.spec.subparams:
            _collect_names(sub, names)
