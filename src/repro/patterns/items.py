"""Pattern items: the input alphabet of the pattern parser.

A pattern (Mayan parameter list) or template body is lexed into a
sequence of items:

* ``TokItem`` — a concrete token (terminals, including tree tokens),
* ``HoleItem`` — a grammar-symbol hole: a Mayan formal parameter
  (possibly with a specializer) or a template unquote,
* ``GroupItem`` — a matched-delimiter group whose contents are
  themselves items; the consuming production decides (statically) what
  the contents must parse as.

Parameter-list surface syntax (the paper's, adapted):

    Expression:java.util.Enumeration enumExp \\. foreach (Formal var)
    lazy(BraceTree, BlockStmts) body

* A known symbol name starts a hole; ``:Type`` adds a static-type
  specializer (``ClassSpec`` on TypeName holes); a following unknown
  identifier names the binding.
* ``lazy(TreeKind, NT) name`` binds a lazily parsed subtree.
* ``list(X)`` / ``list(X, ',')`` denote repetition holes.
* ``\\tok`` is a literal token; unknown identifiers are literal
  identifier tokens (matched by *value*, so macros need no reserved
  words); other keywords/operators are literal tokens.

Template syntax adds ``$name`` and ``$(name)`` unquotes; hole symbols
are declared when the Template is constructed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.diag import DiagnosticError
from repro.dispatch.specializers import ClassSpec, Specializer, TokenSpec, TypeSpec
from repro.grammar import LazySym, ListSym, Nonterminal, Symbol
from repro.lexer import Location, Token, stream_lex


class PatternError(DiagnosticError):
    """An error in a pattern or template's surface syntax."""

    phase = "expand"


class TokItem:
    __slots__ = ("token",)

    def __init__(self, token: Token):
        self.token = token

    @property
    def location(self) -> Location:
        return self.token.location

    def __repr__(self):
        return f"Tok({self.token.kind}:{self.token.text!r})"


class HoleItem:
    """A grammar-symbol hole.

    ``symbol`` is where the hole sits grammatically; ``declared`` is the
    symbol the user wrote (expression-family holes are lowered to
    Primary for parsing — splicing prebuilt trees at the primary level
    is what makes templates immune to precedence errors).
    """

    __slots__ = ("symbol", "declared", "name", "spec", "location")

    def __init__(self, symbol: Symbol, name: Optional[str] = None,
                 spec: Optional[Specializer] = None,
                 location: Location = Location.UNKNOWN,
                 declared: Optional[Symbol] = None):
        self.symbol = symbol
        self.declared = declared or symbol
        self.name = name
        self.spec = spec
        self.location = location

    def __repr__(self):
        name = f" {self.name}" if self.name else ""
        spec = f":{self.spec!r}" if self.spec else ""
        return f"Hole({self.declared.name}{spec}{name})"


class GroupItem:
    __slots__ = ("kind", "items", "location")

    def __init__(self, kind: str, items: List[object], location: Location):
        self.kind = kind
        self.items = items
        self.location = location

    def __repr__(self):
        return f"Group({self.kind}, {len(self.items)} items)"


# Expression-family nonterminals are lowered to Primary in holes.
_EXPRESSION_FAMILY = frozenset(
    ["Expression", "AssignExpr", "CondExpr", "OrExpr", "AndExpr",
     "BitOrExpr", "BitXorExpr", "BitAndExpr", "EqExpr", "RelExpr",
     "ShiftExpr", "AddExpr", "MulExpr", "UnaryExpr", "UnaryNPM",
     "PostfixExpr"]
)


def _hole_parse_symbol(declared: Symbol) -> Symbol:
    if declared.name in _EXPRESSION_FAMILY and declared.name != "Primary":
        lowered = Symbol.lookup("Primary")
        if lowered is not None:
            return lowered
    return declared


_TOKEN_CLASS_TERMINALS = frozenset(
    ["Identifier", "IntLit", "LongLit", "DoubleLit", "CharLit", "StringLit"]
)


def _is_symbol_name(text: str) -> Optional[Symbol]:
    """The symbol a pattern identifier denotes, or None for literals.

    Only nonterminals and token-class terminals start holes; any other
    identifier (even one that happens to name some grammar terminal) is
    a token literal matched by spelling.
    """
    symbol = Symbol.lookup(text)
    if symbol is None:
        return None
    if isinstance(symbol, Nonterminal):
        return symbol
    if text in _TOKEN_CLASS_TERMINALS:
        return symbol
    return None


# ---------------------------------------------------------------------------
# Parameter-list lexing
# ---------------------------------------------------------------------------


def _ensure_base_symbols() -> None:
    # Pattern lexing classifies identifiers by looking up grammar
    # symbols, so the base grammar's symbols must exist.
    from repro.javalang import base_grammar

    base_grammar()


def lex_pattern(source: str) -> List[object]:
    """Lex a Mayan parameter list into pattern items."""
    _ensure_base_symbols()
    tokens = stream_lex(source, "<pattern>")
    return _pattern_items(tokens)


def _pattern_items(tokens: Sequence[Token]) -> List[object]:
    items: List[object] = []
    position = 0
    while position < len(tokens):
        token = tokens[position]
        position += 1
        if token.text == "\\":
            if position >= len(tokens):
                raise PatternError(f"{token.location}: dangling escape")
            items.append(TokItem(tokens[position]))
            position += 1
            continue
        if token.is_tree:
            if token.kind in ("EmptyParen", "Dims"):
                items.append(TokItem(token))
            else:
                items.append(
                    GroupItem(token.kind, _pattern_items(token.children),
                              token.location)
                )
            continue
        if token.kind == "Identifier":
            handled, position = _identifier_item(tokens, position - 1, items)
            if handled:
                continue
            items.append(TokItem(token))
            continue
        items.append(TokItem(token))
    return items


def _identifier_item(tokens, index, items) -> Tuple[bool, int]:
    """Handle an identifier starting a hole/lazy/list; returns consumed."""
    token = tokens[index]
    text = token.text

    if text in ("lazy", "list", "list1") and index + 1 < len(tokens) \
            and tokens[index + 1].kind == "ParenTree":
        symbol = _parameterized_symbol(text, tokens[index + 1])
        index += 2
        name, index = _optional_name(tokens, index)
        items.append(HoleItem(symbol, name, None, token.location))
        return True, index

    declared = _is_symbol_name(text)
    if declared is None:
        return False, index + 1

    index += 1
    spec: Optional[Specializer] = None
    if index < len(tokens) and tokens[index].text == ":":
        index += 1
        parts, dims, index = _dotted_type(tokens, index, token.location)
        if isinstance(declared, Nonterminal) and declared.name == "TypeName":
            spec = ClassSpec(parts, dims)
        else:
            spec = TypeSpec(parts, dims)
    name, index = _optional_name(tokens, index)
    parse_symbol = _hole_parse_symbol(declared)
    items.append(HoleItem(parse_symbol, name, spec, token.location,
                          declared=declared))
    return True, index


def _optional_name(tokens, index) -> Tuple[Optional[str], int]:
    if (
        index < len(tokens)
        and tokens[index].kind == "Identifier"
        and _is_symbol_name(tokens[index].text) is None
        and not tokens[index].text[0].isupper()
    ):
        return tokens[index].text, index + 1
    return None, index


def _dotted_type(tokens, index, location) -> Tuple[Tuple[str, ...], int, int]:
    parts: List[str] = []
    if index >= len(tokens) or tokens[index].kind not in (
        "Identifier", "int", "boolean", "byte", "short", "long", "char",
        "float", "double",
    ):
        raise PatternError(f"{location}: expected type name after ':'")
    parts.append(tokens[index].text)
    index += 1
    while (
        index + 1 < len(tokens)
        and tokens[index].text == "."
        and tokens[index + 1].kind == "Identifier"
    ):
        parts.append(tokens[index + 1].text)
        index += 2
    dims = 0
    while index < len(tokens) and tokens[index].kind == "Dims":
        dims += 1
        index += 1
    return tuple(parts), dims, index


def _parameterized_symbol(keyword: str, paren: Token) -> Nonterminal:
    """Resolve lazy(...)/list(...) in a pattern to its helper nonterminal."""
    children = list(paren.children)
    args: List[List[Token]] = [[]]
    for child in children:
        if child.text == ",":
            args.append([])
        else:
            args[-1].append(child)
    if keyword == "lazy":
        if len(args) != 2 or len(args[0]) != 1 or len(args[1]) != 1:
            raise PatternError(f"{paren.location}: lazy(TreeKind, Symbol)")
        tree_kind = args[0][0].text
        content = _require_symbol(args[1][0])
        param = LazySym((tree_kind,), content)
    else:
        if not args[0] or len(args[0]) != 1:
            raise PatternError(f"{paren.location}: list(Symbol[, 'sep'])")
        element = _require_symbol(args[0][0])
        separator = ""
        if len(args) > 1:
            sep_token = args[1][0]
            separator = sep_token.text
        param = ListSym(element, separator, min1=(keyword == "list1"))
    helper = Symbol.lookup(param.helper_name())
    if helper is None:
        raise PatternError(
            f"{paren.location}: {param.helper_name()} is not part of the "
            f"grammar (declare the production first)"
        )
    return helper


def _require_symbol(token: Token) -> Symbol:
    symbol = Symbol.lookup(token.text)
    if symbol is None:
        raise PatternError(f"{token.location}: unknown symbol {token.text!r}")
    return symbol


# ---------------------------------------------------------------------------
# Template lexing
# ---------------------------------------------------------------------------


def lex_template(source: str, holes: Dict[str, Symbol]) -> List[object]:
    """Lex a template body; ``holes`` maps unquote names to symbols."""
    _ensure_base_symbols()
    tokens = stream_lex(source, "<template>")
    return _template_items(tokens, holes)


def _template_items(tokens: Sequence[Token], holes: Dict[str, Symbol]) -> List[object]:
    items: List[object] = []
    position = 0
    while position < len(tokens):
        token = tokens[position]
        position += 1
        if token.kind == "Identifier" and token.text.startswith("$"):
            items.append(_hole_for(token.text[1:], holes, token.location))
            continue
        if token.text == "$":
            if position >= len(tokens) or not (
                tokens[position].kind == "ParenTree"
                and len(tokens[position].children) == 1
                and tokens[position].children[0].kind == "Identifier"
            ):
                raise PatternError(
                    f"{token.location}: $ must be followed by a name or (name)"
                )
            name = tokens[position].children[0].text
            items.append(_hole_for(name, holes, token.location))
            position += 1
            continue
        if token.is_tree and token.kind not in ("EmptyParen", "Dims"):
            items.append(
                GroupItem(token.kind, _template_items(token.children, holes),
                          token.location)
            )
            continue
        items.append(TokItem(token))
    return items


def _hole_for(name: str, holes: Dict[str, Symbol], location) -> HoleItem:
    declared = holes.get(name)
    if declared is None:
        raise PatternError(
            f"{location}: unquote ${name} has no declared grammar symbol"
        )
    return HoleItem(_hole_parse_symbol(declared), name, None, location,
                    declared=declared)
