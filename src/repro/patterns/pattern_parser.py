"""The pattern parser (paper section 4.2).

A standard LALR(1) driver extended to accept *nonterminal* input
symbols.  When the input is a nonterminal X in state s0 (using the
paper's phrasing):

1. if s0 contains a goto for X, X is shifted and the goto followed;
2. otherwise, if the actions on FIRST(X) all reduce the same rule, the
   stack is reduced, leading to a state in which one of these
   conditions holds.

If neither holds the input is invalid.  The output is a *partial parse
tree* that may contain nonterminal leaves (holes), concrete tokens, and
unparsed groups; groups are recursively pattern-parsed afterwards,
according to the consuming production's declared subtree contents.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.grammar import Nonterminal, Production, Symbol
from repro.lexer import Location, Token
from repro.lalr.tables import ACCEPT, REDUCE, SHIFT, ParseTables
from repro.patterns.items import GroupItem, HoleItem, PatternError, TokItem


class PatternParseError(PatternError):
    """A pattern or template body is not syntactically valid."""


# ---------------------------------------------------------------------------
# Partial parse trees
# ---------------------------------------------------------------------------


class PTLeaf:
    """A concrete token in a pattern parse tree."""

    __slots__ = ("token", "meta")

    def __init__(self, token: Token):
        self.token = token
        self.meta = {}

    def __repr__(self):
        return f"PTLeaf({self.token.text!r})"


class PTHole:
    """A nonterminal (or terminal) hole."""

    __slots__ = ("item", "meta")

    def __init__(self, item: HoleItem):
        self.item = item
        self.meta = {}

    def __repr__(self):
        return f"PTHole({self.item!r})"


class PTGroup:
    """A matched-delimiter group, with its content compiled post-parse.

    ``content`` is filled in by the group-resolution pass: a PT tree (or
    PTStmts) for eager positions, the same but flagged lazy for lazy
    positions, or None for groups with no declared content (opaque).
    """

    __slots__ = ("group", "content", "content_symbol", "lazy", "meta")

    def __init__(self, group: GroupItem):
        self.group = group
        self.content = None
        self.content_symbol = None
        self.lazy = False
        self.meta = {}

    def __repr__(self):
        return f"PTGroup({self.group.kind}, lazy={self.lazy})"


class PTNode:
    """An inner node: a production applied to child trees."""

    __slots__ = ("production", "children", "location", "meta")

    def __init__(self, production: Production, children: List[object],
                 location: Location):
        self.production = production
        self.children = children
        self.location = location
        self.meta = {}

    def __repr__(self):
        return f"PTNode({self.production.tag})"


class PTStmts:
    """A statement-list pattern (content of a block): parsed one
    statement at a time, so BlockStmts holes can be spliced."""

    __slots__ = ("elements", "meta")

    def __init__(self, elements: List[object]):
        self.elements = elements
        self.meta = {}

    def __repr__(self):
        return f"PTStmts({len(self.elements)})"


# ---------------------------------------------------------------------------
# The parser
# ---------------------------------------------------------------------------


class PatternParser:
    """Parses pattern-item sequences against a grammar's tables."""

    def __init__(self, tables: ParseTables, driver_nonterminals=("BlockStmts", "MemberList")):
        self.tables = tables
        self.driver_nonterminals = frozenset(driver_nonterminals)

    # -- public API ---------------------------------------------------------

    def parse(self, start: str, items: List[object],
              allow_prefix: bool = False, offset: int = 0) -> Tuple[object, int]:
        """Pattern-parse ``items[offset:]`` starting at ``start``.

        Returns (PT tree, next offset).  Group contents are resolved
        recursively before returning.
        """
        if start in self.driver_nonterminals:
            tree = self._parse_stmts(items[offset:], start)
            return tree, len(items)
        tree, consumed = self._parse_core(start, items, allow_prefix, offset)
        self._resolve_groups(tree)
        return tree, consumed

    # -- statement-list driver ------------------------------------------------

    def _parse_stmts(self, items: List[object], start: str) -> PTStmts:
        element_symbol = "Statement" if start == "BlockStmts" else "MemberDecl"
        elements: List[object] = []
        position = 0
        while position < len(items):
            item = items[position]
            if isinstance(item, HoleItem) and item.declared.name == start:
                # A statement-list splice (e.g. $body : BlockStmts).
                elements.append(PTHole(item))
                position += 1
                continue
            tree, position = self._parse_core(
                element_symbol, items, True, position
            )
            self._resolve_groups(tree)
            elements.append(tree)
        return PTStmts(elements)

    # -- the core algorithm -----------------------------------------------------

    def _parse_core(self, start: str, items: List[object],
                    allow_prefix: bool, offset: int) -> Tuple[object, int]:
        tables = self.tables
        encoded = tables.encoded
        eof = tables.eof_id(start)
        states = [tables.start_state(start)]
        values: List[object] = []

        position = offset
        length = len(items)

        def location_of(item) -> Location:
            return getattr(item, "location", Location.UNKNOWN)

        while True:
            item = items[position] if position < length else None

            if item is None:
                finished = self._finish(eof, states, values)
                if finished is not None:
                    return finished, position
                raise PatternParseError(
                    f"pattern ends before a complete {start}"
                )

            if isinstance(item, HoleItem) and not item.symbol.is_terminal:
                if not self._shift_nonterminal(item, states, values):
                    if allow_prefix:
                        finished = self._finish(eof, states, values)
                        if finished is not None:
                            return finished, position
                    raise PatternParseError(
                        f"{location_of(item)}: a {item.declared.name} cannot "
                        f"appear here while parsing {start} (expected "
                        f"{', '.join(tables.expected_terminals(states[-1]))})"
                    )
                position += 1
                continue

            # Terminal-ish input: concrete token, group, or terminal hole.
            candidates, describe = self._terminal_of(item)
            entry = self._terminal_action(states[-1], candidates)
            if entry is None:
                finished = self._finish(eof, states, values) if allow_prefix else None
                if finished is not None:
                    return finished, position
                raise PatternParseError(
                    f"{location_of(item)}: unexpected {describe} while "
                    f"parsing {start} (expected "
                    f"{', '.join(tables.expected_terminals(states[-1]))})"
                )
            kind, value = entry
            if kind == SHIFT:
                states.append(value)
                values.append(self._leaf_for(item))
                position += 1
            elif kind == REDUCE:
                self._reduce(value, states, values, location_of(item))
            else:  # pragma: no cover - accept only reachable via eof
                raise PatternParseError("unexpected accept")

    def _terminal_of(self, item) -> Tuple[List[int], str]:
        """Candidate terminal ids for an input item, most specific first.

        Identifier tokens that spell a grammar terminal (a "token
        literal" production argument, e.g. ``typedef``) try that
        terminal first and fall back to the generic Identifier.
        """
        tables = self.tables
        candidates: List[int] = []
        if isinstance(item, TokItem):
            token = item.token
            if token.kind == "Identifier":
                specific = tables.symbol_id(token.text)
                if specific is not None and tables.encoded.is_terminal[specific]:
                    candidates.append(specific)
            generic = tables.symbol_id(token.kind)
            if generic is not None:
                candidates.append(generic)
            return candidates, f"token {token.text!r}"
        if isinstance(item, GroupItem):
            terminal = tables.symbol_id(item.kind)
            if terminal is not None:
                candidates.append(terminal)
            return candidates, f"{item.kind} group"
        if isinstance(item, HoleItem):  # terminal hole
            terminal = tables.symbol_id(item.symbol.name)
            if terminal is not None:
                candidates.append(terminal)
            return candidates, f"${item.name}"
        raise TypeError(f"bad pattern item {item!r}")

    def _terminal_action(self, state: int, candidates: List[int]):
        for terminal in candidates:
            entry = self.tables.action[state].get(terminal)
            if entry is not None:
                return entry
        return None

    def _leaf_for(self, item):
        if isinstance(item, TokItem):
            return PTLeaf(item.token)
        if isinstance(item, GroupItem):
            return PTGroup(item)
        return PTHole(item)

    def _shift_nonterminal(self, item: HoleItem, states, values) -> bool:
        """Cases 1 and 2 of the paper's algorithm."""
        tables = self.tables
        encoded = tables.encoded
        sym_id = tables.symbol_id(item.symbol.name)
        if sym_id is None:
            return False
        firsts = encoded.first[sym_id]
        guard = 0
        while True:
            state = states[-1]
            target = tables.goto[state].get(sym_id)
            if target is not None:
                states.append(target)
                values.append(PTHole(item))
                return True
            # All actions on FIRST(X) must reduce the same rule.
            entries = {
                self.tables.action[state].get(t)
                for t in firsts
            }
            entries.discard(None)
            if len(entries) != 1:
                return False
            kind, value = next(iter(entries))
            if kind != REDUCE:
                return False
            self._reduce(value, states, values, item.location)
            guard += 1
            if guard > 10_000:  # pragma: no cover - corrupt tables only
                raise PatternParseError("pattern parser did not converge")

    def _reduce(self, prod_index: int, states, values, location: Location) -> None:
        tables = self.tables
        lhs_id, rhs = tables.encoded.productions[prod_index]
        production = tables.encoded.production_objects[prod_index]
        count = len(rhs)
        children = values[-count:] if count else []
        if count:
            del states[-count:]
            del values[-count:]
        node = PTNode(production, list(children), location)
        target = tables.goto[states[-1]].get(lhs_id)
        if target is None:  # pragma: no cover
            raise PatternParseError(f"no goto for {production.lhs.name}")
        states.append(target)
        values.append(node)

    def _finish(self, eof: int, states, values):
        saved_states = list(states)
        saved_values = list(values)
        while True:
            entry = self.tables.action[saved_states[-1]].get(eof)
            if entry is None:
                return None
            kind, value = entry
            if kind == ACCEPT:
                return saved_values[-1]
            if kind != REDUCE:
                return None
            self._reduce(value, saved_states, saved_values, Location.UNKNOWN)

    # -- group resolution ----------------------------------------------------

    def _resolve_groups(self, tree) -> None:
        """Recursively parse group contents per the consuming production."""
        if isinstance(tree, PTNode):
            for position, child in enumerate(tree.children):
                if isinstance(child, PTGroup):
                    spec = tree.production.tree_contents.get(position)
                    if spec is None:
                        continue  # opaque group (no declared content)
                    content_symbol, lazy = spec
                    child.content_symbol = content_symbol
                    child.lazy = lazy
                    child.content, _ = self.parse(
                        content_symbol.name, child.group.items
                    )
                else:
                    self._resolve_groups(child)
        elif isinstance(tree, PTStmts):
            for element in tree.elements:
                self._resolve_groups(element)
