"""Pattern parsing: Mayan parameter lists, templates, and syntax case.

The pattern parser (paper section 4.2) is an LALR(1) driver whose input
may contain *nonterminal* symbols.  It produces partial parse trees,
used in two ways: to infer the structure of Mayan parameter lists
(binding formals to argument substructure), and to statically check and
compile quasiquote templates.
"""

from repro.patterns.items import (
    GroupItem,
    HoleItem,
    PatternError,
    TokItem,
    lex_pattern,
    lex_template,
)
from repro.patterns.pattern_parser import (
    PatternParseError,
    PatternParser,
    PTGroup,
    PTHole,
    PTLeaf,
    PTNode,
    PTStmts,
)
from repro.patterns.params import compile_parameter_list, production_from_pattern
from repro.patterns.templates import Template, TemplateError, syntax_case

__all__ = [
    "GroupItem",
    "HoleItem",
    "PTGroup",
    "PTHole",
    "PTLeaf",
    "PTNode",
    "PTStmts",
    "PatternError",
    "PatternParseError",
    "PatternParser",
    "Template",
    "TemplateError",
    "TokItem",
    "compile_parameter_list",
    "lex_pattern",
    "lex_template",
    "production_from_pattern",
    "syntax_case",
]
