"""Templates: Maya's quasiquote (paper sections 3.2, 4.2, 4.3).

A Template is compiled *once* (per grammar) by pattern-parsing its body
— so a syntactically invalid template fails at definition time — and is
instantiated by replaying the recorded shifts and reductions with the
unquoted values substituted.  Reductions go through the dispatcher, so
template output is itself subject to Mayan expansion, exactly as if the
parser had read the generated syntax.

Sub-templates in lazy positions compile to thunks (LazyNodes) expanded
when the corresponding syntax would have been parsed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import perf, trace
from repro.diag import DiagnosticError, SourceSpan
from repro.obs import lazy as obs_lazy
from repro.ast import nodes as n
from repro.grammar import Symbol
from repro.hygiene.analysis import analyze_template
from repro.hygiene.fresh import fresh_name
from repro.lexer import Location, Token
from repro.lalr.tables import tables_for
from repro.patterns.items import PatternError, lex_template
from repro.patterns.pattern_parser import (
    PatternParser,
    PTGroup,
    PTHole,
    PTLeaf,
    PTNode,
    PTStmts,
)


class TemplateError(DiagnosticError):
    """A template was misused (bad hole value, missing binding, ...)."""

    phase = "expand"


_TEMPLATE_STATS = perf.cache_stats("templates.compiled")
_CASE_STATS = perf.cache_stats("templates.syntax_case")


class PseudoToken:
    """A stand-in tree token carrying an already-built value.

    Replay substitutes these where the original parse would have seen a
    ParenTree/BraceTree; the compile context's subtree hooks unwrap
    them instead of re-parsing.
    """

    __slots__ = ("kind", "value", "location")

    is_tree = True
    children = None

    def __init__(self, kind: str, value, location: Location = Location.UNKNOWN):
        self.kind = kind
        self.value = value
        self.location = location

    def source_text(self) -> str:
        return f"<{self.kind}>"


class Template:
    """A compiled, hygienic code template.

    ``result`` is the grammar symbol the template produces; ``holes``
    map unquote names to the grammar symbols of the values that will be
    substituted.

    >>> LOOP = Template("Statement",
    ...     "while ($cond) { $body }",
    ...     cond="Expression", body="BlockStmts")
    """

    def __init__(self, result: str, source: str, **holes: str):
        self.result = result
        self.source = source
        self.hole_names = dict(holes)
        self._compiled: Dict[Tuple, "_CompiledTemplate"] = {}

    def compiled(self, env) -> "_CompiledTemplate":
        # Keyed by grammar *and* registry: referential transparency
        # resolves type names against the registry, and type identity
        # is per registry.  The fingerprint is the grammar's version-
        # cached digest, so this lookup is O(1) per instantiation.
        key = (env.grammar.fingerprint(), env.registry.uid)
        compiled = self._compiled.get(key)
        if compiled is None:
            _TEMPLATE_STATS.miss()
            compiled = _CompiledTemplate(self, env)
            self._compiled[key] = compiled
        else:
            _TEMPLATE_STATS.hit()
        return compiled

    def instantiate(self, ctx, **values):
        """Build the AST, renaming binders and substituting holes."""
        return self.compiled(ctx.env).instantiate(ctx, values)

    def __repr__(self):
        preview = " ".join(self.source.split())[:40]
        return f"Template({self.result}, {preview!r})"


class _CompiledTemplate:
    def __init__(self, template: Template, env):
        self.template = template
        holes: Dict[str, Symbol] = {}
        for name, symbol_name in template.hole_names.items():
            symbol = Symbol.lookup(symbol_name) if isinstance(symbol_name, str) \
                else symbol_name
            if symbol is None:
                raise TemplateError(
                    f"unknown grammar symbol {symbol_name!r} for hole ${name}"
                )
            holes[name] = symbol
        items = lex_template(template.source, holes)
        parser = PatternParser(tables_for(env.grammar))
        self.tree, _ = parser.parse(template.result, items)
        self.info = analyze_template(self.tree, env.registry)

    def instantiate(self, ctx, values: Dict[str, object]):
        missing = [
            name for name in self.template.hole_names if name not in values
        ]
        if missing:
            raise TemplateError(
                f"template {self.template!r} missing bindings: {missing}"
            )
        # Binders are renamed in sorted order so the ``name$N`` suffixes
        # are deterministic across processes (set iteration order is
        # hash-randomized), which golden-expansion tests rely on.
        renames = {name: fresh_name(name) for name in sorted(self.info.binders)}

        # Provenance: while the replay reduces the template body, nodes
        # are stamped with the enclosing Mayan activation's origin,
        # refined with this template's name.  Direct API instantiation
        # (no active Mayan) still records the template.
        label = repr(self.template)
        origins = ctx.env.dispatcher.root.origin_stack
        if origins:
            origin = origins[-1].with_template(label)
        else:
            origin = trace.Origin(None, label, SourceSpan())
        replay = _Replay(self, ctx, values, renames, origin)
        origins.append(origin)
        tracer = trace.current()
        span = tracer.begin("template", label, template=label) \
            if tracer is not None else None
        try:
            result = replay.build(self.tree, ctx)
            if span is not None:
                tracer.end(span)
            return result
        except BaseException:
            if span is not None:
                tracer.end(span, error=True)
            raise
        finally:
            origins.pop()


class _Replay:
    """One instantiation: replays the recorded parse with values."""

    def __init__(self, compiled: _CompiledTemplate, ctx, values, renames,
                 origin: Optional[trace.Origin] = None):
        self.compiled = compiled
        self.values = values
        self.renames = renames
        self.origin = origin

    # -- node dispatch ------------------------------------------------------

    def build(self, tree, ctx):
        if isinstance(tree, PTLeaf):
            return self._leaf(tree)
        if isinstance(tree, PTHole):
            return self._hole(tree)
        if isinstance(tree, PTGroup):
            return self._group(tree, ctx)
        if isinstance(tree, PTNode):
            return self._node(tree, ctx)
        if isinstance(tree, PTStmts):
            return self._stmts(tree, ctx)
        raise TypeError(f"bad template tree {tree!r}")

    def _leaf(self, leaf: PTLeaf):
        token = leaf.token
        if leaf.meta.get("binder") or leaf.meta.get("rename"):
            renamed = self.renames.get(token.text)
            if renamed is not None:
                return Token(token.kind, renamed, token.location)
        return token

    def _hole(self, hole: PTHole):
        item = hole.item
        value = self.values.get(item.name)
        if value is None:
            raise TemplateError(f"no value for template hole ${item.name}")
        return _coerce_hole_value(item, value)

    def _group(self, group: PTGroup, ctx):
        if group.content is None:
            raise TemplateError(
                f"{group.group.location}: template group was never resolved"
            )
        if group.lazy:
            lazy = n.LazyNode(None, group.content_symbol,
                              location=group.group.location)
            content = group.content

            def parse(scope, _content=content, _ctx=ctx):
                inner = _ctx.with_scope(scope) if scope is not None else _ctx
                # The thunk forces after instantiate() returned: restore
                # the template's provenance frame around the build.
                origins = inner.env.dispatcher.root.origin_stack
                if self.origin is not None:
                    origins.append(self.origin)
                try:
                    return self.build(_content, inner)
                finally:
                    if self.origin is not None:
                        origins.pop()

            lazy._parse = parse
            return PseudoToken(group.group.kind, obs_lazy.thunk_created(lazy),
                               group.group.location)
        value = self.build(group.content, ctx)
        return PseudoToken(group.group.kind, value, group.group.location)

    def _node(self, node: PTNode, ctx):
        strict = node.meta.get("strict_type")
        if strict is not None:
            return n.StrictTypeName.make(strict)
        children = [self.build(child, ctx) for child in node.children]
        production = node.production
        if production.internal:
            value = production.action(ctx, children)
        else:
            value = ctx.reduce(production, children, node.location)
        prefix = node.meta.get("class_prefix")
        if prefix is not None and isinstance(value, n.NameExpr):
            value.resolution_hint = prefix
        return value

    def _stmts(self, stmts: PTStmts, ctx):
        scope = ctx.scope.child() if ctx.scope is not None else None
        inner = ctx.with_scope(scope) if scope is not None else ctx
        out: List[object] = []
        for element in stmts.elements:
            value = self.build(element, inner)
            if isinstance(value, n.BlockStmts):
                out.extend(value.stmts)
            elif isinstance(value, list):
                out.extend(value)
            else:
                out.append(value)
                if isinstance(value, n.LocalVarDecl) and scope is not None:
                    inner.declare_local(value)
        return n.BlockStmts(out)


def _coerce_hole_value(item, value):
    declared = item.declared
    if declared.is_terminal:
        if declared.name == "Identifier":
            if isinstance(value, n.Ident):
                return Token("Identifier", value.name, value.location)
            if isinstance(value, str):
                return Token("Identifier", value)
            if isinstance(value, Token):
                return value
        raise TemplateError(
            f"hole ${item.name} needs a token-like value, got {value!r}"
        )
    node_class = getattr(declared, "node_class", None)
    if node_class is not None and not isinstance(value, (node_class, n.LazyNode)):
        raise TemplateError(
            f"hole ${item.name} expects {declared.name}, got "
            f"{type(value).__name__}"
        )
    return value


# ---------------------------------------------------------------------------
# syntax case
# ---------------------------------------------------------------------------

_case_cache: Dict[Tuple, Tuple] = {}


def syntax_case(ctx, result: str, node, cases):
    """Maya's ``syntax case``: match a node against parameter-list
    patterns; run the first matching case body.

    ``cases`` is a sequence of (pattern source, callable) pairs; the
    callable receives the pattern's bindings as keyword arguments.  A
    trailing (None, callable) pair is the default.  Raises
    TemplateError when nothing matches and no default is given.
    """
    from repro.dispatch.specializers import match_params
    from repro.patterns.params import compile_parameter_list

    env = ctx.env
    tables = tables_for(env.grammar)
    # One version-cached fingerprint for the whole case list (it used
    # to be recomputed — O(grammar) — per case, per invocation).
    fingerprint = env.grammar.fingerprint()
    for pattern, body in cases:
        if pattern is None:
            return body()
        key = (fingerprint, result, pattern)
        compiled = _case_cache.get(key)
        if compiled is None:
            _CASE_STATS.miss()
            compiled = compile_parameter_list(tables, result, pattern)
            _case_cache[key] = compiled
        else:
            _CASE_STATS.hit()
        production, params, _ = compiled
        if node.syntax is None or node.syntax[0] is not production:
            continue
        bindings: Dict[str, object] = {}
        if match_params(params, list(node.syntax[1]), env, bindings):
            return body(**bindings)
    raise TemplateError(f"syntax case fell through for {node!r}")
