"""Metric exporters: Prometheus text exposition and structured JSON.

The Prometheus exporter follows the text exposition format version
0.0.4 (``# HELP`` / ``# TYPE`` comments, escaped label values,
cumulative ``_bucket``/``_sum``/``_count`` series for histograms), so
``mayac --metrics-out - --metrics-format prom`` emits something a
Prometheus scrape — or ``promtool check metrics`` — accepts verbatim.
The JSON exporter is the registry snapshot plus a schema tag; it is the
*same* payload the ``--trace-out`` JSONL metrics record embeds.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry, REGISTRY


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (text.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return format(float(value), "g")


def _labels_text(labelnames, labelvalues, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = [f'{name}="{_escape_label_value(value)}"'
             for name, value in zip(labelnames, labelvalues)]
    if extra:
        pairs.extend(f'{name}="{_escape_label_value(value)}"'
                     for name, value in extra.items())
    return "{" + ",".join(pairs) + "}" if pairs else ""


def to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """The whole registry in Prometheus text exposition format."""
    registry = registry if registry is not None else REGISTRY
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labelvalues, child in family.samples():
            if family.kind == "histogram":
                for bound, cumulative in child.cumulative():
                    labels = _labels_text(family.labelnames, labelvalues,
                                          {"le": bound})
                    lines.append(f"{family.name}_bucket{labels} {cumulative}")
                base = _labels_text(family.labelnames, labelvalues)
                lines.append(f"{family.name}_sum{base} "
                             f"{_format_value(child.total)}")
                lines.append(f"{family.name}_count{base} {child.count}")
            else:
                labels = _labels_text(family.labelnames, labelvalues)
                lines.append(f"{family.name}{labels} "
                             f"{_format_value(child.value)}")
    return "\n".join(lines) + "\n"


def to_json(registry: Optional[MetricsRegistry] = None) -> Dict[str, object]:
    """The registry snapshot as plain data (one schema everywhere)."""
    registry = registry if registry is not None else REGISTRY
    return registry.snapshot()


def to_json_text(registry: Optional[MetricsRegistry] = None) -> str:
    return json.dumps(to_json(registry), indent=2, sort_keys=True) + "\n"
