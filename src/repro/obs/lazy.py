"""The laziness profiler: measuring what lazy parsing never does.

The paper's central implementation technique is interleaved lazy
parsing and lazy type checking — Maya only parses and checks the trees
an expansion actually forces.  This module measures that directly:
every lazy thunk creation (``ctx.lazy_subtree``, template lazy groups,
``rescope_lazy`` copies) and every *first* force demanded by a
compiler driver (the class compiler forcing method bodies, the checker
forcing statement thunks, the interpreter, MultiJava's translator) is
counted per production symbol and per compiler phase, along with the
number of captured-but-unparsed tokens.  ``mayac --lazy-report``
renders the result; the same numbers land in the metrics registry
(``maya_lazy_*`` families) for ``--metrics-out``.

Forcing is counted **at the driver boundary** — the call sites that
*demand* a value — rather than inside ``LazyNode.force`` itself:
``force()`` is also reached from internal plumbing (unparse of
already-forced nodes, node equality, rescoping) where no new work
happens, and the boundary is where the phase attribution is meaningful
("the checker forced this body during bodies+check").  Thunks created
before the profiler was activated are never counted as forced either
(the ``_lazy_tracked`` mark), so ``forced <= created`` holds by
construction.

When no profiler is active every hook is one module-attribute read
plus a ``None`` check — the same discipline as ``perf`` and ``trace``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs import metrics as m

_CREATED = m.REGISTRY.counter(
    "maya_lazy_thunks_created_total",
    "Lazy parse thunks created, by creating phase and content symbol.",
    ("phase", "symbol"))
_FORCED = m.REGISTRY.counter(
    "maya_lazy_thunks_forced_total",
    "Lazy parse thunks forced, by forcing phase and content symbol.",
    ("phase", "symbol"))
_TOKENS_CREATED = m.REGISTRY.counter(
    "maya_lazy_tokens_created_total",
    "Tokens captured inside lazy thunks (deferred, possibly never parsed).",
    ("symbol",))
_TOKENS_FORCED = m.REGISTRY.counter(
    "maya_lazy_tokens_forced_total",
    "Captured tokens whose thunk was eventually forced (parsed).",
    ("symbol",))


def _symbol_name(symbol) -> str:
    return getattr(symbol, "name", None) or str(symbol)


def _token_weight(node) -> int:
    tree = getattr(node, "tree_token", None)
    children = getattr(tree, "children", None)
    return len(children) if children else 0


class LazinessProfiler:
    """Created/forced tallies for one profiling session."""

    def __init__(self):
        # (phase, symbol) -> thunk count
        self.created: Dict[Tuple[str, str], int] = {}
        self.forced: Dict[Tuple[str, str], int] = {}
        # symbol -> captured-token count
        self.tokens_created: Dict[str, int] = {}
        self.tokens_forced: Dict[str, int] = {}

    # -- recording -------------------------------------------------------

    def record_created(self, symbol: str, tokens: int, phase: str) -> None:
        key = (phase, symbol)
        self.created[key] = self.created.get(key, 0) + 1
        self.tokens_created[symbol] = self.tokens_created.get(symbol, 0) + tokens
        _CREATED.labels(phase or "(none)", symbol).inc()
        if tokens:
            _TOKENS_CREATED.labels(symbol).inc(tokens)

    def record_forced(self, symbol: str, tokens: int, phase: str) -> None:
        key = (phase, symbol)
        self.forced[key] = self.forced.get(key, 0) + 1
        self.tokens_forced[symbol] = self.tokens_forced.get(symbol, 0) + tokens
        _FORCED.labels(phase or "(none)", symbol).inc()
        if tokens:
            _TOKENS_FORCED.labels(symbol).inc(tokens)

    # -- derived figures -------------------------------------------------

    @property
    def created_total(self) -> int:
        return sum(self.created.values())

    @property
    def forced_total(self) -> int:
        return sum(self.forced.values())

    @property
    def never_forced(self) -> int:
        return self.created_total - self.forced_total

    @property
    def never_forced_fraction(self) -> float:
        total = self.created_total
        return self.never_forced / total if total else 0.0

    @property
    def tokens_created_total(self) -> int:
        return sum(self.tokens_created.values())

    @property
    def tokens_forced_total(self) -> int:
        return sum(self.tokens_forced.values())

    @property
    def never_parsed_token_fraction(self) -> float:
        """The fraction of captured tokens that were never parsed —
        the closest direct measurement of "how much of the program the
        compiler never looked at"."""
        total = self.tokens_created_total
        return (total - self.tokens_forced_total) / total if total else 0.0

    def by_symbol(self) -> List[Tuple[str, int, int]]:
        """(symbol, created, forced) rows, most-created first."""
        created: Dict[str, int] = {}
        forced: Dict[str, int] = {}
        for (_, symbol), count in self.created.items():
            created[symbol] = created.get(symbol, 0) + count
        for (_, symbol), count in self.forced.items():
            forced[symbol] = forced.get(symbol, 0) + count
        return sorted(
            ((symbol, count, forced.get(symbol, 0))
             for symbol, count in created.items()),
            key=lambda row: (-row[1], row[0]),
        )

    def snapshot(self) -> Dict[str, object]:
        return {
            "thunks": {
                "created": self.created_total,
                "forced": self.forced_total,
                "never_forced": self.never_forced,
                "never_forced_fraction": round(self.never_forced_fraction, 4),
            },
            "tokens": {
                "captured": self.tokens_created_total,
                "parsed": self.tokens_forced_total,
                "never_parsed_fraction":
                    round(self.never_parsed_token_fraction, 4),
            },
            "created_by_phase_symbol": {
                f"{phase or '(none)'}/{symbol}": count
                for (phase, symbol), count in sorted(self.created.items())
            },
            "forced_by_phase_symbol": {
                f"{phase or '(none)'}/{symbol}": count
                for (phase, symbol), count in sorted(self.forced.items())
            },
        }

    def render(self) -> str:
        """The human ``mayac --lazy-report`` view."""
        lines = ["== mayac lazy report =="]
        lines.append(
            f"thunks: {self.created_total} created, "
            f"{self.forced_total} forced, "
            f"{self.never_forced} never forced "
            f"({self.never_forced_fraction:.1%} of the lazy program "
            f"never parsed/checked)"
        )
        if self.tokens_created_total:
            never = self.tokens_created_total - self.tokens_forced_total
            lines.append(
                f"tokens: {self.tokens_created_total} captured lazily, "
                f"{self.tokens_forced_total} eventually parsed, "
                f"{never} never parsed "
                f"({self.never_parsed_token_fraction:.1%})"
            )
        rows = self.by_symbol()
        if rows:
            lines.append("per production:")
            for symbol, created, forced in rows:
                never = created - forced
                fraction = never / created if created else 0.0
                lines.append(
                    f"  {symbol:<22} created {created:<5} forced {forced:<5}"
                    f" never {never:<4} ({fraction:.0%})"
                )
        phases: Dict[str, Tuple[int, int]] = {}
        for (phase, _), count in self.created.items():
            created, forced = phases.get(phase, (0, 0))
            phases[phase] = (created + count, forced)
        for (phase, _), count in self.forced.items():
            created, forced = phases.get(phase, (0, 0))
            phases[phase] = (created, forced + count)
        if phases:
            lines.append("per phase:")
            for phase in sorted(phases):
                created, forced = phases[phase]
                lines.append(
                    f"  {phase or '(outside phases)':<22} "
                    f"created {created:<5} forced {forced}"
                )
        return "\n".join(lines)


#: The currently active laziness profiler, or None (the common case).
active: Optional[LazinessProfiler] = None


def activate(profiler: Optional[LazinessProfiler] = None) -> LazinessProfiler:
    """Activate a laziness profiler.  A fresh profiler owns the
    ``maya_lazy_*`` registry families for its session, so they are
    zeroed here (mirroring how a fresh ``perf.Profiler`` owns the
    ``maya_phase_*`` families)."""
    global active
    if profiler is None:
        profiler = LazinessProfiler()
        m.REGISTRY.reset("maya_lazy_")
    active = profiler
    return active


def deactivate() -> None:
    global active
    active = None


# -- hooks (no-ops when inactive) -------------------------------------------


def thunk_created(node):
    """Record a freshly created lazy thunk; returns the node so
    creation sites can wrap their return expression."""
    profiler = active
    if profiler is not None:
        node._lazy_tracked = True
        profiler.record_created(_symbol_name(node.symbol),
                                _token_weight(node), m.current_phase())
    return node


def thunk_forcing(node) -> None:
    """Record that a driver is about to force a thunk for the first
    time.  Call sites guard with ``isinstance(node, LazyNode)``; this
    hook handles the already-forced and untracked cases itself."""
    profiler = active
    if profiler is None:
        return
    if node.is_forced() or not getattr(node, "_lazy_tracked", False):
        return
    if getattr(node, "_lazy_force_counted", False):
        return
    node._lazy_force_counted = True
    profiler.record_forced(_symbol_name(node.symbol),
                           _token_weight(node), m.current_phase())
