"""Flamegraph exporters: folded stacks and speedscope JSON.

Both collapse the tracer's span trees (``repro.trace.Tracer``) into
flame-graph-ready forms:

* **folded stacks** — one line per unique root-to-span path with the
  path's *self time* in integer microseconds
  (``compile demo.maya;phase parse+expand;expand EForEach 1234``) —
  the input format of Brendan Gregg's ``flamegraph.pl`` and of
  speedscope's "folded" importer;
* **speedscope** — the evented JSON profile format of
  https://www.speedscope.app: a shared frame table plus open/close
  events on one timeline, preserving the actual span timings so the
  time-order view shows when each expansion ran, not just how long.

A span's display frame is ``"<kind> <name>"`` — e.g. ``phase lex``,
``dispatch PrimaryExpr ...``, ``expand EForEach`` — so the flamegraph
reads like the ``--trace`` view.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple


def _frame_name(span) -> str:
    return f"{span.kind} {span.name}"


def _span_bounds(span, fallback_end: float) -> Tuple[float, float]:
    end = span.end if span.end is not None else fallback_end
    return span.start, max(span.start, end)


def folded_stacks(tracer) -> str:
    """The trace as folded stack lines (self time, microseconds)."""
    totals: Dict[Tuple[str, ...], int] = {}

    def walk(span, path: Tuple[str, ...]) -> None:
        path = path + (_frame_name(span),)
        start, end = _span_bounds(span, span.start)
        child_time = 0.0
        for child in span.children:
            child_start, child_end = _span_bounds(child, end)
            child_time += max(0.0, child_end - child_start)
            walk(child, path)
        self_us = int(round(max(0.0, (end - start) - child_time) * 1e6))
        if self_us > 0:
            totals[path] = totals.get(path, 0) + self_us

    for root in tracer.roots:
        walk(root, ())
    return "".join(f"{';'.join(path)} {value}\n"
                   for path, value in sorted(totals.items()))


def to_speedscope(tracer, name: str = "mayac") -> Dict[str, object]:
    """The trace as a speedscope evented profile (plain data)."""
    frames: List[Dict[str, str]] = []
    frame_index: Dict[str, int] = {}

    def frame_of(span) -> int:
        label = _frame_name(span)
        index = frame_index.get(label)
        if index is None:
            index = frame_index[label] = len(frames)
            frames.append({"name": label})
        return index

    roots = list(tracer.roots)
    epoch = roots[0].start if roots else 0.0
    events: List[Dict[str, object]] = []
    end_value = 0.0

    def emit(span, lo: float, hi: float) -> None:
        nonlocal end_value
        start, end = _span_bounds(span, hi)
        # Clamp into the parent's window so the event stream stays
        # well-nested even for spans cut short by an exception unwind.
        start = min(max(start, lo), hi)
        end = min(max(end, start), hi)
        at_open = (start - epoch) * 1e3
        at_close = (end - epoch) * 1e3
        events.append({"type": "O", "frame": frame_of(span), "at": at_open})
        for child in span.children:
            emit(child, start, end)
        events.append({"type": "C", "frame": frame_of(span), "at": at_close})
        end_value = max(end_value, at_close)

    for root in roots:
        start, end = _span_bounds(root, root.start)
        emit(root, start, end)

    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [{
            "type": "evented",
            "name": name,
            "unit": "milliseconds",
            "startValue": 0,
            "endValue": end_value,
            "events": events,
        }],
        "name": name,
        "exporter": "mayac --flamegraph",
        "activeProfileIndex": 0,
    }


def to_speedscope_text(tracer, name: str = "mayac") -> str:
    return json.dumps(to_speedscope(tracer, name)) + "\n"
