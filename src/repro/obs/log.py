"""The structured event log and the request context that stamps it.

Two pieces, both deliberately tiny and stdlib-only (everything else in
the tree may import this module without cycles):

* **The event log** — :class:`EventLog` records leveled, structured
  events into a bounded in-memory ring (plus an optional JSONL file
  sink).  One record is one JSON object sharing the ``--trace-out``
  record discipline: a ``type`` tag (``"event"``), a timestamp, a
  dotted event ``name`` (``server.request.done``,
  ``modules.module.reused``), and free-form fields.  The process-wide
  :data:`LOG` is always on — the ring is bounded, so an idle compiler
  pays one deque append per lifecycle event and nothing per AST node —
  and a file sink turns it into a flight recorder
  (``mayad --log-out`` / ``mayac --log-out``).

* **The request context** — a :mod:`contextvars`-based
  :class:`RequestContext` carrying the ``request_id`` the daemon
  minted and the ``trace_id`` the *client* minted (so one logical
  request keeps one trace across retries, workers, degraded re-runs,
  and module builds).  Every event emitted under a bound context — and
  every trace span, metric exemplar, and diagnostic created under it —
  records both IDs, which is what makes a crash reconstructible from
  the log alone: grep the request_id and the admission, crash,
  degraded re-run, and response events line up.

Contexts bind per *thread of work*, not per thread: the daemon's
connection handler and the worker executing the same request bind the
**same** :class:`RequestContext` object, so per-phase timings recorded
by the worker (via :func:`repro.perf.phase`) are visible to the
handler assembling the response.
"""

from __future__ import annotations

import contextvars
import json
import os
import re
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: Leveled severities, log4j-shaped.  ``debug`` is for per-module /
#: per-span chatter, ``info`` for request lifecycle, ``warn`` for
#: degradations the service absorbed, ``error`` for failures it
#: reported.
LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warn": 30, "error": 40}

#: Well-formedness contracts for the IDs (asserted by the smoke drill:
#: every daemon response and request-scoped log line must match).
REQUEST_ID_RE = re.compile(r"^r-[0-9a-f]{12}$")
TRACE_ID_RE = re.compile(r"^t-[0-9a-f]{16}$")


def mint_request_id() -> str:
    """A fresh server-side request ID (one per daemon request)."""
    return "r-" + uuid.uuid4().hex[:12]


def mint_trace_id() -> str:
    """A fresh client-side trace ID (one per *logical* request — it
    survives retries and degraded re-runs)."""
    return "t-" + uuid.uuid4().hex[:16]


class RequestContext:
    """Everything one in-flight request accumulates.

    ``phases`` collects per-phase wall-clock (fed by ``perf.phase``),
    ``outcomes`` free-form cache/service outcomes (``artifact: hit``,
    ``modules_reused: 3``).  Both may be written from a worker thread
    while a zombie or degraded re-run overlaps, hence the lock.
    """

    __slots__ = ("request_id", "trace_id", "started", "_phases",
                 "outcomes", "_lock")

    def __init__(self, request_id: Optional[str] = None,
                 trace_id: Optional[str] = None):
        self.request_id = request_id or mint_request_id()
        self.trace_id = trace_id or mint_trace_id()
        self.started = time.monotonic()
        self._phases: Dict[str, float] = {}
        self.outcomes: Dict[str, object] = {}
        self._lock = threading.Lock()

    def add_phase(self, name: str, seconds: float) -> None:
        with self._lock:
            self._phases[name] = self._phases.get(name, 0.0) + seconds

    def phase_ms(self) -> Dict[str, float]:
        """Per-phase milliseconds, rounded for the response payload."""
        with self._lock:
            return {name: round(seconds * 1000.0, 3)
                    for name, seconds in sorted(self._phases.items())}

    def note(self, **outcomes) -> None:
        """Record cache/service outcomes onto the request."""
        with self._lock:
            self.outcomes.update(outcomes)

    def ids(self) -> Dict[str, str]:
        return {"request_id": self.request_id, "trace_id": self.trace_id}

    def __repr__(self) -> str:
        return f"<request {self.request_id} trace={self.trace_id}>"


_CONTEXT: "contextvars.ContextVar[Optional[RequestContext]]" = \
    contextvars.ContextVar("maya_request_context", default=None)


def current_request() -> Optional[RequestContext]:
    """The bound request context, or None outside any request."""
    return _CONTEXT.get()


@contextmanager
def request_scope(context: Optional[RequestContext] = None,
                  request_id: Optional[str] = None,
                  trace_id: Optional[str] = None
                  ) -> Iterator[RequestContext]:
    """Bind a request context for the dynamic extent of the block.

    Pass an existing :class:`RequestContext` to *re-bind* the same
    request on another thread (daemon handler -> worker -> degraded
    re-run all share one object); otherwise a fresh one is minted from
    the optional IDs.
    """
    if context is None:
        context = RequestContext(request_id=request_id, trace_id=trace_id)
    token = _CONTEXT.set(context)
    try:
        yield context
    finally:
        _CONTEXT.reset(token)


# ---------------------------------------------------------------------------
# The event log
# ---------------------------------------------------------------------------


class EventLog:
    """A leveled, bounded, structured event ring with an optional
    JSONL file sink.

    Events below the threshold cost one dict lookup and a compare;
    events at or above it cost a dict build and a deque append under a
    lock.  The file sink writes one JSON line per event as it happens
    (a flight recorder that survives a crash), flushed per line.
    """

    def __init__(self, capacity: int = 4096, level: str = "info",
                 sink_path: Optional[str] = None):
        if level not in LEVELS:
            raise ValueError(f"bad log level {level!r} "
                             f"(expected one of {sorted(LEVELS)})")
        self._ring: "deque[dict]" = deque(maxlen=max(1, capacity))
        self._lock = threading.Lock()
        self._threshold = LEVELS[level]
        self.level = level
        self._sink = None
        self._sink_path: Optional[str] = None
        #: Monotone count of every record accepted (ring evictions do
        #: not decrement it) — lets tests assert "something was
        #: emitted" without holding the whole ring.
        self.emitted = 0
        if sink_path:
            self.set_sink(sink_path)

    # -- configuration -----------------------------------------------------

    def set_level(self, level: str) -> None:
        if level not in LEVELS:
            raise ValueError(f"bad log level {level!r} "
                             f"(expected one of {sorted(LEVELS)})")
        self.level = level
        self._threshold = LEVELS[level]

    def set_sink(self, path: Optional[str]) -> None:
        """Mirror every accepted event to ``path`` as JSON lines
        (append mode; ``None`` closes the sink)."""
        with self._lock:
            if self._sink is not None:
                try:
                    self._sink.close()
                except OSError:
                    pass
                self._sink = None
            self._sink_path = path
            if path:
                directory = os.path.dirname(path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                self._sink = open(path, "a", encoding="utf-8")

    # -- recording ---------------------------------------------------------

    def emit(self, name: str, level: str = "info", **fields) -> Optional[dict]:
        """Record one event; returns the record, or None when filtered.

        The bound request context's IDs are stamped automatically;
        explicit ``request_id``/``trace_id`` keyword fields win (for
        events about *another* request, e.g. a zombie's)."""
        if LEVELS.get(level, 0) < self._threshold:
            return None
        record: Dict[str, object] = {
            "type": "event",
            "ts": round(time.time(), 6),
            "level": level,
            "name": name,
        }
        context = _CONTEXT.get()
        if context is not None:
            record["request_id"] = context.request_id
            record["trace_id"] = context.trace_id
        record.update(fields)
        with self._lock:
            self.emitted += 1
            self._ring.append(record)
            if self._sink is not None:
                try:
                    self._sink.write(json.dumps(record, default=str) + "\n")
                    self._sink.flush()
                except OSError:
                    # A dead sink must never take the service with it.
                    try:
                        self._sink.close()
                    except OSError:
                        pass
                    self._sink = None
        return record

    # -- queries -----------------------------------------------------------

    def records(self, request_id: Optional[str] = None,
                name: Optional[str] = None,
                trace_id: Optional[str] = None) -> List[dict]:
        """A snapshot of the ring, optionally filtered — ``name`` is a
        prefix match on the dotted event name."""
        with self._lock:
            snapshot = list(self._ring)
        return [
            record for record in snapshot
            if (request_id is None or record.get("request_id") == request_id)
            and (trace_id is None or record.get("trace_id") == trace_id)
            and (name is None or str(record.get("name", "")).startswith(name))
        ]

    def to_jsonl(self) -> str:
        """The whole ring as JSON Lines (the ``--log-out`` payload —
        same one-record-per-line discipline as ``--trace-out``)."""
        with self._lock:
            snapshot = list(self._ring)
        return "".join(json.dumps(record, default=str) + "\n"
                       for record in snapshot)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (f"<EventLog level={self.level} size={len(self._ring)}"
                f"{' sink=' + self._sink_path if self._sink_path else ''}>")


#: The process-wide event log every subsystem records into (the event
#: analogue of ``obs.metrics.REGISTRY``).
LOG = EventLog()


def emit(name: str, level: str = "info", **fields) -> Optional[dict]:
    """Record one event in the process-wide :data:`LOG`."""
    return LOG.emit(name, level=level, **fields)
