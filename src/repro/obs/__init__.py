"""repro.obs: the telemetry subsystem.

Three layers (see DESIGN.md "Telemetry"):

* :mod:`repro.obs.metrics` — labelled Counter/Gauge/Histogram families
  in a process-wide :data:`~repro.obs.metrics.REGISTRY`; every other
  telemetry producer (``repro.perf``'s cache stats and profiler, the
  span tracer, the laziness profiler, the dispatcher) records here.
* :mod:`repro.obs.export` / :mod:`repro.obs.flamegraph` — exporters:
  Prometheus text exposition, structured JSON (the one metrics schema),
  folded stacks, and speedscope JSON from the tracer's span trees.
* :mod:`repro.obs.lazy` — the laziness profiler: thunks created vs.
  forced per phase and production, measuring the paper's lazy
  parse/check claim (``mayac --lazy-report``).
* :mod:`repro.obs.log` — the structured event log (bounded ring +
  JSONL sink) and the contextvars request context that stamps every
  event, span, metric exemplar, and diagnostic with the
  ``request_id``/``trace_id`` of the request that caused it.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricFamily,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs import export, flamegraph, lazy, log
from repro.obs.log import (
    EventLog,
    LOG,
    RequestContext,
    current_request,
    emit,
    request_scope,
)

__all__ = [
    "EventLog",
    "LOG",
    "RequestContext",
    "current_request",
    "emit",
    "request_scope",
    "log",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricFamily",
    "MetricsRegistry",
    "REGISTRY",
    "export",
    "flamegraph",
    "lazy",
]
