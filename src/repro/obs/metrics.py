"""The metrics model: labelled counters, gauges, and histograms in a
process-wide registry.

Every telemetry producer in the compiler — cache statistics, the phase
profiler, the dispatcher, the span tracer, the laziness profiler —
records into one :data:`REGISTRY` of named metric families, so every
consumer (``mayac --profile``, ``--metrics-out``, the ``--trace-out``
JSONL metrics record) renders *the same numbers* instead of three
ad-hoc counter models.  The design follows the Prometheus data model:

* a **family** has a name (``maya_cache_events_total``), a help string,
  a kind (counter / gauge / histogram), and a fixed tuple of label
  names;
* ``family.labels(cache="dispatch.plans", event="hit")`` returns the
  **child** for one label combination — a tiny object holding a number
  (or buckets), cheap enough to bind once at import time and bump on a
  hot path;
* the registry rejects a second registration of the same name with a
  different kind or label set (a collision would silently merge
  unrelated series).

Nothing here imports the rest of the compiler, so any module may
depend on it without cycles.  The module also tracks the *current
compiler phase* (pushed by ``perf.phase``): label-attribution for
metrics recorded deep inside a phase, e.g. lazy-thunk forcing.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import log as _log

#: One process-wide lock serializing every child mutation.  Increments
#: are read-modify-write (``self.value += n`` is several bytecodes), so
#: without this a daemon worker pool hammering one shared child would
#: lose counts.  A single shared lock keeps children allocation-free
#: and the uncontended acquire is ~100ns — noise next to the dispatch
#: work each increment accounts for.
_VALUE_LOCK = threading.Lock()

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(Exception):
    """A metrics-model misuse: bad name, label mismatch, or a
    registration collision."""


def sanitize_name(raw: str) -> str:
    """A best-effort valid metric-name fragment from free-form text
    (``expansion.depth`` -> ``expansion_depth``)."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", raw).strip("_")
    if not cleaned or not _NAME_RE.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


# ---------------------------------------------------------------------------
# Children: one label combination's value
# ---------------------------------------------------------------------------


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a Gauge")
        with _VALUE_LOCK:
            self.value += amount

    def _reset(self) -> None:
        with _VALUE_LOCK:
            self.value = 0


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value: float) -> None:
        with _VALUE_LOCK:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with _VALUE_LOCK:
            self.value += amount

    def dec(self, amount: float = 1) -> None:
        with _VALUE_LOCK:
            self.value -= amount

    def _reset(self) -> None:
        with _VALUE_LOCK:
            self.value = 0


class Histogram:
    """A bucketed distribution of observations.

    Default bounds are powers of two — right for the compiler's shape
    metrics (dispatch depth, fuel consumed, expansion counts), where a
    single counter hides the tail.  Bounds are upper-inclusive and the
    last bucket is open-ended (``+Inf`` in Prometheus terms).
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "bounds",
                 "exemplar")

    #: Default upper bounds (inclusive) of the buckets.
    BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128)

    def __init__(self, name: str = "", bounds: Optional[Sequence[float]] = None):
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else self.BOUNDS
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise MetricError(f"histogram bounds must be sorted and "
                              f"non-empty: {self.bounds!r}")
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * (len(self.bounds) + 1)
        #: The most recent observation made under a bound request
        #: context: ``{"value", "request_id", "trace_id"}`` — an
        #: exemplar in the OpenMetrics sense, linking an aggregate
        #: back to one concrete request that contributed to it.
        self.exemplar: Optional[Dict[str, object]] = None

    def observe(self, value: float) -> None:
        context = _log.current_request()
        with _VALUE_LOCK:
            if context is not None:
                self.exemplar = {"value": value,
                                 "request_id": context.request_id,
                                 "trace_id": context.trace_id}
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.buckets[index] += 1
                    return
            self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative(self) -> List[Tuple[str, int]]:
        """(upper-bound label, cumulative count) pairs, ending at
        ``+Inf`` — the Prometheus histogram exposition shape."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, hits in zip(self.bounds, self.buckets):
            running += hits
            out.append((format(bound, "g"), running))
        out.append(("+Inf", running + self.buckets[-1]))
        return out

    def snapshot(self) -> Dict[str, object]:
        snapshot: Dict[str, object] = {
            "name": self.name,
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 3),
            "buckets": {
                (f"<={format(bound, 'g')}" if index < len(self.bounds)
                 else f">{format(self.bounds[-1], 'g')}"): hits
                for index, (bound, hits) in enumerate(
                    zip(self.bounds + (self.bounds[-1],), self.buckets))
                if hits
            },
        }
        if self.exemplar is not None:
            snapshot["exemplar"] = dict(self.exemplar)
        return snapshot

    def _reset(self) -> None:
        with _VALUE_LOCK:
            self.count = 0
            self.total = 0
            self.min = self.max = None
            self.buckets = [0] * (len(self.bounds) + 1)
            self.exemplar = None

    def __repr__(self) -> str:
        return (f"Histogram({self.name}: n={self.count}, "
                f"min={self.min}, max={self.max}, mean={self.mean:.2f})")


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


# ---------------------------------------------------------------------------
# Families
# ---------------------------------------------------------------------------


class MetricFamily:
    """All children of one named metric, keyed by label values.

    A family with no label names proxies the child API directly
    (``family.inc()``, ``family.set()``, ``family.observe()``), so
    unlabelled metrics stay one attribute access away.
    """

    __slots__ = ("name", "help", "kind", "labelnames", "_children", "_bounds")

    def __init__(self, name: str, help_text: str, kind: str,
                 labelnames: Sequence[str] = (),
                 bounds: Optional[Sequence[float]] = None):
        if not _NAME_RE.match(name):
            raise MetricError(f"bad metric name {name!r}")
        if kind not in _KINDS:
            raise MetricError(f"bad metric kind {kind!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricError(f"bad label name {label!r} on {name}")
        if len(set(labelnames)) != len(tuple(labelnames)):
            raise MetricError(f"duplicate label names on {name}")
        self.name = name
        self.help = help_text
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}
        self._bounds = tuple(bounds) if bounds is not None else None
        if not self.labelnames:
            self._children[()] = self._make_child()

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self.name, bounds=self._bounds)
        return _KINDS[self.kind]()

    def labels(self, *values, **kwvalues):
        """The child for one label-value combination (created on first
        use).  Accepts positional values in label order or keywords."""
        if kwvalues:
            if values:
                raise MetricError("mix of positional and keyword labels")
            try:
                values = tuple(kwvalues.pop(name) for name in self.labelnames)
            except KeyError as missing:
                raise MetricError(
                    f"{self.name}: missing label {missing.args[0]!r}"
                ) from None
            if kwvalues:
                raise MetricError(
                    f"{self.name}: unknown labels {sorted(kwvalues)}"
                )
        key = tuple(str(value) for value in values)
        if len(key) != len(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {len(key)} values"
            )
        child = self._children.get(key)
        if child is None:
            # Two threads may race to create the same child; the lock
            # makes the second reuse the first's (bound children must
            # stay unique per label set or counts would split).
            with _VALUE_LOCK:
                child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._make_child()
        return child

    def samples(self) -> Iterator[Tuple[Tuple[str, ...], object]]:
        """(label values, child) pairs in sorted label order."""
        for key in sorted(self._children):
            yield key, self._children[key]

    # -- unlabelled convenience -------------------------------------------

    def _solo(self):
        if self.labelnames:
            raise MetricError(f"{self.name} has labels {self.labelnames}; "
                              f"call .labels(...) first")
        return self._children[()]

    def inc(self, amount: float = 1) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self):
        return self._solo().value

    def _reset(self) -> None:
        # Reset in place (never drop children): hot paths bind children
        # once at import time and keep bumping the same objects.
        for child in self._children.values():
            child._reset()

    def __repr__(self) -> str:
        return (f"<{self.kind} family {self.name} "
                f"labels={list(self.labelnames)} "
                f"children={len(self._children)}>")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class MetricsRegistry:
    """A process-wide, name-keyed collection of metric families."""

    def __init__(self):
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _register(self, name: str, help_text: str, kind: str,
                  labelnames: Sequence[str],
                  bounds: Optional[Sequence[float]] = None) -> MetricFamily:
        with self._lock:
            return self._register_locked(name, help_text, kind,
                                         labelnames, bounds)

    def _register_locked(self, name: str, help_text: str, kind: str,
                         labelnames: Sequence[str],
                         bounds: Optional[Sequence[float]]) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind:
                raise MetricError(
                    f"metric {name} already registered as a {family.kind}, "
                    f"not a {kind}"
                )
            if family.labelnames != tuple(labelnames):
                raise MetricError(
                    f"metric {name} already registered with labels "
                    f"{family.labelnames}, not {tuple(labelnames)}"
                )
            return family
        family = MetricFamily(name, help_text, kind, labelnames, bounds)
        self._families[name] = family
        return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, help_text, "counter", labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, help_text, "gauge", labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  bounds: Optional[Sequence[float]] = None) -> MetricFamily:
        return self._register(name, help_text, "histogram", labelnames, bounds)

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, object]:
        """Everything the registry knows, as plain JSON-able data — the
        one metrics schema shared by ``--metrics-out``, the
        ``--trace-out`` metrics record, and the profiler's views."""
        families = []
        for family in self.families():
            samples = []
            for labelvalues, child in family.samples():
                labels = dict(zip(family.labelnames, labelvalues))
                if family.kind == "histogram":
                    samples.append({"labels": labels, **child.snapshot()})
                else:
                    samples.append({"labels": labels, "value": child.value})
            families.append({
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "samples": samples,
            })
        return {"schema": "maya.metrics/1", "families": families}

    def reset(self, prefix: str = "") -> None:
        """Zero every family (or those whose name has ``prefix``) —
        for tests and per-run profiler isolation; families stay
        registered so bound children remain valid."""
        for name, family in self._families.items():
            if name.startswith(prefix):
                family._reset()

    def __repr__(self) -> str:
        return f"<MetricsRegistry families={len(self._families)}>"


#: The process-wide registry every compiler subsystem records into.
REGISTRY = MetricsRegistry()


# ---------------------------------------------------------------------------
# Current compiler phase (pushed by perf.phase) — label attribution
# for metrics recorded while a phase is active.  Thread-local: daemon
# workers each run their own compile pipeline, and one worker's phase
# must not label another's metrics.
# ---------------------------------------------------------------------------

_phase_stacks = threading.local()


def _phase_stack() -> List[str]:
    stack = getattr(_phase_stacks, "stack", None)
    if stack is None:
        stack = _phase_stacks.stack = []
    return stack


def push_phase(name: str) -> None:
    _phase_stack().append(name)


def pop_phase() -> None:
    stack = _phase_stack()
    if stack:
        stack.pop()


def current_phase() -> str:
    """The innermost active compiler phase (this thread's), or ""
    outside any phase."""
    stack = _phase_stack()
    return stack[-1] if stack else ""
