"""Integer-encoded view of a grammar, for fast table generation.

Symbols are mapped to small integers (terminals and nonterminals in one
namespace); productions become integer tuples.  An augmented start
production ``__start_X -> X`` is added for every declared start symbol,
so parses (and pattern parses) can begin at any node-type nonterminal.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.grammar import Grammar, GrammarError, Nonterminal, Production

EOF = 0
PROBE = -1  # the '#' probe terminal of the LALR propagation algorithm

EOF_NAME = "$eof"


class EncodedGrammar:
    """A grammar lowered to integers, with FIRST/nullable precomputed."""

    def __init__(self, grammar: Grammar):
        self.grammar = grammar
        self.symbol_names: List[str] = [EOF_NAME]
        self.symbol_ids: Dict[str, int] = {EOF_NAME: EOF}
        self.is_terminal: List[bool] = [True]
        self.symbols: List[object] = [None]

        if not grammar.start_symbols:
            raise GrammarError("grammar has no start symbols")

        def intern(symbol) -> int:
            sym_id = self.symbol_ids.get(symbol.name)
            if sym_id is None:
                sym_id = len(self.symbol_names)
                self.symbol_ids[symbol.name] = sym_id
                self.symbol_names.append(symbol.name)
                self.is_terminal.append(symbol.is_terminal)
                self.symbols.append(symbol)
            return sym_id

        # Real productions.
        self.productions: List[Tuple[int, Tuple[int, ...]]] = []
        self.production_objects: List[Optional[Production]] = []
        for production in grammar.productions:
            lhs = intern(production.lhs)
            rhs = tuple(intern(symbol) for symbol in production.rhs)
            self.productions.append((lhs, rhs))
            self.production_objects.append(production)

        # Augmented starts.  Each start symbol gets its *own* EOF
        # terminal: with many entry points, a shared EOF would merge the
        # follow contexts of unrelated starts and manufacture spurious
        # reduce/reduce conflicts (e.g. FieldAccess vs MethodName).
        self.start_production: Dict[int, int] = {}  # start symbol id -> prod index
        self.start_eof: Dict[int, int] = {}  # start symbol id -> eof terminal id
        self.eof_of_production: Dict[int, int] = {}  # start prod index -> eof id
        for start in grammar.start_symbols:
            start_id = intern(start)
            fake_lhs_name = f"__start_{start.name}"
            fake_id = len(self.symbol_names)
            self.symbol_ids[fake_lhs_name] = fake_id
            self.symbol_names.append(fake_lhs_name)
            self.is_terminal.append(False)
            self.symbols.append(None)
            eof_name = f"$eof:{start.name}"
            eof_id = len(self.symbol_names)
            self.symbol_ids[eof_name] = eof_id
            self.symbol_names.append(eof_name)
            self.is_terminal.append(True)
            self.symbols.append(None)
            self.start_eof[start_id] = eof_id
            prod_index = len(self.productions)
            self.start_production[start_id] = prod_index
            self.eof_of_production[prod_index] = eof_id
            self.productions.append((fake_id, (start_id,)))
            self.production_objects.append(None)

        self.count = len(self.symbol_names)
        self.by_lhs: Dict[int, List[int]] = {}
        for index, (lhs, _) in enumerate(self.productions):
            self.by_lhs.setdefault(lhs, []).append(index)

        self._compute_first()
        self._first_suffix_cache: Dict[Tuple[int, int], Tuple[FrozenSet[int], bool]] = {}

    # -- FIRST/nullable ---------------------------------------------------

    def _compute_first(self) -> None:
        nullable: Set[int] = set()
        first: List[Set[int]] = [set() for _ in range(self.count)]
        for sym_id in range(self.count):
            if self.is_terminal[sym_id]:
                first[sym_id].add(sym_id)
        changed = True
        while changed:
            changed = False
            for lhs, rhs in self.productions:
                # nullable
                if lhs not in nullable and all(s in nullable for s in rhs):
                    nullable.add(lhs)
                    changed = True
                # first
                acc = first[lhs]
                before = len(acc)
                for symbol in rhs:
                    acc.update(first[symbol])
                    if symbol not in nullable:
                        break
                if len(acc) != before:
                    changed = True
        self.nullable = nullable
        self.first = [frozenset(s) for s in first]

    def first_of_suffix(self, prod_index: int, dot: int) -> Tuple[FrozenSet[int], bool]:
        """FIRST of rhs[dot:], plus whether the suffix is nullable."""
        key = (prod_index, dot)
        cached = self._first_suffix_cache.get(key)
        if cached is not None:
            return cached
        _, rhs = self.productions[prod_index]
        out: Set[int] = set()
        nullable = True
        for symbol in rhs[dot:]:
            out.update(self.first[symbol])
            if symbol not in self.nullable:
                nullable = False
                break
        result = (frozenset(out), nullable)
        self._first_suffix_cache[key] = result
        return result

    def name(self, sym_id: int) -> str:
        return self.symbol_names[sym_id]
