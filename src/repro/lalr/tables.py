"""LALR(1) lookahead computation and parse-table construction.

Lookaheads are computed with the spontaneous-generation/propagation
algorithm (Aho et al. 4.7.4).  Conflicts are resolved only through
declared operator precedence; anything left over raises ConflictError —
Maya's generator "rejects grammars that contain unresolved LALR(1)
conflicts" instead of applying YACC's default resolutions.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro import faults, perf
from repro.obs.metrics import REGISTRY
from repro.grammar import Assoc, Grammar, GrammarFingerprint, Production
from repro.lalr.automaton import DOT_STRIDE, Automaton, item, item_parts
from repro.lalr.encoded import EOF, PROBE, EncodedGrammar


class ConflictError(Exception):
    """The grammar has LALR(1) conflicts not resolved by precedence."""

    def __init__(self, conflicts: List[str]):
        self.conflicts = conflicts
        preview = "\n  ".join(conflicts[:12])
        extra = "" if len(conflicts) <= 12 else f"\n  ... {len(conflicts) - 12} more"
        super().__init__(f"unresolved LALR(1) conflicts:\n  {preview}{extra}")


# Action encodings.
SHIFT = "s"
REDUCE = "r"
ACCEPT = "a"


class ParseTables:
    """Generated ACTION/GOTO tables plus grammar metadata.

    ``snapshot``/``from_snapshot`` round-trip the derived tables through
    plain picklable data: the symbol/production encoding is rebuilt
    deterministically from the grammar (cheap), while the expensive
    automaton + lookahead computation is replaced by the stored ACTION/
    GOTO tables.  Restoring is only sound for a grammar whose
    fingerprint matches the one the snapshot was taken under.
    """

    def __init__(self, grammar: Grammar, _snapshot: Optional[dict] = None):
        self.grammar = grammar
        self.encoded = EncodedGrammar(grammar)
        if _snapshot is None:
            self.automaton = Automaton(self.encoded)
            self.action: List[Dict[int, Tuple[str, int]]] = []
            self.goto: List[Dict[int, int]] = []
            self._build()
        else:
            self.automaton = _RestoredAutomaton(
                _snapshot["start_state"], _snapshot["state_count"]
            )
            self.action = _snapshot["action"]
            self.goto = _snapshot["goto"]

    def snapshot(self) -> dict:
        """Picklable derived data for the on-disk table cache."""
        return {
            "start_state": dict(self.automaton.start_state),
            "state_count": len(self.automaton.states),
            "action": self.action,
            "goto": self.goto,
        }

    @classmethod
    def from_snapshot(cls, grammar: Grammar, snapshot: dict) -> "ParseTables":
        return cls(grammar, _snapshot=snapshot)

    # -- public API --------------------------------------------------------

    def symbol_id(self, name: str) -> Optional[int]:
        return self.encoded.symbol_ids.get(name)

    def start_state(self, nt_name: str) -> int:
        sym = self.encoded.symbol_ids.get(nt_name)
        if sym is None or sym not in self.automaton.start_state:
            raise KeyError(f"{nt_name} is not a declared start symbol")
        return self.automaton.start_state[sym]

    def eof_id(self, nt_name: str) -> int:
        sym = self.encoded.symbol_ids.get(nt_name)
        if sym is None or sym not in self.encoded.start_eof:
            raise KeyError(f"{nt_name} is not a declared start symbol")
        return self.encoded.start_eof[sym]

    def production(self, prod_index: int) -> Production:
        return self.encoded.production_objects[prod_index]

    def expected_terminals(self, state: int) -> List[str]:
        return sorted(
            self.encoded.name(t)
            for t in self.action[state]
            if t != PROBE and not self.encoded.name(t).startswith("$eof")
        )

    def has_goto(self, state: int, sym_id: int) -> bool:
        return sym_id in self.goto[state]

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        lookaheads = self._compute_lookaheads()
        encoded = self.encoded
        automaton = self.automaton
        productions = encoded.productions
        conflicts: List[str] = []

        start_prods = set(encoded.start_production.values())

        for state, kernel in enumerate(automaton.states):
            actions: Dict[int, Tuple[str, int]] = {}
            gotos: Dict[int, int] = {}
            for symbol, target in automaton.transitions[state].items():
                if encoded.is_terminal[symbol]:
                    actions[symbol] = (SHIFT, target)
                else:
                    gotos[symbol] = target

            kernel_las = {
                k: set(lookaheads.get((state, k), ())) for k in kernel
            }
            full = self._lr1_closure(kernel_las)
            for encoded_item, las in full.items():
                prod_index, dot = item_parts(encoded_item)
                _, rhs = productions[prod_index]
                if dot != len(rhs):
                    continue
                if prod_index in start_prods:
                    eof_id = self.encoded.eof_of_production[prod_index]
                    actions[eof_id] = (ACCEPT, prod_index)
                    continue
                for la in las:
                    if la == PROBE:
                        continue
                    self._add_reduce(state, actions, la, prod_index, conflicts)
            self.action.append(actions)
            self.goto.append(gotos)

        if conflicts:
            raise ConflictError(conflicts)

    def _add_reduce(
        self,
        state: int,
        actions: Dict[int, Tuple[str, int]],
        la: int,
        prod_index: int,
        conflicts: List[str],
    ) -> None:
        existing = actions.get(la)
        if existing is None:
            actions[la] = (REDUCE, prod_index)
            return
        kind, value = existing
        la_name = self.encoded.name(la)
        production = self.encoded.production_objects[prod_index]
        if kind == REDUCE:
            if value == prod_index:
                return
            other = self.encoded.production_objects[value]
            conflicts.append(
                f"reduce/reduce on {la_name!r} in state {state}: "
                f"[{production}] vs [{other}]"
            )
            return
        if kind in (SHIFT, ACCEPT):
            resolution = self._resolve_shift_reduce(la, production)
            if resolution == "shift":
                return  # keep the shift
            if resolution == "reduce":
                actions[la] = (REDUCE, prod_index)
                return
            if resolution == "error":
                del actions[la]
                return
            conflicts.append(
                f"shift/reduce on {la_name!r} in state {state}: "
                f"shift vs [{production}]"
            )

    def _resolve_shift_reduce(self, la: int, production: Production) -> Optional[str]:
        """Resolve via precedence; None when no declarations apply."""
        term_prec = self.grammar.precedence.lookup(self.encoded.name(la))
        prod_prec = self.grammar.production_prec(production)
        if term_prec is None or prod_prec is None:
            return None
        if prod_prec[0] > term_prec[0]:
            return "reduce"
        if prod_prec[0] < term_prec[0]:
            return "shift"
        assoc = prod_prec[1]
        if assoc == Assoc.LEFT:
            return "reduce"
        if assoc == Assoc.RIGHT:
            return "shift"
        return "error"

    # -- lookaheads -----------------------------------------------------------

    def _lr1_closure(
        self, seed: Dict[int, Set[int]]
    ) -> Dict[int, Set[int]]:
        """LR(1) closure of items with lookahead sets (PROBE allowed)."""
        encoded = self.encoded
        productions = encoded.productions
        items: Dict[int, Set[int]] = {k: set(v) for k, v in seed.items()}
        worklist: List[Tuple[int, int]] = [
            (k, la) for k, las in seed.items() for la in las
        ]
        while worklist:
            encoded_item, la = worklist.pop()
            prod_index, dot = item_parts(encoded_item)
            _, rhs = productions[prod_index]
            if dot >= len(rhs):
                continue
            symbol = rhs[dot]
            if encoded.is_terminal[symbol]:
                continue
            firsts, nullable = encoded.first_of_suffix(prod_index, dot + 1)
            new_las = set(firsts)
            if nullable:
                new_las.add(la)
            for next_prod in encoded.by_lhs.get(symbol, ()):
                target = item(next_prod, 0)
                existing = items.setdefault(target, set())
                for new_la in new_las:
                    if new_la not in existing:
                        existing.add(new_la)
                        worklist.append((target, new_la))
        return items

    def _compute_lookaheads(self) -> Dict[Tuple[int, int], Set[int]]:
        """Kernel-item lookaheads via spontaneous generation + propagation."""
        automaton = self.automaton
        encoded = self.encoded
        productions = encoded.productions

        lookaheads: Dict[Tuple[int, int], Set[int]] = {}
        propagations: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}

        for start_sym, prod_index in encoded.start_production.items():
            state = automaton.start_state[start_sym]
            lookaheads.setdefault((state, item(prod_index, 0)), set()).add(
                encoded.start_eof[start_sym]
            )

        for state, kernel in enumerate(automaton.states):
            transitions = automaton.transitions[state]
            for kernel_item in kernel:
                probe = self._lr1_closure({kernel_item: {PROBE}})
                for encoded_item, las in probe.items():
                    prod_index, dot = item_parts(encoded_item)
                    _, rhs = productions[prod_index]
                    if dot >= len(rhs):
                        continue
                    target_state = transitions[rhs[dot]]
                    target_key = (target_state, encoded_item + 1)
                    for la in las:
                        if la == PROBE:
                            propagations.setdefault(
                                (state, kernel_item), []
                            ).append(target_key)
                        else:
                            lookaheads.setdefault(target_key, set()).add(la)

        # Deduplicate propagation targets.
        for key, targets in propagations.items():
            propagations[key] = list(dict.fromkeys(targets))

        # Fixpoint propagation.
        worklist = list(lookaheads.keys())
        while worklist:
            source = worklist.pop()
            source_las = lookaheads.get(source)
            if not source_las:
                continue
            for target in propagations.get(source, ()):
                target_las = lookaheads.setdefault(target, set())
                before = len(target_las)
                target_las.update(source_las)
                if len(target_las) != before:
                    worklist.append(target)
        return lookaheads


class _RestoredAutomaton:
    """Stand-in for an Automaton rebuilt from a table snapshot: enough
    for the parser (start states) and for introspection (state count),
    without re-running LR(0) construction."""

    def __init__(self, start_state: Dict[int, int], state_count: int):
        self.start_state = start_state
        self.states = range(state_count)
        self.transitions: List[Dict[int, int]] = []


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Lookups and stores feed the named :class:`repro.perf.CacheStats`,
    so hit rates and eviction pressure show up in ``mayac --profile``.
    Thread-safe: the daemon's worker pool hits one shared instance
    concurrently, and ``move_to_end`` during a racing store would
    otherwise corrupt the recency order.
    """

    def __init__(self, maxsize: int, stats: perf.CacheStats):
        self.maxsize = maxsize
        self.stats = stats
        self._data: "OrderedDict" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.stats.miss()
                return None
            self._data.move_to_end(key)
        self.stats.hit()
        return value

    def put(self, key, value) -> None:
        evictions = 0
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                evictions += 1
        for _ in range(evictions):
            self.stats.evict()

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data


#: In-memory table cache.  Mid-compile grammar extension makes a new
#: fingerprint per ``use`` scope, so a long-running compiler would
#: otherwise accumulate one full table set per extension ever seen;
#: the LRU bound caps that at the working set.
TABLE_CACHE_SIZE = 32
_TABLE_CACHE = LRUCache(TABLE_CACHE_SIZE, perf.cache_stats("lalr.tables"))

#: Opt-in on-disk cache directory (``mayac --table-cache`` or the
#: MAYA_TABLE_CACHE environment variable).  Cold-starting mayac skips
#: full LALR generation for any grammar already seen on this machine —
#: in particular the base Java grammar.
_DISK_CACHE_DIR: Optional[str] = os.environ.get("MAYA_TABLE_CACHE") or None

_SNAPSHOT_FORMAT = 1

#: Corrupt/truncated on-disk entries detected (then quarantined).
_CORRUPT_TOTAL = REGISTRY.counter(
    "maya_table_cache_corrupt_total",
    "On-disk LALR table cache entries found corrupt, quarantined, and "
    "regenerated.")

#: When set (via :func:`bypass_caches`), ``tables_for`` neither reads
#: nor writes any shared cache — the daemon's degraded single-shot
#: mode, where a poisoned shared entry must not reach the re-run.
_BYPASS = threading.local()


@contextmanager
def bypass_caches():
    """Build tables from scratch, touching no shared cache (this
    thread only)."""
    previous = getattr(_BYPASS, "active", False)
    _BYPASS.active = True
    try:
        yield
    finally:
        _BYPASS.active = previous


def enable_disk_cache(path: Optional[str]) -> None:
    """Point the persistent table cache at ``path`` (None disables)."""
    global _DISK_CACHE_DIR
    _DISK_CACHE_DIR = path


@contextmanager
def disk_cache_at(path: Optional[str]):
    """Scope the persistent table cache to ``path``, restoring the
    previous directory on exit (tests and the daemon smoke drill)."""
    previous = _DISK_CACHE_DIR
    enable_disk_cache(path)
    try:
        yield
    finally:
        enable_disk_cache(previous)


def disable_disk_cache() -> None:
    enable_disk_cache(None)


def table_cache_clear() -> None:
    """Drop all in-memory cached tables (tests and benchmarks)."""
    _TABLE_CACHE.clear()


def _disk_path(fingerprint: GrammarFingerprint) -> str:
    digest = hashlib.sha256(repr(fingerprint.key).encode()).hexdigest()
    return os.path.join(_DISK_CACHE_DIR, f"tables-{digest[:32]}.pickle")


def _quarantine(path: str) -> None:
    """Move a corrupt cache entry aside (best-effort) so the *next*
    load doesn't re-parse the same garbage, and the bad bytes stay
    available for postmortems instead of being overwritten."""
    try:
        os.replace(path, path + ".quarantine")
    except OSError:
        pass


def _disk_load(grammar: Grammar, fingerprint: GrammarFingerprint):
    if _DISK_CACHE_DIR is None:
        return None
    stats = perf.cache_stats("lalr.tables.disk")
    path = _disk_path(fingerprint)
    try:
        faults.check(faults.SITE_CACHE_LOAD)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        if faults.corrupting(faults.SITE_CACHE_LOAD):
            raise pickle.UnpicklingError("injected corrupt cache entry")
        if not isinstance(payload, dict):
            raise pickle.UnpicklingError("cache payload is not a dict")
        if (payload.get("format") != _SNAPSHOT_FORMAT
                or payload.get("key") != fingerprint.key):
            # A *stale* entry (old format, different grammar) is a
            # plain miss: well-formed, just not ours to use.
            stats.miss()
            return None
        tables = ParseTables.from_snapshot(grammar, payload["snapshot"])
    except (FileNotFoundError, faults.InjectedFault):
        # Absent entry, or an injected I/O failure: a plain miss —
        # regenerate without touching the file.
        stats.miss()
        return None
    except Exception:
        # Truncated pickle, garbage bytes, malformed snapshot: the
        # entry is *corrupt*.  Crash-safe hygiene: quarantine it, count
        # it, and fall through to regeneration — a bad cache file must
        # never take the loader (or the daemon above it) down.
        _quarantine(path)
        _CORRUPT_TOTAL.inc()
        stats.miss()
        return None
    stats.hit()
    return tables


def _disk_store(tables: ParseTables, fingerprint: GrammarFingerprint) -> None:
    if _DISK_CACHE_DIR is None:
        return
    path = _disk_path(fingerprint)
    if os.path.exists(path):
        return
    payload = {
        "format": _SNAPSHOT_FORMAT,
        "key": fingerprint.key,
        "snapshot": tables.snapshot(),
    }
    try:
        os.makedirs(_DISK_CACHE_DIR, exist_ok=True)
        scratch = f"{path}.{os.getpid()}.tmp"
        with open(scratch, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(scratch, path)  # atomic: readers never see a partial file
    except OSError:
        pass


def build_tables(grammar: Grammar) -> ParseTables:
    """Build tables without caching (used by generator benchmarks)."""
    return ParseTables(grammar)


def tables_for(grammar: Grammar) -> ParseTables:
    """Build or fetch cached tables for the grammar's current state.

    The fingerprint is O(1) (version-cached on the grammar) and hashes
    in O(1), so the cached-lookup path does constant work regardless of
    grammar size.  Keying by *content* rather than grammar identity
    means every CompileEnv sharing the base grammar shares one table
    set.
    """
    if getattr(_BYPASS, "active", False):
        return ParseTables(grammar)
    fingerprint = grammar.fingerprint()
    tables = _TABLE_CACHE.get(fingerprint)
    if tables is None:
        tables = _disk_load(grammar, fingerprint)
        if tables is None:
            with perf.phase("lalr.generate"):
                tables = ParseTables(grammar)
            _disk_store(tables, fingerprint)
        _TABLE_CACHE.put(fingerprint, tables)
    return tables
