"""LALR(1) lookahead computation and parse-table construction.

Lookaheads are computed with the spontaneous-generation/propagation
algorithm (Aho et al. 4.7.4).  Conflicts are resolved only through
declared operator precedence; anything left over raises ConflictError —
Maya's generator "rejects grammars that contain unresolved LALR(1)
conflicts" instead of applying YACC's default resolutions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.grammar import Assoc, Grammar, Production
from repro.lalr.automaton import DOT_STRIDE, Automaton, item, item_parts
from repro.lalr.encoded import EOF, PROBE, EncodedGrammar


class ConflictError(Exception):
    """The grammar has LALR(1) conflicts not resolved by precedence."""

    def __init__(self, conflicts: List[str]):
        self.conflicts = conflicts
        preview = "\n  ".join(conflicts[:12])
        extra = "" if len(conflicts) <= 12 else f"\n  ... {len(conflicts) - 12} more"
        super().__init__(f"unresolved LALR(1) conflicts:\n  {preview}{extra}")


# Action encodings.
SHIFT = "s"
REDUCE = "r"
ACCEPT = "a"


class ParseTables:
    """Generated ACTION/GOTO tables plus grammar metadata."""

    def __init__(self, grammar: Grammar):
        self.grammar = grammar
        self.encoded = EncodedGrammar(grammar)
        self.automaton = Automaton(self.encoded)
        self.action: List[Dict[int, Tuple[str, int]]] = []
        self.goto: List[Dict[int, int]] = []
        self._build()

    # -- public API --------------------------------------------------------

    def symbol_id(self, name: str) -> Optional[int]:
        return self.encoded.symbol_ids.get(name)

    def start_state(self, nt_name: str) -> int:
        sym = self.encoded.symbol_ids.get(nt_name)
        if sym is None or sym not in self.automaton.start_state:
            raise KeyError(f"{nt_name} is not a declared start symbol")
        return self.automaton.start_state[sym]

    def eof_id(self, nt_name: str) -> int:
        sym = self.encoded.symbol_ids.get(nt_name)
        if sym is None or sym not in self.encoded.start_eof:
            raise KeyError(f"{nt_name} is not a declared start symbol")
        return self.encoded.start_eof[sym]

    def production(self, prod_index: int) -> Production:
        return self.encoded.production_objects[prod_index]

    def expected_terminals(self, state: int) -> List[str]:
        return sorted(
            self.encoded.name(t)
            for t in self.action[state]
            if t != PROBE and not self.encoded.name(t).startswith("$eof")
        )

    def has_goto(self, state: int, sym_id: int) -> bool:
        return sym_id in self.goto[state]

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        lookaheads = self._compute_lookaheads()
        encoded = self.encoded
        automaton = self.automaton
        productions = encoded.productions
        conflicts: List[str] = []

        start_prods = set(encoded.start_production.values())

        for state, kernel in enumerate(automaton.states):
            actions: Dict[int, Tuple[str, int]] = {}
            gotos: Dict[int, int] = {}
            for symbol, target in automaton.transitions[state].items():
                if encoded.is_terminal[symbol]:
                    actions[symbol] = (SHIFT, target)
                else:
                    gotos[symbol] = target

            kernel_las = {
                k: set(lookaheads.get((state, k), ())) for k in kernel
            }
            full = self._lr1_closure(kernel_las)
            for encoded_item, las in full.items():
                prod_index, dot = item_parts(encoded_item)
                _, rhs = productions[prod_index]
                if dot != len(rhs):
                    continue
                if prod_index in start_prods:
                    eof_id = self.encoded.eof_of_production[prod_index]
                    actions[eof_id] = (ACCEPT, prod_index)
                    continue
                for la in las:
                    if la == PROBE:
                        continue
                    self._add_reduce(state, actions, la, prod_index, conflicts)
            self.action.append(actions)
            self.goto.append(gotos)

        if conflicts:
            raise ConflictError(conflicts)

    def _add_reduce(
        self,
        state: int,
        actions: Dict[int, Tuple[str, int]],
        la: int,
        prod_index: int,
        conflicts: List[str],
    ) -> None:
        existing = actions.get(la)
        if existing is None:
            actions[la] = (REDUCE, prod_index)
            return
        kind, value = existing
        la_name = self.encoded.name(la)
        production = self.encoded.production_objects[prod_index]
        if kind == REDUCE:
            if value == prod_index:
                return
            other = self.encoded.production_objects[value]
            conflicts.append(
                f"reduce/reduce on {la_name!r} in state {state}: "
                f"[{production}] vs [{other}]"
            )
            return
        if kind in (SHIFT, ACCEPT):
            resolution = self._resolve_shift_reduce(la, production)
            if resolution == "shift":
                return  # keep the shift
            if resolution == "reduce":
                actions[la] = (REDUCE, prod_index)
                return
            if resolution == "error":
                del actions[la]
                return
            conflicts.append(
                f"shift/reduce on {la_name!r} in state {state}: "
                f"shift vs [{production}]"
            )

    def _resolve_shift_reduce(self, la: int, production: Production) -> Optional[str]:
        """Resolve via precedence; None when no declarations apply."""
        term_prec = self.grammar.precedence.lookup(self.encoded.name(la))
        prod_prec = self.grammar.production_prec(production)
        if term_prec is None or prod_prec is None:
            return None
        if prod_prec[0] > term_prec[0]:
            return "reduce"
        if prod_prec[0] < term_prec[0]:
            return "shift"
        assoc = prod_prec[1]
        if assoc == Assoc.LEFT:
            return "reduce"
        if assoc == Assoc.RIGHT:
            return "shift"
        return "error"

    # -- lookaheads -----------------------------------------------------------

    def _lr1_closure(
        self, seed: Dict[int, Set[int]]
    ) -> Dict[int, Set[int]]:
        """LR(1) closure of items with lookahead sets (PROBE allowed)."""
        encoded = self.encoded
        productions = encoded.productions
        items: Dict[int, Set[int]] = {k: set(v) for k, v in seed.items()}
        worklist: List[Tuple[int, int]] = [
            (k, la) for k, las in seed.items() for la in las
        ]
        while worklist:
            encoded_item, la = worklist.pop()
            prod_index, dot = item_parts(encoded_item)
            _, rhs = productions[prod_index]
            if dot >= len(rhs):
                continue
            symbol = rhs[dot]
            if encoded.is_terminal[symbol]:
                continue
            firsts, nullable = encoded.first_of_suffix(prod_index, dot + 1)
            new_las = set(firsts)
            if nullable:
                new_las.add(la)
            for next_prod in encoded.by_lhs.get(symbol, ()):
                target = item(next_prod, 0)
                existing = items.setdefault(target, set())
                for new_la in new_las:
                    if new_la not in existing:
                        existing.add(new_la)
                        worklist.append((target, new_la))
        return items

    def _compute_lookaheads(self) -> Dict[Tuple[int, int], Set[int]]:
        """Kernel-item lookaheads via spontaneous generation + propagation."""
        automaton = self.automaton
        encoded = self.encoded
        productions = encoded.productions

        lookaheads: Dict[Tuple[int, int], Set[int]] = {}
        propagations: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}

        for start_sym, prod_index in encoded.start_production.items():
            state = automaton.start_state[start_sym]
            lookaheads.setdefault((state, item(prod_index, 0)), set()).add(
                encoded.start_eof[start_sym]
            )

        for state, kernel in enumerate(automaton.states):
            transitions = automaton.transitions[state]
            for kernel_item in kernel:
                probe = self._lr1_closure({kernel_item: {PROBE}})
                for encoded_item, las in probe.items():
                    prod_index, dot = item_parts(encoded_item)
                    _, rhs = productions[prod_index]
                    if dot >= len(rhs):
                        continue
                    target_state = transitions[rhs[dot]]
                    target_key = (target_state, encoded_item + 1)
                    for la in las:
                        if la == PROBE:
                            propagations.setdefault(
                                (state, kernel_item), []
                            ).append(target_key)
                        else:
                            lookaheads.setdefault(target_key, set()).add(la)

        # Deduplicate propagation targets.
        for key, targets in propagations.items():
            propagations[key] = list(dict.fromkeys(targets))

        # Fixpoint propagation.
        worklist = list(lookaheads.keys())
        while worklist:
            source = worklist.pop()
            source_las = lookaheads.get(source)
            if not source_las:
                continue
            for target in propagations.get(source, ()):
                target_las = lookaheads.setdefault(target, set())
                before = len(target_las)
                target_las.update(source_las)
                if len(target_las) != before:
                    worklist.append(target)
        return lookaheads


_TABLE_CACHE: Dict[Tuple, ParseTables] = {}


def build_tables(grammar: Grammar) -> ParseTables:
    """Build tables without caching (used by generator benchmarks)."""
    return ParseTables(grammar)


def tables_for(grammar: Grammar) -> ParseTables:
    """Build or fetch cached tables for the grammar's current state."""
    key = grammar.fingerprint()
    tables = _TABLE_CACHE.get(key)
    if tables is None:
        tables = ParseTables(grammar)
        _TABLE_CACHE[key] = tables
    return tables
