"""The LALR(1) parse driver.

The driver consumes token-tree tokens (tree tokens are single
terminals).  On every reduction it hands the production and its
semantic values to the ParserContext, which for node-type productions
runs the Mayan dispatcher — "on each reduction, the dispatcher executes
the appropriate Mayan to build an AST node" (paper figure 4).

``allow_prefix`` parsing accepts the longest valid prefix and reports
how many tokens were consumed.  The block/member drivers use it to
parse one statement or declaration at a time, which is what lets a
``use`` directive extend the grammar for the *following* syntax.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.diag import Diagnostic, DiagnosticError, SourceSpan
from repro.grammar import Production
from repro.lexer import Location, Token
from repro.lalr.tables import ACCEPT, REDUCE, SHIFT, ParseTables


class ParseError(DiagnosticError):
    """A syntax error with location and expectation info."""

    phase = "parse"

    def __init__(self, message: str, location: Location, expected: Sequence[str] = ()):
        self.location = location
        self.expected = list(expected)
        detail = f"{location}: {message}"
        if expected:
            shown = ", ".join(self.expected[:10])
            detail += f" (expected one of: {shown})"
        super().__init__(detail)
        diagnostic = Diagnostic(
            message, phase="parse",
            span=SourceSpan.from_location(location), cause=self,
        )
        if self.expected:
            diagnostic.with_note(
                "expected one of: " + ", ".join(self.expected[:10])
            )
        self.diagnostic = diagnostic


class ParserContext:
    """Host services the parser needs on reductions and subtrees."""

    def reduce(self, production: Production, values: List[object], location: Location):
        raise NotImplementedError

    def parse_subtree(self, tree: Token, content_symbol) -> object:
        raise NotImplementedError

    def lazy_subtree(self, tree: Token, content_symbol) -> object:
        raise NotImplementedError


class Parser:
    """A single-use LALR(1) parse driver."""

    def __init__(self, tables: ParseTables, context: ParserContext):
        self.tables = tables
        self.context = context

    def parse(
        self,
        start: str,
        tokens: Sequence[Token],
        allow_prefix: bool = False,
        offset: int = 0,
    ) -> Tuple[object, int]:
        """Parse ``tokens[offset:]`` starting at nonterminal ``start``.

        Returns (semantic value, index one past the last consumed
        token).  Unless ``allow_prefix`` is set, all tokens must be
        consumed.
        """
        tables = self.tables
        action_table = tables.action
        eof = tables.eof_id(start)
        state_stack: List[int] = [tables.start_state(start)]
        value_stack: List[object] = []
        location_stack: List[Location] = []

        position = offset
        length = len(tokens)

        while True:
            if position < length:
                token = tokens[position]
                terminal = tables.symbol_id(token.kind)
                location = token.location
            else:
                token = None
                terminal = eof
                location = tokens[-1].location if tokens else Location.UNKNOWN

            state = state_stack[-1]
            entry = None
            if token is not None and token.kind == "Identifier":
                # Token-literal terminals (paper 4.1: production arguments
                # may be token literals such as ``typedef``): prefer an
                # action on the spelling-specific terminal when this
                # state has one.
                specific = tables.symbol_id(token.text)
                if specific is not None and tables.encoded.is_terminal[specific]:
                    entry = action_table[state].get(specific)
            if entry is None and terminal is not None:
                entry = action_table[state].get(terminal)

            if entry is None and (allow_prefix or terminal is None):
                # Try to finish the parse as if at end of input.
                finished = self._try_finish(
                    eof, state_stack, value_stack, location_stack, location
                )
                if finished is not None:
                    if not allow_prefix and position < length:
                        raise ParseError(
                            f"unexpected {describe_token(token)} after "
                            f"complete {start}",
                            location,
                        )
                    return finished, position
                entry = None  # fall through to error

            if entry is None:
                raise ParseError(
                    f"unexpected {describe_token(token)} while parsing {start}",
                    location,
                    tables.expected_terminals(state),
                )

            kind, value = entry
            if kind == SHIFT:
                state_stack.append(value)
                value_stack.append(token)
                location_stack.append(location)
                position += 1
            elif kind == REDUCE:
                self._apply_reduce(
                    value, state_stack, value_stack, location_stack, location
                )
            else:  # ACCEPT — only reachable via EOF terminal
                return value_stack[-1], position

    # -- internals -----------------------------------------------------------

    def _apply_reduce(
        self,
        prod_index: int,
        state_stack: List[int],
        value_stack: List[object],
        location_stack: List[Location],
        lookahead_location: Location,
    ) -> None:
        tables = self.tables
        lhs_id, rhs = tables.encoded.productions[prod_index]
        production = tables.encoded.production_objects[prod_index]
        count = len(rhs)
        if count:
            values = value_stack[-count:]
            location = location_stack[-count]
            del state_stack[-count:]
            del value_stack[-count:]
            del location_stack[-count:]
        else:
            values = []
            location = lookahead_location

        if production.internal:
            result = production.action(self.context, values)
        else:
            result = self.context.reduce(production, values, location)

        state = state_stack[-1]
        target = tables.goto[state].get(lhs_id)
        if target is None:  # pragma: no cover - table construction guarantees this
            raise ParseError(
                f"internal error: no goto for {production.lhs.name}", location
            )
        state_stack.append(target)
        value_stack.append(result)
        location_stack.append(location)

    def _try_finish(
        self,
        eof: int,
        state_stack: List[int],
        value_stack: List[object],
        location_stack: List[Location],
        location: Location,
    ) -> Optional[object]:
        """Run EOF actions to completion; None when the parse can't end here.

        Works on copies (swapped back in on success) so a failed attempt
        leaves the caller able to raise a precise error.
        """
        tables = self.tables
        states = list(state_stack)
        values = list(value_stack)
        locations = list(location_stack)
        while True:
            entry = tables.action[states[-1]].get(eof)
            if entry is None:
                return None
            kind, value = entry
            if kind == ACCEPT:
                state_stack[:] = states
                value_stack[:] = values
                location_stack[:] = locations
                return values[-1]
            if kind != REDUCE:
                return None
            self._reduce_on(value, states, values, locations, location)

    def _reduce_on(
        self,
        prod_index: int,
        states: List[int],
        values: List[object],
        locations: List[Location],
        lookahead_location: Location,
    ) -> None:
        tables = self.tables
        lhs_id, rhs = tables.encoded.productions[prod_index]
        production = tables.encoded.production_objects[prod_index]
        count = len(rhs)
        if count:
            handle = values[-count:]
            location = locations[-count]
            del states[-count:]
            del values[-count:]
            del locations[-count:]
        else:
            handle = []
            location = lookahead_location
        if production.internal:
            result = production.action(self.context, handle)
        else:
            result = self.context.reduce(production, handle, location)
        states.append(tables.goto[states[-1]][lhs_id])
        values.append(result)
        locations.append(location)


def describe_token(token: Optional[Token]) -> str:
    if token is None:
        return "end of input"
    if token.is_tree:
        return f"{token.kind} {token.source_text()[:40]!r}"
    return f"{token.kind} {token.text!r}"
