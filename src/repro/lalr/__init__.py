"""LALR(1) parser generation and the parse driver.

The generator follows the textbook construction (Aho et al., which the
paper also cites for its pattern-parsing description): LR(0) automaton,
LALR(1) lookaheads by spontaneous generation and propagation, and a
parse table that rejects unresolved conflicts rather than resolving
them YACC-style (paper section 4.1).
"""

from repro.lalr.tables import (
    ConflictError,
    ParseTables,
    build_tables,
    tables_for,
)
from repro.lalr.parser import ParseError, Parser, ParserContext

__all__ = [
    "ConflictError",
    "ParseError",
    "ParseTables",
    "Parser",
    "ParserContext",
    "build_tables",
    "tables_for",
]
