"""LR(0) automaton construction."""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.lalr.encoded import EncodedGrammar

# An item is prod_index * DOT_STRIDE + dot.
DOT_STRIDE = 64


def item(prod_index: int, dot: int) -> int:
    return prod_index * DOT_STRIDE + dot


def item_parts(encoded_item: int) -> Tuple[int, int]:
    return divmod(encoded_item, DOT_STRIDE)


class Automaton:
    """The LR(0) automaton: kernel item sets and transitions."""

    def __init__(self, grammar: EncodedGrammar):
        self.grammar = grammar
        self.states: List[FrozenSet[int]] = []
        self.transitions: List[Dict[int, int]] = []
        self.start_state: Dict[int, int] = {}
        self._closure_cache: Dict[FrozenSet[int], FrozenSet[int]] = {}
        self._build()

    # -- closure ---------------------------------------------------------

    def closure(self, kernel: FrozenSet[int]) -> FrozenSet[int]:
        cached = self._closure_cache.get(kernel)
        if cached is not None:
            return cached
        grammar = self.grammar
        productions = grammar.productions
        out: Set[int] = set(kernel)
        stack = list(kernel)
        seen_nt: Set[int] = set()
        while stack:
            encoded = stack.pop()
            prod_index, dot = item_parts(encoded)
            _, rhs = productions[prod_index]
            if dot >= len(rhs):
                continue
            symbol = rhs[dot]
            if grammar.is_terminal[symbol] or symbol in seen_nt:
                continue
            seen_nt.add(symbol)
            for next_prod in grammar.by_lhs.get(symbol, ()):
                new_item = item(next_prod, 0)
                if new_item not in out:
                    out.add(new_item)
                    stack.append(new_item)
        result = frozenset(out)
        self._closure_cache[kernel] = result
        return result

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        grammar = self.grammar
        productions = grammar.productions
        index_of: Dict[FrozenSet[int], int] = {}

        def intern_state(kernel: FrozenSet[int]) -> int:
            state = index_of.get(kernel)
            if state is None:
                state = len(self.states)
                index_of[kernel] = state
                self.states.append(kernel)
                self.transitions.append({})
                worklist.append(state)
            return state

        worklist: List[int] = []
        for start_sym, prod_index in grammar.start_production.items():
            kernel = frozenset([item(prod_index, 0)])
            self.start_state[start_sym] = intern_state(kernel)

        position = 0
        while position < len(worklist):
            state = worklist[position]
            position += 1
            full = self.closure(self.states[state])
            moves: Dict[int, Set[int]] = {}
            for encoded in full:
                prod_index, dot = item_parts(encoded)
                _, rhs = productions[prod_index]
                if dot < len(rhs):
                    moves.setdefault(rhs[dot], set()).add(encoded + 1)
            for symbol, kernel in moves.items():
                self.transitions[state][symbol] = intern_state(frozenset(kernel))
