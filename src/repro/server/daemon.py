"""mayad: the compile daemon.

One process, many tenants.  The daemon amortizes everything expensive
— the base-grammar singleton, LALR table generation (the process-wide
fingerprint-keyed cache), compiled-artifact payloads — while keeping
everything *mutable* strictly per-request: each compile gets a fresh
:class:`CompileEnv` (own grammar copy, type registry, dispatcher,
diagnostic engine), so one tenant's ``use``/``syntax`` extensions can
never leak into another's parse.

Robustness model (each arrow is a tested degradation, never a dead
daemon):

* **admission control** — a bounded queue; when it is full the request
  is shed *immediately* with a structured ``overloaded`` response and
  a retry hint, instead of joining an unbounded latency tail;
* **deadlines** — every request carries a wall-clock budget that
  composes with the per-compile fuel/step budgets
  (``DiagnosticEngine.deadline``): the connection handler stops
  waiting at the deadline, and the compile itself trips cooperatively
  at the next Mayan activation or member boundary;
* **crash containment** — a request that kills its worker
  (:class:`repro.faults.WorkerCrash`, or any escaped non-diagnostic
  error) is quarantined and re-run **once** on a fresh thread in
  degraded single-shot mode (fresh env, shared caches bypassed); only
  if that also dies is ``worker-crashed`` reported.  The pool replaces
  the dead worker either way;
* **hang containment** — a worker still busy past its request's
  deadline is marked a zombie (it exits after its current request) and
  replaced, so capacity cannot wedge behind a hung compile;
* **cache hygiene** — shared caches hand off immutable epoch-stamped
  snapshots (:mod:`repro.server.state`); corrupt on-disk table-cache
  entries are quarantined and regenerated (:mod:`repro.lalr.tables`),
  and the workers' shared on-disk pycode codegen cache applies the
  same quarantine-on-corrupt ladder (:mod:`repro.interp.pycodegen`).

Compile requests may also carry a ``run`` option naming a class whose
``main()`` is interpreted in the worker after a successful compile
(pycode backend by default, so repeat runs across workers reuse the
shared codegen cache); captured output rides back on the response.
"""

from __future__ import annotations

import itertools
import os
import queue as queue_mod
import socket
import threading
import time
from typing import List, Optional

from repro import faults
from repro.core.env import CompileEnv
from repro.diag import CompileFailed, DeadlineExceededError, DiagnosticError
from repro.lalr import tables as lalr_tables
from repro.obs import export as obs_export
from repro.obs.metrics import REGISTRY
from repro.server import protocol, state
from repro.server.protocol import (
    STATUS_BAD_REQUEST,
    STATUS_COMPILE_ERROR,
    STATUS_DEADLINE,
    STATUS_INTERNAL,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_SHUTTING_DOWN,
    STATUS_WORKER_CRASHED,
    error_response,
)

REQUESTS = REGISTRY.counter(
    "maya_server_requests_total", "Requests by operation and outcome.",
    labelnames=("op", "status"))
QUEUE_DEPTH = REGISTRY.gauge(
    "maya_server_queue_depth", "Compile requests queued right now.")
SHED = REGISTRY.counter(
    "maya_server_shed_total", "Requests rejected by admission control.")
DEADLINES = REGISTRY.counter(
    "maya_server_deadline_total", "Requests that hit their deadline.")
CRASHES = REGISTRY.counter(
    "maya_server_worker_crashes_total", "Worker crashes by containment "
    "outcome.", labelnames=("outcome",))
WORKERS = REGISTRY.gauge(
    "maya_server_workers", "Live (non-zombie) worker threads.")
REPLACED = REGISTRY.counter(
    "maya_server_workers_replaced_total",
    "Workers replaced after a crash or hang.")
DISCONNECTS = REGISTRY.counter(
    "maya_server_client_disconnects_total",
    "Connections dropped mid-conversation by the client.")
REQUEST_MS = REGISTRY.histogram(
    "maya_server_request_ms", "End-to-end compile request latency (ms).",
    bounds=(1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000))

_STOP = object()


class DaemonConfig:
    """Tunables for one :class:`MayaDaemon`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 socket_path: Optional[str] = None, workers: int = 4,
                 queue_size: int = 16, default_deadline_s: float = 30.0,
                 max_deadline_s: float = 120.0, fuel_cap: int = 1024,
                 max_errors_cap: int = 200,
                 artifact_cache_size: int = 256, prewarm: bool = True,
                 codegen_cache_dir: Optional[str] = None,
                 module_cache_dir: Optional[str] = None):
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.workers = max(1, workers)
        self.queue_size = max(1, queue_size)
        self.default_deadline_s = default_deadline_s
        self.max_deadline_s = max_deadline_s
        self.fuel_cap = fuel_cap
        self.max_errors_cap = max_errors_cap
        self.artifact_cache_size = artifact_cache_size
        self.prewarm = prewarm
        #: Every worker links generated pycode plans through this shared
        #: on-disk cache (same quarantine-on-corrupt discipline as the
        #: LALR table cache); defaults to MAYA_CODEGEN_CACHE.
        self.codegen_cache_dir = (codegen_cache_dir
                                  or os.environ.get("MAYA_CODEGEN_CACHE")
                                  or None)
        #: Workers share the incremental module cache the same way:
        #: multi-file compile requests reuse any module whose transitive
        #: fingerprint matches, whichever worker built it last.
        self.module_cache_dir = (module_cache_dir
                                 or os.environ.get("MAYA_MODULE_CACHE")
                                 or None)


class _Request:
    """One queued compile: payload plus its result future."""

    __slots__ = ("payload", "options", "received", "deadline", "done",
                 "response", "abandoned", "worker", "degraded", "_lock")

    def __init__(self, payload: dict, deadline: float):
        self.payload = payload
        self.options = payload.get("options") or {}
        self.received = time.monotonic()
        self.deadline = deadline
        self.done = threading.Event()
        self.response: Optional[dict] = None
        self.abandoned = False
        self.worker: Optional["_Worker"] = None
        self.degraded = False
        self._lock = threading.Lock()

    def resolve(self, response: dict) -> bool:
        """First writer wins; later resolutions (a zombie worker
        finishing after the handler timed out) are dropped."""
        with self._lock:
            if self.response is not None:
                return False
            self.response = response
        self.done.set()
        return True


class _Worker:
    __slots__ = ("thread", "current", "zombie", "name")

    def __init__(self, name: str):
        self.name = name
        self.thread: Optional[threading.Thread] = None
        self.current: Optional[_Request] = None
        self.zombie = False


class MayaDaemon:
    """The compile service: listener, admission queue, worker pool."""

    def __init__(self, config: Optional[DaemonConfig] = None):
        self.config = config or DaemonConfig()
        self.artifacts = state.ArtifactCache(self.config.artifact_cache_size)
        self._queue: "queue_mod.Queue" = queue_mod.Queue(
            self.config.queue_size)
        self._workers: List[_Worker] = []
        self._pool_lock = threading.Lock()
        self._worker_seq = itertools.count(1)
        self._request_seq = itertools.count(1)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._running = False
        self._started_at = 0.0
        self.prewarm_s = 0.0

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> str:
        if self.config.socket_path:
            return self.config.socket_path
        host, port = self._listener.getsockname()[:2]
        return f"{host}:{port}"

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "MayaDaemon":
        if self.config.socket_path:
            self._listener = socket.socket(socket.AF_UNIX,
                                           socket.SOCK_STREAM)
            self._listener.bind(self.config.socket_path)
        else:
            self._listener = socket.socket(socket.AF_INET,
                                           socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET,
                                      socket.SO_REUSEADDR, 1)
            self._listener.bind((self.config.host, self.config.port))
        self._listener.listen(64)
        self._running = True
        self._started_at = time.monotonic()
        if self.config.codegen_cache_dir:
            from repro.interp import pycodegen

            pycodegen.enable_codegen_cache(self.config.codegen_cache_dir)
        if self.config.prewarm:
            self.prewarm_s = state.prewarm()
        with self._pool_lock:
            for _ in range(self.config.workers):
                self._spawn_worker_locked()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="mayad-accept", daemon=True)
        self._accept_thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful stop: refuse new work, drain workers, close."""
        if not self._running:
            return
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        with self._pool_lock:
            workers = list(self._workers)
        # Wake the workers without ever blocking: the admission queue
        # may be full behind hung workers (exactly the fault-drill
        # scenario), and a blocking put would wedge graceful stop.
        # Drain queued requests with a shutting-down answer, then hand
        # out sentinels best-effort — workers also poll the running
        # flag, so a lost sentinel only costs one poll interval.
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue_mod.Empty:
                break
            if pending is _STOP:
                continue
            QUEUE_DEPTH.dec()
            pending.resolve(error_response(STATUS_SHUTTING_DOWN,
                                           "daemon is shutting down"))
        for _ in workers:
            try:
                self._queue.put_nowait(_STOP)
            except queue_mod.Full:
                break
        deadline = time.monotonic() + timeout
        for worker in workers:
            remaining = max(0.0, deadline - time.monotonic())
            if worker.thread is not None:
                worker.thread.join(remaining)
        if self.config.socket_path:
            import os

            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass

    # -- listener ----------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            threading.Thread(target=self._handle_connection, args=(conn,),
                             name="mayad-conn", daemon=True).start()

    def _handle_connection(self, conn: socket.socket) -> None:
        shutdown_after = False
        try:
            while True:
                request = protocol.recv_frame(conn)
                if request is None:
                    return  # clean EOF
                response = self._dispatch(request)
                protocol.send_frame(conn, response)
                if request.get("op") == "shutdown" \
                        and response.get("status") == STATUS_OK:
                    shutdown_after = True
                    return
        except protocol.ProtocolError as error:
            # Malformed frame or the client vanished mid-frame: answer
            # if the socket still works, then drop the connection.
            DISCONNECTS.inc()
            try:
                protocol.send_frame(
                    conn, error_response(STATUS_BAD_REQUEST, str(error)))
            except (OSError, protocol.ProtocolError):
                pass
        except (ConnectionError, OSError, faults.InjectedFault):
            # The client vanished — or a socket-site fault fired.  Either
            # way only this connection dies, never the daemon.
            DISCONNECTS.inc()
        finally:
            try:
                conn.close()
            except OSError:
                pass
            if shutdown_after:
                self.stop()

    # -- request dispatch --------------------------------------------------

    def _dispatch(self, request: dict) -> dict:
        op = str(request.get("op", ""))
        if op == "ping":
            REQUESTS.labels(op="ping", status=STATUS_OK).inc()
            return self._ping_response()
        if op == "metrics":
            REQUESTS.labels(op="metrics", status=STATUS_OK).inc()
            return {"protocol": protocol.PROTOCOL_VERSION,
                    "status": STATUS_OK,
                    "metrics": obs_export.to_json(REGISTRY)}
        if op == "shutdown":
            REQUESTS.labels(op="shutdown", status=STATUS_OK).inc()
            return {"protocol": protocol.PROTOCOL_VERSION,
                    "status": STATUS_OK, "stopping": True}
        if op == "compile":
            response = self._handle_compile(request)
            REQUESTS.labels(op="compile",
                            status=str(response.get("status"))).inc()
            return response
        REQUESTS.labels(op=op or "<missing>",
                        status=STATUS_BAD_REQUEST).inc()
        return error_response(STATUS_BAD_REQUEST, f"unknown op {op!r}")

    def _ping_response(self) -> dict:
        with self._pool_lock:
            live = sum(1 for w in self._workers if not w.zombie)
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "status": STATUS_OK,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "workers": live,
            "queue_depth": self._queue.qsize(),
            "artifact_epoch": self.artifacts.epoch,
            "faults": faults.active_plan().spec,
        }

    # -- compile path ------------------------------------------------------

    def _handle_compile(self, payload: dict) -> dict:
        source = payload.get("source")
        sources = payload.get("sources")
        roots = payload.get("roots")
        filename = payload.get("filename") or "<daemon>"
        if sources is not None:
            # Multi-file request: every module's source rides in the
            # payload, plus the root module names to build from.
            if (not isinstance(sources, dict) or not sources
                    or not all(isinstance(k, str) and isinstance(v, str)
                               for k, v in sources.items())):
                return error_response(
                    STATUS_BAD_REQUEST,
                    "'sources' must be a non-empty object of "
                    "module name -> source text")
            if (not isinstance(roots, list) or not roots
                    or not all(isinstance(r, str) for r in roots)):
                return error_response(
                    STATUS_BAD_REQUEST,
                    "multi-file compile requests need a 'roots' list "
                    "of module names")
            # One canonical string stands in for 'the source' so the
            # artifact cache stays content-addressed for module jobs.
            import json as _json

            source = _json.dumps({"roots": roots, "sources": sources},
                                 sort_keys=True)
            filename = "<modules>"
        elif not isinstance(source, str):
            return error_response(STATUS_BAD_REQUEST,
                                  "compile request needs a string 'source'")
        if not self._running:
            return error_response(STATUS_SHUTTING_DOWN,
                                  "daemon is shutting down")

        options = payload.get("options") or {}
        if not isinstance(options, dict):
            return error_response(STATUS_BAD_REQUEST,
                                  "'options' must be an object")
        deadline_s = options.get("deadline_ms")
        try:
            deadline_s = (float(deadline_s) / 1000.0
                          if deadline_s is not None
                          else self.config.default_deadline_s)
        except (TypeError, ValueError):
            return error_response(STATUS_BAD_REQUEST,
                                  "'deadline_ms' must be a number")
        deadline_s = min(max(deadline_s, 0.001), self.config.max_deadline_s)
        started = time.monotonic()
        request = _Request(payload, deadline=started + deadline_s)

        # Content-addressed artifact cache: a hit skips the queue
        # entirely (the cached response *is* the right answer).
        key = None
        if options.get("cache", True):
            key = state.artifact_key(source, filename, options)
            cached = self.artifacts.lookup(key)
            if cached is not None:
                cached["stats"] = {"cached": True, "wait_ms": 0.0}
                REQUEST_MS.observe((time.monotonic() - started) * 1000.0)
                return cached

        # Admission control: a full queue sheds *now*, with a hint.
        try:
            self._queue.put_nowait(request)
        except queue_mod.Full:
            SHED.inc()
            return error_response(
                STATUS_OVERLOADED,
                f"compile queue is full ({self.config.queue_size} deep); "
                f"retry with backoff",
                queue_depth=self.config.queue_size,
                retry_after_ms=50)
        QUEUE_DEPTH.inc()

        finished = request.done.wait(max(0.0, request.deadline
                                         - time.monotonic()) + 0.05)
        if not finished:
            request.abandoned = True
            DEADLINES.inc()
            self._contain_overdue(request)
            return error_response(
                STATUS_DEADLINE,
                f"request exceeded its {deadline_s * 1000:.0f}ms deadline",
                deadline_ms=deadline_s * 1000.0)
        response = request.response
        elapsed_ms = (time.monotonic() - started) * 1000.0
        REQUEST_MS.observe(elapsed_ms)
        if response.get("status") == STATUS_DEADLINE:
            # Cooperative trip inside the grace window (the abandoned
            # path above counted its own).
            DEADLINES.inc()
        if key is not None and response.get("status") in (
                STATUS_OK, STATUS_COMPILE_ERROR):
            # Deadline responses never reach the artifact cache: the
            # key excludes deadline_ms, so caching one would serve
            # 'deadline exceeded' to later, amply-budgeted requests.
            self.artifacts.store(key, response)
        stats = response.setdefault("stats", {})
        stats["total_ms"] = round(elapsed_ms, 3)
        return response

    def _execute(self, request: _Request, degraded: bool = False) -> dict:
        """Run one compile in a fresh, isolated environment."""
        payload = request.payload
        options = request.options
        fuel = _bounded_int(options.get("fuel"), self.config.fuel_cap)
        max_errors = _bounded_int(options.get("max_errors"),
                                  self.config.max_errors_cap)
        env = CompileEnv.fresh_session(fuel=fuel, max_errors=max_errors,
                                       deadline=request.deadline)
        engine = env.diag
        started = time.perf_counter()
        try:
            from repro import MayaCompiler
            from repro.macros import install_macro_library

            compiler = MayaCompiler(env)
            if not options.get("no_macros"):
                install_macro_library(compiler)
            if options.get("multijava"):
                from repro.multijava import install_multijava

                install_multijava(compiler)
            for name in options.get("use") or ():
                compiler.use(str(name))
            faults.check(faults.SITE_WORKER_EXECUTE)
            modules_result = None
            if payload.get("sources") is not None:
                builder = self._module_builder(payload, options, env,
                                               degraded)
                # The builder's compiler shares env (and therefore the
                # metaprogram namespace installed above).
                if degraded:
                    with lalr_tables.bypass_caches():
                        modules_result = builder.build(
                            payload["roots"],
                            need_bodies=bool(options.get("run")))
                else:
                    modules_result = builder.build(
                        payload["roots"],
                        need_bodies=bool(options.get("run")))
                program = modules_result.program
            elif degraded:
                # Single-shot mode: a poisoned shared cache must not be
                # able to kill the rerun too.
                with lalr_tables.bypass_caches():
                    program = compiler.compile(
                        source=payload["source"],
                        filename=payload.get("filename") or "<daemon>")
            else:
                program = compiler.compile(
                    source=payload["source"],
                    filename=payload.get("filename") or "<daemon>")
        except DeadlineExceededError:
            # A cooperative deadline trip is a service condition, not a
            # source error: report STATUS_DEADLINE so clients can tell
            # a timeout from a bad program (and the handler never
            # caches it under a deadline-blind artifact key).
            return self._deadline_response(request)
        except CompileFailed as failure:
            if any(isinstance(diag.cause, DeadlineExceededError)
                   for diag in failure.diagnostics):
                # Per-member recovery absorbed the trip mid-run: the
                # diagnostics are truncated by timing, so this is a
                # deadline outcome too.
                return self._deadline_response(request)
            return self._compile_error(engine, failure.diagnostics)
        except DiagnosticError as failure:
            return self._compile_error(engine, [failure.diagnostic])
        response = {
            "protocol": protocol.PROTOCOL_VERSION,
            "status": STATUS_OK,
            "classes": sorted(program.classes),
            "stats": {"compile_ms": round(
                (time.perf_counter() - started) * 1000.0, 3)},
        }
        if degraded:
            response["degraded"] = True
        if modules_result is not None:
            response["modules"] = {
                "order": modules_result.order,
                "recompiled": modules_result.recompiled,
                "reused": modules_result.reused,
            }
        if options.get("expand"):
            response["expanded"] = modules_result.expanded() \
                if modules_result is not None \
                else program.source(provenance=bool(
                    options.get("provenance")))
        if options.get("run"):
            response["run"] = self._run_program(program, options)
        return response

    def _module_builder(self, payload: dict, options: dict,
                        env: CompileEnv, degraded: bool):
        """A ModuleBuilder for one multi-file request.  Degraded re-runs
        bypass the shared module cache (same reasoning as the LALR
        bypass: a poisoned entry must not kill the rerun)."""
        from repro.modules import MemorySources, ModuleBuilder

        build_options = {
            key: options.get(key)
            for key in ("multijava", "use", "no_macros", "provenance")
            if options.get(key)
        }
        return ModuleBuilder(
            MemorySources(payload["sources"]),
            cache_dir=None if degraded else self.config.module_cache_dir,
            options=build_options,
            env=env)

    @staticmethod
    def _run_program(program, options: dict) -> dict:
        """Interpret ``options['run']``.main() in this worker.

        Defaults to the pycode backend so repeat runs — on any worker —
        link plans out of the shared on-disk codegen cache instead of
        regenerating them.  Failures are *this request's* problem: they
        ride back under the ``run`` key, never as a compile error."""
        from repro.interp import Interpreter, JavaThrow

        cls = str(options.get("run"))
        backend = str(options.get("backend") or "pycode")
        run_started = time.perf_counter()
        try:
            interp = Interpreter(program, backend=backend)
        except Exception as error:
            return {"class": cls, "error": str(error), "output": []}
        result: dict = {"class": cls, "output": interp.output}
        try:
            value = interp.run_static(cls)
            if isinstance(value, (bool, int, float, str, type(None))):
                result["value"] = value
        except JavaThrow as thrown:
            result["error"] = str(thrown)
            result["thrown"] = thrown.value.class_type.name
        except Exception as error:
            result["error"] = str(error)
        result["run_ms"] = round(
            (time.perf_counter() - run_started) * 1000.0, 3)
        return result

    @staticmethod
    def _deadline_response(request: _Request) -> dict:
        budget_ms = (request.deadline - request.received) * 1000.0
        return error_response(
            STATUS_DEADLINE,
            f"compile tripped its {budget_ms:.0f}ms deadline mid-run "
            f"(raise deadline_ms, or simplify the expansion)",
            deadline_ms=round(budget_ms, 3))

    @staticmethod
    def _compile_error(engine, diagnostics) -> dict:
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "status": STATUS_COMPILE_ERROR,
            "diagnostics": [{
                "message": diag.message,
                "severity": diag.severity,
                "phase": diag.phase,
                "span": str(diag.span) if diag.span is not None else None,
                "rendered": engine.render(diag),
            } for diag in diagnostics],
        }

    # -- worker pool -------------------------------------------------------

    def _spawn_worker_locked(self) -> _Worker:
        worker = _Worker(f"mayad-worker-{next(self._worker_seq)}")
        worker.thread = threading.Thread(
            target=self._worker_loop, args=(worker,), name=worker.name,
            daemon=True)
        self._workers.append(worker)
        WORKERS.inc()
        worker.thread.start()
        return worker

    def _worker_loop(self, worker: _Worker) -> None:
        while True:
            try:
                request = self._queue.get(timeout=0.5)
            except queue_mod.Empty:
                # Polling backstop for stop(): its sentinels are
                # put_nowait, so a full-queue race may lose one.
                if not self._running:
                    self._retire(worker)
                    return
                continue
            if request is _STOP:
                self._retire(worker)
                return
            QUEUE_DEPTH.dec()
            if request.abandoned:
                # Expired while queued: the handler already answered.
                request.resolve(error_response(
                    STATUS_DEADLINE, "expired before a worker was free"))
                continue
            worker.current = request
            request.worker = worker
            try:
                response = self._execute(request)
            except faults.WorkerCrash:
                worker.current = None
                self._contain_crash(worker, request)
                return  # this worker is dead
            except Exception as error:
                # An escaped non-diagnostic error is a server bug, but
                # it is *this request's* problem only.
                response = error_response(
                    STATUS_INTERNAL,
                    f"{type(error).__name__}: {error}")
            worker.current = None
            request.resolve(response)
            if worker.zombie:
                self._retire(worker)
                return

    def _retire(self, worker: _Worker) -> None:
        with self._pool_lock:
            if worker in self._workers:
                self._workers.remove(worker)
                WORKERS.dec()

    def _contain_crash(self, worker: _Worker, request: _Request) -> None:
        """A worker died executing ``request``: replace the worker and
        quarantine the request for one degraded re-run."""
        self._retire(worker)
        if self._running:
            with self._pool_lock:
                self._spawn_worker_locked()
            REPLACED.inc()
        if request.degraded:
            CRASHES.labels(outcome="degraded_failed").inc()
            request.resolve(error_response(
                STATUS_WORKER_CRASHED,
                "request crashed its worker twice (original and degraded "
                "re-run); giving up"))
            return
        CRASHES.labels(outcome="contained").inc()
        request.degraded = True

        def rerun() -> None:
            try:
                response = self._execute(request, degraded=True)
            except faults.WorkerCrash:
                CRASHES.labels(outcome="degraded_failed").inc()
                response = error_response(
                    STATUS_WORKER_CRASHED,
                    "request crashed its worker twice (original and "
                    "degraded re-run); giving up")
            except Exception as error:
                response = error_response(
                    STATUS_INTERNAL,
                    f"degraded re-run failed: "
                    f"{type(error).__name__}: {error}")
            request.resolve(response)

        threading.Thread(target=rerun, name="mayad-quarantine",
                         daemon=True).start()

    def _contain_overdue(self, request: _Request) -> None:
        """The deadline passed: if a worker is still grinding on this
        request, zombie it (it exits after finishing) and backfill."""
        worker = request.worker
        if worker is None or worker.current is not request:
            return
        with self._pool_lock:
            if worker.zombie or worker not in self._workers:
                return
            worker.zombie = True
            WORKERS.dec()
            self._workers.remove(worker)
            self._spawn_worker_locked()
        REPLACED.inc()


def _bounded_int(value, cap: int) -> Optional[int]:
    if value is None:
        return None
    try:
        return max(1, min(int(value), cap))
    except (TypeError, ValueError):
        return None
