"""mayad: the compile daemon.

One process, many tenants.  The daemon amortizes everything expensive
— the base-grammar singleton, LALR table generation (the process-wide
fingerprint-keyed cache), compiled-artifact payloads — while keeping
everything *mutable* strictly per-request: each compile gets a fresh
:class:`CompileEnv` (own grammar copy, type registry, dispatcher,
diagnostic engine), so one tenant's ``use``/``syntax`` extensions can
never leak into another's parse.

Robustness model (each arrow is a tested degradation, never a dead
daemon):

* **admission control** — a bounded queue; when it is full the request
  is shed *immediately* with a structured ``overloaded`` response and
  a retry hint, instead of joining an unbounded latency tail;
* **deadlines** — every request carries a wall-clock budget that
  composes with the per-compile fuel/step budgets
  (``DiagnosticEngine.deadline``): the connection handler stops
  waiting at the deadline, and the compile itself trips cooperatively
  at the next Mayan activation or member boundary;
* **crash containment** — a request that kills its worker
  (:class:`repro.faults.WorkerCrash`, or any escaped non-diagnostic
  error) is quarantined and re-run **once** on a fresh thread in
  degraded single-shot mode (fresh env, shared caches bypassed); only
  if that also dies is ``worker-crashed`` reported.  The pool replaces
  the dead worker either way;
* **hang containment** — a worker still busy past its request's
  deadline is marked a zombie (it exits after its current request) and
  replaced, so capacity cannot wedge behind a hung compile;
* **cache hygiene** — shared caches hand off immutable epoch-stamped
  snapshots (:mod:`repro.server.state`); corrupt on-disk table-cache
  entries are quarantined and regenerated (:mod:`repro.lalr.tables`),
  and the workers' shared on-disk pycode codegen cache applies the
  same quarantine-on-corrupt ladder (:mod:`repro.interp.pycodegen`).

Compile requests may also carry a ``run`` option naming a class whose
``main()`` is interpreted in the worker after a successful compile
(pycode backend by default, so repeat runs across workers reuse the
shared codegen cache); captured output rides back on the response.
"""

from __future__ import annotations

import itertools
import json
import os
import queue as queue_mod
import socket
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro import faults, trace
from repro.core.env import CompileEnv
from repro.diag import CompileFailed, DeadlineExceededError, DiagnosticError
from repro.lalr import tables as lalr_tables
from repro.obs import export as obs_export
from repro.obs import log as obs_log
from repro.obs.metrics import REGISTRY
from repro.server import protocol, state
from repro.server.protocol import (
    STATUS_BAD_REQUEST,
    STATUS_COMPILE_ERROR,
    STATUS_DEADLINE,
    STATUS_INTERNAL,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_SHUTTING_DOWN,
    STATUS_WORKER_CRASHED,
    error_response,
)

REQUESTS = REGISTRY.counter(
    "maya_server_requests_total", "Requests by operation and outcome.",
    labelnames=("op", "status"))
QUEUE_DEPTH = REGISTRY.gauge(
    "maya_server_queue_depth", "Compile requests queued right now.")
SHED = REGISTRY.counter(
    "maya_server_shed_total", "Requests rejected by admission control.")
DEADLINES = REGISTRY.counter(
    "maya_server_deadline_total", "Requests that hit their deadline.")
CRASHES = REGISTRY.counter(
    "maya_server_worker_crashes_total", "Worker crashes by containment "
    "outcome.", labelnames=("outcome",))
WORKERS = REGISTRY.gauge(
    "maya_server_workers", "Live (non-zombie) worker threads.")
REPLACED = REGISTRY.counter(
    "maya_server_workers_replaced_total",
    "Workers replaced after a crash or hang.")
DISCONNECTS = REGISTRY.counter(
    "maya_server_client_disconnects_total",
    "Connections dropped mid-conversation by the client.")
REQUEST_MS = REGISTRY.histogram(
    "maya_server_request_ms", "End-to-end compile request latency (ms).",
    bounds=(1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000))

_STOP = object()


class DaemonConfig:
    """Tunables for one :class:`MayaDaemon`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 socket_path: Optional[str] = None, workers: int = 4,
                 queue_size: int = 16, default_deadline_s: float = 30.0,
                 max_deadline_s: float = 120.0, fuel_cap: int = 1024,
                 max_errors_cap: int = 200,
                 artifact_cache_size: int = 256, prewarm: bool = True,
                 codegen_cache_dir: Optional[str] = None,
                 module_cache_dir: Optional[str] = None,
                 trace_requests: bool = True,
                 slow_request_ms: float = 1000.0,
                 latency_window: int = 512,
                 metrics_out: Optional[str] = None,
                 log_out: Optional[str] = None,
                 log_level: Optional[str] = None):
        self.host = host
        self.port = port
        self.socket_path = socket_path
        self.workers = max(1, workers)
        self.queue_size = max(1, queue_size)
        self.default_deadline_s = default_deadline_s
        self.max_deadline_s = max_deadline_s
        self.fuel_cap = fuel_cap
        self.max_errors_cap = max_errors_cap
        self.artifact_cache_size = artifact_cache_size
        self.prewarm = prewarm
        #: Every worker links generated pycode plans through this shared
        #: on-disk cache (same quarantine-on-corrupt discipline as the
        #: LALR table cache); defaults to MAYA_CODEGEN_CACHE.
        self.codegen_cache_dir = (codegen_cache_dir
                                  or os.environ.get("MAYA_CODEGEN_CACHE")
                                  or None)
        #: Workers share the incremental module cache the same way:
        #: multi-file compile requests reuse any module whose transitive
        #: fingerprint matches, whichever worker built it last.
        self.module_cache_dir = (module_cache_dir
                                 or os.environ.get("MAYA_MODULE_CACHE")
                                 or None)
        #: Per-request span tracing: every compile runs under its own
        #: scoped tracer (workers never interleave spans), so a slow
        #: request's span-tree breakdown is available the moment it
        #: finishes.  Off saves ~1-2% on the warm path.
        self.trace_requests = trace_requests
        #: Requests slower than this end-to-end (queue wait included)
        #: land in the slow-request log with their span breakdown.
        self.slow_request_ms = slow_request_ms
        #: The rolling latency reservoir the ``stats`` op computes its
        #: p50/p95/p99 from (most recent N compile requests).
        self.latency_window = max(16, latency_window)
        #: When set, the ``stats`` op and SIGUSR1 flush a fresh JSON
        #: metrics snapshot here — live introspection, not post-mortem.
        self.metrics_out = metrics_out
        #: Event-log file sink and threshold for this daemon process.
        self.log_out = log_out
        self.log_level = log_level


class _Request:
    """One queued compile: payload plus its result future."""

    __slots__ = ("payload", "options", "received", "deadline", "done",
                 "response", "abandoned", "worker", "degraded", "_lock",
                 "context", "breakdown")

    def __init__(self, payload: dict, deadline: float,
                 context: Optional["obs_log.RequestContext"] = None):
        self.payload = payload
        self.options = payload.get("options") or {}
        self.received = time.monotonic()
        self.deadline = deadline
        self.done = threading.Event()
        self.response: Optional[dict] = None
        self.abandoned = False
        self.worker: Optional["_Worker"] = None
        self.degraded = False
        self._lock = threading.Lock()
        #: The request context every thread touching this request binds
        #: (handler, worker, degraded re-run) — one shared object, so
        #: phase timings and outcomes accumulate in one place.
        self.context = context if context is not None \
            else obs_log.RequestContext()
        #: Span-tree summary captured by the executing worker when
        #: per-request tracing is on (feeds the slow-request log).
        self.breakdown: Optional[List[dict]] = None

    def resolve(self, response: dict) -> bool:
        """First writer wins; later resolutions (a zombie worker
        finishing after the handler timed out) are dropped."""
        with self._lock:
            if self.response is not None:
                return False
            self.response = response
        self.done.set()
        return True


class _SubTask:
    """A module-build helper drain on the request queue.

    A worker building a multi-module request fans its independent
    modules across the pool by enqueueing these; an idle worker that
    pulls one joins the request's DAG scheduler until no runnable
    module remains, then goes back to serving requests.  Placement is
    best-effort (a full queue just means fewer helpers) and the owning
    worker always drains its own scheduler, so fan-out can neither
    deadlock admission nor strand a request."""

    __slots__ = ("run",)

    def __init__(self, run):
        self.run = run


class _Worker:
    __slots__ = ("thread", "current", "zombie", "name")

    def __init__(self, name: str):
        self.name = name
        self.thread: Optional[threading.Thread] = None
        self.current: Optional[_Request] = None
        self.zombie = False


class MayaDaemon:
    """The compile service: listener, admission queue, worker pool."""

    def __init__(self, config: Optional[DaemonConfig] = None):
        self.config = config or DaemonConfig()
        self.artifacts = state.ArtifactCache(self.config.artifact_cache_size)
        self._queue: "queue_mod.Queue" = queue_mod.Queue(
            self.config.queue_size)
        self._workers: List[_Worker] = []
        self._pool_lock = threading.Lock()
        self._worker_seq = itertools.count(1)
        self._request_seq = itertools.count(1)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._running = False
        self._started_at = 0.0
        self.prewarm_s = 0.0
        #: Zombie workers still grinding past their request's deadline
        #: (marked by _contain_overdue, reaped by _retire).
        self._zombies: List[_Worker] = []
        #: Rolling end-to-end latencies (ms) of recent compile requests
        #: — the ``stats`` op's p50/p95/p99 come from here, so they
        #: reflect *current* behavior, not the process lifetime.
        self._latencies: "deque[float]" = deque(
            maxlen=self.config.latency_window)
        #: The most recent slow requests (span breakdown included).
        self.slow_requests: "deque[dict]" = deque(maxlen=32)

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> str:
        if self.config.socket_path:
            return self.config.socket_path
        host, port = self._listener.getsockname()[:2]
        return f"{host}:{port}"

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "MayaDaemon":
        if self.config.socket_path:
            self._listener = socket.socket(socket.AF_UNIX,
                                           socket.SOCK_STREAM)
            self._listener.bind(self.config.socket_path)
        else:
            self._listener = socket.socket(socket.AF_INET,
                                           socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET,
                                      socket.SO_REUSEADDR, 1)
            self._listener.bind((self.config.host, self.config.port))
        self._listener.listen(64)
        self._running = True
        self._started_at = time.monotonic()
        if self.config.log_level:
            obs_log.LOG.set_level(self.config.log_level)
        if self.config.log_out:
            obs_log.LOG.set_sink(self.config.log_out)
        if self.config.codegen_cache_dir:
            from repro.interp import pycodegen

            pycodegen.enable_codegen_cache(self.config.codegen_cache_dir)
        if self.config.prewarm:
            self.prewarm_s = state.prewarm()
        with self._pool_lock:
            for _ in range(self.config.workers):
                self._spawn_worker_locked()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="mayad-accept", daemon=True)
        self._accept_thread.start()
        obs_log.emit("server.start", address=self.address,
                     workers=self.config.workers,
                     prewarm_ms=round(self.prewarm_s * 1000.0, 1))
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful stop: refuse new work, drain workers, close."""
        if not self._running:
            return
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        with self._pool_lock:
            workers = list(self._workers)
        # Wake the workers without ever blocking: the admission queue
        # may be full behind hung workers (exactly the fault-drill
        # scenario), and a blocking put would wedge graceful stop.
        # Drain queued requests with a shutting-down answer, then hand
        # out sentinels best-effort — workers also poll the running
        # flag, so a lost sentinel only costs one poll interval.
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue_mod.Empty:
                break
            if pending is _STOP:
                continue
            QUEUE_DEPTH.dec()
            pending.resolve(error_response(STATUS_SHUTTING_DOWN,
                                           "daemon is shutting down"))
        for _ in workers:
            try:
                self._queue.put_nowait(_STOP)
            except queue_mod.Full:
                break
        deadline = time.monotonic() + timeout
        for worker in workers:
            remaining = max(0.0, deadline - time.monotonic())
            if worker.thread is not None:
                worker.thread.join(remaining)
        if self.config.socket_path:
            import os

            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass

    # -- listener ----------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            threading.Thread(target=self._handle_connection, args=(conn,),
                             name="mayad-conn", daemon=True).start()

    def _handle_connection(self, conn: socket.socket) -> None:
        shutdown_after = False
        try:
            while True:
                request = protocol.recv_frame(conn)
                if request is None:
                    return  # clean EOF
                response = self._dispatch(request)
                protocol.send_frame(conn, response)
                if request.get("op") == "shutdown" \
                        and response.get("status") == STATUS_OK:
                    shutdown_after = True
                    return
        except protocol.ProtocolError as error:
            # Malformed frame or the client vanished mid-frame: answer
            # if the socket still works, then drop the connection.
            DISCONNECTS.inc()
            try:
                protocol.send_frame(
                    conn, error_response(STATUS_BAD_REQUEST, str(error)))
            except (OSError, protocol.ProtocolError):
                pass
        except (ConnectionError, OSError, faults.InjectedFault):
            # The client vanished — or a socket-site fault fired.  Either
            # way only this connection dies, never the daemon.
            DISCONNECTS.inc()
        finally:
            try:
                conn.close()
            except OSError:
                pass
            if shutdown_after:
                self.stop()

    # -- request dispatch --------------------------------------------------

    def _dispatch(self, request: dict) -> dict:
        op = str(request.get("op", ""))
        # The daemon mints the request ID; the *client* mints the trace
        # ID (top-level or under options), so one logical request keeps
        # one trace across retries and degraded re-runs.  A malformed
        # trace ID is ignored, never an error: tracing must not be able
        # to fail a compile.
        trace_id = request.get("trace_id")
        if trace_id is None and isinstance(request.get("options"), dict):
            trace_id = request["options"].get("trace_id")
        if not (isinstance(trace_id, str)
                and obs_log.TRACE_ID_RE.match(trace_id)):
            trace_id = None
        context = obs_log.RequestContext(trace_id=trace_id)
        with obs_log.request_scope(context):
            response = self._dispatch_op(op, request)
        # Every response names the request that produced it.  Cached
        # artifact responses had their original IDs stripped at store
        # time, so setdefault always stamps the *current* request's.
        response.setdefault("request_id", context.request_id)
        response.setdefault("trace_id", context.trace_id)
        return response

    def _dispatch_op(self, op: str, request: dict) -> dict:
        if op == "ping":
            REQUESTS.labels(op="ping", status=STATUS_OK).inc()
            return self._ping_response()
        if op == "metrics":
            REQUESTS.labels(op="metrics", status=STATUS_OK).inc()
            return {"protocol": protocol.PROTOCOL_VERSION,
                    "status": STATUS_OK,
                    "metrics": obs_export.to_json(REGISTRY)}
        if op == "stats":
            REQUESTS.labels(op="stats", status=STATUS_OK).inc()
            return self._stats_response()
        if op == "shutdown":
            REQUESTS.labels(op="shutdown", status=STATUS_OK).inc()
            return {"protocol": protocol.PROTOCOL_VERSION,
                    "status": STATUS_OK, "stopping": True}
        if op == "compile":
            response = self._handle_compile(request)
            REQUESTS.labels(op="compile",
                            status=str(response.get("status"))).inc()
            return response
        REQUESTS.labels(op=op or "<missing>",
                        status=STATUS_BAD_REQUEST).inc()
        return error_response(STATUS_BAD_REQUEST, f"unknown op {op!r}")

    def _ping_response(self) -> dict:
        with self._pool_lock:
            live = sum(1 for w in self._workers if not w.zombie)
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "status": STATUS_OK,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "workers": live,
            "queue_depth": self._queue.qsize(),
            "artifact_epoch": self.artifacts.epoch,
            "faults": faults.active_plan().spec,
        }

    # -- live introspection ------------------------------------------------

    def _stats_response(self) -> dict:
        """The ``stats`` op: one structured snapshot of everything the
        daemon knows about itself *right now* — worker states, queue,
        rolling latency percentiles, degradation counters, cache hit
        ratios — rendered by ``mayac --daemon-status`` and the
        ``repro.server.top`` watch view."""
        with self._pool_lock:
            busy = sum(1 for w in self._workers if w.current is not None)
            live = len(self._workers)
            zombies = len(self._zombies)
        latencies = sorted(self._latencies)
        requests_by: Dict[str, Dict[str, float]] = {}
        for labels, child in REQUESTS.samples():
            op, status = labels
            requests_by.setdefault(op, {})[status] = child.value
        stats = {
            "protocol": protocol.PROTOCOL_VERSION,
            "status": STATUS_OK,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "address": self.address,
            "queue": {
                "depth": self._queue.qsize(),
                "capacity": self.config.queue_size,
            },
            "workers": {
                "configured": self.config.workers,
                "live": live,
                "busy": busy,
                "idle": live - busy,
                "zombies": zombies,
                "replaced_total": int(_family_sum(
                    "maya_server_workers_replaced_total")),
            },
            "latency_ms": {
                "window": len(latencies),
                "p50": _percentile(latencies, 50),
                "p95": _percentile(latencies, 95),
                "p99": _percentile(latencies, 99),
            },
            "degradations": {
                "shed_total": int(_family_sum("maya_server_shed_total")),
                "deadline_total": int(_family_sum(
                    "maya_server_deadline_total")),
                "crashes": {
                    labels[0]: int(child.value)
                    for labels, child in CRASHES.samples()
                },
                "disconnects_total": int(_family_sum(
                    "maya_server_client_disconnects_total")),
            },
            "requests": requests_by,
            "caches": self._cache_stats(),
            "modules": {
                "compiled_total": int(_family_sum(
                    "maya_modules_compiled_total")),
                "reused_total": int(_family_sum(
                    "maya_modules_reused_total")),
            },
            "slow_requests": list(self.slow_requests),
            "slow_request_ms": self.config.slow_request_ms,
            "log": {"level": obs_log.LOG.level,
                    "emitted": obs_log.LOG.emitted,
                    "buffered": len(obs_log.LOG)},
            "faults": faults.active_plan().spec,
        }
        if self.config.metrics_out:
            # satellite contract: a live `stats` op flushes a fresh
            # metrics snapshot to disk, same as SIGUSR1.
            stats["metrics_out"] = self.flush_metrics()
        return stats

    def _cache_stats(self) -> Dict[str, dict]:
        """Per-cache hit/miss/ratio, from the shared-cache and artifact
        event families, plus current epoch numbers."""
        caches: Dict[str, dict] = {}
        family = REGISTRY.get("maya_cache_events_total")
        if family is not None:
            for labels, child in family.samples():
                cache, event = labels
                caches.setdefault(cache, {})[event] = int(child.value)
        artifact: Dict[str, int] = {}
        family = REGISTRY.get("maya_server_artifact_cache_events_total")
        if family is not None:
            for labels, child in family.samples():
                artifact[labels[0]] = int(child.value)
        if artifact:
            caches["artifact"] = artifact
        for name, stats in caches.items():
            hits = stats.get("hit", 0)
            misses = stats.get("miss", 0)
            if hits + misses:
                stats["hit_ratio"] = round(hits / (hits + misses), 4)
        epochs: Dict[str, float] = {}
        family = REGISTRY.get("maya_server_cache_epoch")
        if family is not None:
            for labels, child in family.samples():
                epochs[labels[0]] = child.value
        epochs["artifact"] = self.artifacts.epoch
        caches["epochs"] = epochs
        return caches

    def flush_metrics(self, path: Optional[str] = None) -> Optional[str]:
        """Write a fresh JSON metrics snapshot to ``path`` (default:
        the configured ``metrics_out``) — the live ``--metrics-out``:
        the ``stats`` op and SIGUSR1 both land here.  Atomic via
        tmp-and-rename; returns the path written, or None."""
        path = path or self.config.metrics_out
        if not path:
            return None
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(obs_export.to_json(REGISTRY), handle, indent=2,
                      default=str)
            handle.write("\n")
        os.replace(tmp, path)
        obs_log.emit("server.metrics.flush", level="debug", path=path)
        return path

    # -- compile path ------------------------------------------------------

    def _handle_compile(self, payload: dict) -> dict:
        source = payload.get("source")
        sources = payload.get("sources")
        roots = payload.get("roots")
        filename = payload.get("filename") or "<daemon>"
        if sources is not None:
            # Multi-file request: every module's source rides in the
            # payload, plus the root module names to build from.
            if (not isinstance(sources, dict) or not sources
                    or not all(isinstance(k, str) and isinstance(v, str)
                               for k, v in sources.items())):
                return error_response(
                    STATUS_BAD_REQUEST,
                    "'sources' must be a non-empty object of "
                    "module name -> source text")
            if (not isinstance(roots, list) or not roots
                    or not all(isinstance(r, str) for r in roots)):
                return error_response(
                    STATUS_BAD_REQUEST,
                    "multi-file compile requests need a 'roots' list "
                    "of module names")
            # One canonical string stands in for 'the source' so the
            # artifact cache stays content-addressed for module jobs.
            import json as _json

            source = _json.dumps({"roots": roots, "sources": sources},
                                 sort_keys=True)
            filename = "<modules>"
        elif not isinstance(source, str):
            return error_response(STATUS_BAD_REQUEST,
                                  "compile request needs a string 'source'")
        if not self._running:
            return error_response(STATUS_SHUTTING_DOWN,
                                  "daemon is shutting down")

        options = payload.get("options") or {}
        if not isinstance(options, dict):
            return error_response(STATUS_BAD_REQUEST,
                                  "'options' must be an object")
        deadline_s = options.get("deadline_ms")
        try:
            deadline_s = (float(deadline_s) / 1000.0
                          if deadline_s is not None
                          else self.config.default_deadline_s)
        except (TypeError, ValueError):
            return error_response(STATUS_BAD_REQUEST,
                                  "'deadline_ms' must be a number")
        deadline_s = min(max(deadline_s, 0.001), self.config.max_deadline_s)
        started = time.monotonic()
        context = obs_log.current_request() or obs_log.RequestContext()
        request = _Request(payload, deadline=started + deadline_s,
                           context=context)
        obs_log.emit("server.request.received", filename=filename,
                     deadline_ms=round(deadline_s * 1000.0, 1),
                     queue_depth=self._queue.qsize())

        # Content-addressed artifact cache: a hit skips the queue
        # entirely (the cached response *is* the right answer).
        key = None
        if options.get("cache", True):
            key = state.artifact_key(source, filename, options)
            cached = self.artifacts.lookup(key)
            if cached is not None:
                elapsed_ms = (time.monotonic() - started) * 1000.0
                context.note(artifact="hit")
                cached["stats"] = {"cached": True, "wait_ms": 0.0,
                                   "outcomes": dict(context.outcomes)}
                REQUEST_MS.observe(elapsed_ms)
                self._latencies.append(elapsed_ms)
                obs_log.emit("server.request.done", status=STATUS_OK,
                             cached=True, total_ms=round(elapsed_ms, 3))
                return cached
            context.note(artifact="miss")
        else:
            context.note(artifact="bypass")

        # Admission control: a full queue sheds *now*, with a hint.
        try:
            self._queue.put_nowait(request)
        except queue_mod.Full:
            SHED.inc()
            obs_log.emit("server.request.shed", level="warn",
                         queue_depth=self.config.queue_size)
            return error_response(
                STATUS_OVERLOADED,
                f"compile queue is full ({self.config.queue_size} deep); "
                f"retry with backoff",
                queue_depth=self.config.queue_size,
                retry_after_ms=50)
        QUEUE_DEPTH.inc()

        finished = request.done.wait(max(0.0, request.deadline
                                         - time.monotonic()) + 0.05)
        if not finished:
            request.abandoned = True
            DEADLINES.inc()
            self._contain_overdue(request)
            obs_log.emit("server.request.deadline", level="warn",
                         deadline_ms=round(deadline_s * 1000.0, 1),
                         abandoned=True)
            return error_response(
                STATUS_DEADLINE,
                f"request exceeded its {deadline_s * 1000:.0f}ms deadline",
                deadline_ms=deadline_s * 1000.0)
        response = request.response
        elapsed_ms = (time.monotonic() - started) * 1000.0
        REQUEST_MS.observe(elapsed_ms)
        self._latencies.append(elapsed_ms)
        if response.get("status") == STATUS_DEADLINE:
            # Cooperative trip inside the grace window (the abandoned
            # path above counted its own).
            DEADLINES.inc()
        if key is not None and response.get("status") in (
                STATUS_OK, STATUS_COMPILE_ERROR):
            # Deadline responses never reach the artifact cache: the
            # key excludes deadline_ms, so caching one would serve
            # 'deadline exceeded' to later, amply-budgeted requests.
            self.artifacts.store(key, response)
        stats = response.setdefault("stats", {})
        stats["total_ms"] = round(elapsed_ms, 3)
        phases = context.phase_ms()
        if phases:
            stats["phases"] = phases
        if context.outcomes:
            stats["outcomes"] = dict(context.outcomes)
        obs_log.emit("server.request.done",
                     status=str(response.get("status")),
                     total_ms=round(elapsed_ms, 3),
                     degraded=bool(response.get("degraded")))
        if elapsed_ms >= self.config.slow_request_ms:
            self._record_slow(request, response, elapsed_ms)
        return response

    def _record_slow(self, request: _Request, response: dict,
                     elapsed_ms: float) -> None:
        """Capture a finished slow request (span-tree breakdown
        included) into the rolling slow-request log."""
        entry = {
            "request_id": request.context.request_id,
            "trace_id": request.context.trace_id,
            "filename": request.payload.get("filename") or "<daemon>",
            "status": str(response.get("status")),
            "total_ms": round(elapsed_ms, 3),
            "phases": request.context.phase_ms(),
            "outcomes": dict(request.context.outcomes),
            "breakdown": request.breakdown or [],
        }
        self.slow_requests.append(entry)
        obs_log.emit("server.request.slow", level="warn",
                     total_ms=round(elapsed_ms, 3),
                     threshold_ms=self.config.slow_request_ms,
                     spans=len(entry["breakdown"]))

    def _execute(self, request: _Request, degraded: bool = False) -> dict:
        """Run one compile, under a per-request scoped tracer when
        tracing is on (the span-tree breakdown feeds the slow-request
        log; contextvars keep concurrent workers' spans apart)."""
        if not self.config.trace_requests:
            return self._execute_inner(request, degraded)
        with trace.scoped() as tracer:
            response = self._execute_inner(request, degraded)
        request.breakdown = _span_breakdown(tracer)
        return response

    def _execute_inner(self, request: _Request,
                       degraded: bool = False) -> dict:
        """Run one compile in a fresh, isolated environment."""
        payload = request.payload
        options = request.options
        fuel = _bounded_int(options.get("fuel"), self.config.fuel_cap)
        max_errors = _bounded_int(options.get("max_errors"),
                                  self.config.max_errors_cap)
        env = CompileEnv.fresh_session(fuel=fuel, max_errors=max_errors,
                                       deadline=request.deadline)
        engine = env.diag
        started = time.perf_counter()
        try:
            from repro import MayaCompiler
            from repro.macros import install_macro_library

            compiler = MayaCompiler(env)
            if not options.get("no_macros"):
                install_macro_library(compiler)
            if options.get("multijava"):
                from repro.multijava import install_multijava

                install_multijava(compiler)
            for name in options.get("use") or ():
                compiler.use(str(name))
            faults.check(faults.SITE_WORKER_EXECUTE)
            modules_result = None
            if payload.get("sources") is not None:
                builder = self._module_builder(payload, options, env,
                                               degraded)
                # The builder's compiler shares env (and therefore the
                # metaprogram namespace installed above).
                if degraded:
                    with lalr_tables.bypass_caches():
                        modules_result = builder.build(
                            payload["roots"],
                            need_bodies=bool(options.get("run")))
                else:
                    modules_result = builder.build(
                        payload["roots"],
                        need_bodies=bool(options.get("run")))
                program = modules_result.program
            elif degraded:
                # Single-shot mode: a poisoned shared cache must not be
                # able to kill the rerun too.
                with lalr_tables.bypass_caches():
                    program = compiler.compile(
                        source=payload["source"],
                        filename=payload.get("filename") or "<daemon>")
            else:
                program = compiler.compile(
                    source=payload["source"],
                    filename=payload.get("filename") or "<daemon>")
        except DeadlineExceededError:
            # A cooperative deadline trip is a service condition, not a
            # source error: report STATUS_DEADLINE so clients can tell
            # a timeout from a bad program (and the handler never
            # caches it under a deadline-blind artifact key).
            return self._deadline_response(request)
        except CompileFailed as failure:
            if any(isinstance(diag.cause, DeadlineExceededError)
                   for diag in failure.diagnostics):
                # Per-member recovery absorbed the trip mid-run: the
                # diagnostics are truncated by timing, so this is a
                # deadline outcome too.
                return self._deadline_response(request)
            return self._compile_error(engine, failure.diagnostics)
        except DiagnosticError as failure:
            return self._compile_error(engine, [failure.diagnostic])
        response = {
            "protocol": protocol.PROTOCOL_VERSION,
            "status": STATUS_OK,
            "classes": sorted(program.classes),
            "stats": {"compile_ms": round(
                (time.perf_counter() - started) * 1000.0, 3)},
        }
        if degraded:
            response["degraded"] = True
        if modules_result is not None:
            request.context.note(
                modules_recompiled=len(modules_result.recompiled),
                modules_reused=len(modules_result.reused))
            response["modules"] = {
                "order": modules_result.order,
                "recompiled": modules_result.recompiled,
                "reused": modules_result.reused,
            }
        if options.get("expand"):
            response["expanded"] = modules_result.expanded() \
                if modules_result is not None \
                else program.source(provenance=bool(
                    options.get("provenance")))
        if options.get("run"):
            response["run"] = self._run_program(program, options)
        return response

    def _module_builder(self, payload: dict, options: dict,
                        env: CompileEnv, degraded: bool):
        """A ModuleBuilder for one multi-file request.  Degraded re-runs
        bypass the shared module cache (same reasoning as the LALR
        bypass: a poisoned entry must not kill the rerun) and run
        strictly serially — isolation over throughput on the rerun.

        Independent modules fan out across the daemon's own worker
        pool (never forked processes: the daemon is multithreaded):
        helper drains ride the request queue as :class:`_SubTask`
        items, capped at the pool size so a single request cannot
        monopolize admission."""
        from repro.modules import MemorySources, ModuleBuilder, resolve_jobs

        build_options = {
            key: options.get(key)
            for key in ("multijava", "use", "no_macros", "provenance")
            if options.get(key)
        }
        requested = options.get("jobs")
        if degraded:
            jobs = 1
        else:
            try:
                jobs = resolve_jobs(requested) \
                    if requested not in (None, "") else self.config.workers
            except ValueError:
                jobs = 1
            jobs = max(1, min(jobs, self.config.workers))

        def spawn(drain) -> bool:
            try:
                self._queue.put_nowait(_SubTask(drain))
            except queue_mod.Full:
                return False  # fewer helpers; the owner still drains
            QUEUE_DEPTH.inc()
            return True

        return ModuleBuilder(
            MemorySources(payload["sources"]),
            cache_dir=None if degraded else self.config.module_cache_dir,
            options=build_options,
            env=env,
            jobs=jobs,
            task_spawn=spawn if jobs > 1 else None)

    @staticmethod
    def _run_program(program, options: dict) -> dict:
        """Interpret ``options['run']``.main() in this worker.

        Defaults to the pycode backend so repeat runs — on any worker —
        link plans out of the shared on-disk codegen cache instead of
        regenerating them.  Failures are *this request's* problem: they
        ride back under the ``run`` key, never as a compile error."""
        from repro.interp import Interpreter, JavaThrow

        cls = str(options.get("run"))
        backend = str(options.get("backend") or "pycode")
        run_started = time.perf_counter()
        # Per-request IC/deopt counts are before/after deltas of the
        # process-wide families (approximate when runs overlap across
        # workers, exact in the common serial case).
        ic_before = _family_sum("maya_interp_ic_events_total")
        deopts_before = _family_sum("maya_interp_codegen_deopts_total")
        try:
            interp = Interpreter(program, backend=backend)
        except Exception as error:
            return {"class": cls, "error": str(error), "output": []}
        result: dict = {"class": cls, "output": interp.output}
        try:
            value = interp.run_static(cls)
            if isinstance(value, (bool, int, float, str, type(None))):
                result["value"] = value
        except JavaThrow as thrown:
            result["error"] = str(thrown)
            result["thrown"] = thrown.value.class_type.name
        except Exception as error:
            result["error"] = str(error)
        result["run_ms"] = round(
            (time.perf_counter() - run_started) * 1000.0, 3)
        context = obs_log.current_request()
        if context is not None:
            context.note(
                ic_events=int(_family_sum("maya_interp_ic_events_total")
                              - ic_before),
                codegen_deopts=int(
                    _family_sum("maya_interp_codegen_deopts_total")
                    - deopts_before))
        return result

    @staticmethod
    def _deadline_response(request: _Request) -> dict:
        budget_ms = (request.deadline - request.received) * 1000.0
        return error_response(
            STATUS_DEADLINE,
            f"compile tripped its {budget_ms:.0f}ms deadline mid-run "
            f"(raise deadline_ms, or simplify the expansion)",
            deadline_ms=round(budget_ms, 3))

    @staticmethod
    def _compile_error(engine, diagnostics) -> dict:
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "status": STATUS_COMPILE_ERROR,
            "diagnostics": [{
                "message": diag.message,
                "severity": diag.severity,
                "phase": diag.phase,
                "span": str(diag.span) if diag.span is not None else None,
                "rendered": engine.render(diag),
            } for diag in diagnostics],
        }

    # -- worker pool -------------------------------------------------------

    def _spawn_worker_locked(self) -> _Worker:
        worker = _Worker(f"mayad-worker-{next(self._worker_seq)}")
        worker.thread = threading.Thread(
            target=self._worker_loop, args=(worker,), name=worker.name,
            daemon=True)
        self._workers.append(worker)
        WORKERS.inc()
        worker.thread.start()
        return worker

    def _worker_loop(self, worker: _Worker) -> None:
        while True:
            try:
                request = self._queue.get(timeout=0.5)
            except queue_mod.Empty:
                # Polling backstop for stop(): its sentinels are
                # put_nowait, so a full-queue race may lose one.
                if not self._running:
                    self._retire(worker)
                    return
                continue
            if request is _STOP:
                self._retire(worker)
                return
            QUEUE_DEPTH.dec()
            if isinstance(request, _SubTask):
                # Help another worker's module build, then resume
                # serving requests.  Errors stay inside the drain (the
                # scheduler contains task failures for serial replay).
                request.run()
                continue
            if request.abandoned:
                # Expired while queued: the handler already answered.
                request.resolve(error_response(
                    STATUS_DEADLINE, "expired before a worker was free"))
                continue
            worker.current = request
            request.worker = worker
            # Re-bind the request's own context on this thread: every
            # event, span, phase timing, and diagnostic the compile
            # produces carries the request's IDs.
            with obs_log.request_scope(request.context):
                obs_log.emit(
                    "server.request.start", level="debug",
                    worker=worker.name,
                    wait_ms=round((time.monotonic() - request.received)
                                  * 1000.0, 3))
                try:
                    response = self._execute(request)
                except faults.WorkerCrash:
                    worker.current = None
                    self._contain_crash(worker, request)
                    return  # this worker is dead
                except Exception as error:
                    # An escaped non-diagnostic error is a server bug,
                    # but it is *this request's* problem only.
                    response = error_response(
                        STATUS_INTERNAL,
                        f"{type(error).__name__}: {error}")
            worker.current = None
            request.resolve(response)
            if worker.zombie:
                self._retire(worker)
                return

    def _retire(self, worker: _Worker) -> None:
        with self._pool_lock:
            if worker in self._workers:
                self._workers.remove(worker)
                WORKERS.dec()
            elif worker in self._zombies:
                # Zombies left the live pool (and its gauge) when they
                # were marked; finishing just reaps the bookkeeping.
                self._zombies.remove(worker)

    def _contain_crash(self, worker: _Worker, request: _Request) -> None:
        """A worker died executing ``request``: replace the worker and
        quarantine the request for one degraded re-run."""
        obs_log.emit("server.worker.crash", level="error",
                     worker=worker.name,
                     degraded_already=request.degraded)
        self._retire(worker)
        if self._running:
            with self._pool_lock:
                self._spawn_worker_locked()
            REPLACED.inc()
        if request.degraded:
            CRASHES.labels(outcome="degraded_failed").inc()
            request.resolve(error_response(
                STATUS_WORKER_CRASHED,
                "request crashed its worker twice (original and degraded "
                "re-run); giving up"))
            return
        CRASHES.labels(outcome="contained").inc()
        request.degraded = True

        def rerun() -> None:
            # Same request, new thread: re-bind the same context so the
            # degraded re-run's events join the original's trail.
            with obs_log.request_scope(request.context):
                obs_log.emit("server.request.degraded", level="warn",
                             worker=worker.name)
                try:
                    response = self._execute(request, degraded=True)
                except faults.WorkerCrash:
                    CRASHES.labels(outcome="degraded_failed").inc()
                    response = error_response(
                        STATUS_WORKER_CRASHED,
                        "request crashed its worker twice (original and "
                        "degraded re-run); giving up")
                except Exception as error:
                    response = error_response(
                        STATUS_INTERNAL,
                        f"degraded re-run failed: "
                        f"{type(error).__name__}: {error}")
            request.resolve(response)

        threading.Thread(target=rerun, name="mayad-quarantine",
                         daemon=True).start()

    def _contain_overdue(self, request: _Request) -> None:
        """The deadline passed: if a worker is still grinding on this
        request, zombie it (it exits after finishing) and backfill."""
        worker = request.worker
        if worker is None or worker.current is not request:
            return
        with self._pool_lock:
            if worker.zombie or worker not in self._workers:
                return
            worker.zombie = True
            WORKERS.dec()
            self._workers.remove(worker)
            self._zombies.append(worker)
            self._spawn_worker_locked()
        REPLACED.inc()
        obs_log.emit("server.worker.zombie", level="warn",
                     worker=worker.name,
                     **request.context.ids())


def _bounded_int(value, cap: int) -> Optional[int]:
    if value is None:
        return None
    try:
        return max(1, min(int(value), cap))
    except (TypeError, ValueError):
        return None


def _family_sum(name: str) -> float:
    """The summed value of a metric family's children (0.0 when the
    family does not exist yet)."""
    family = REGISTRY.get(name)
    if family is None:
        return 0.0
    return sum(child.value for _, child in family.samples())


def _percentile(sorted_values: List[float], pct: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(pct / 100.0 * len(sorted_values))) - 1))
    return round(sorted_values[rank], 3)


def _span_breakdown(tracer: "trace.Tracer",
                    max_spans: int = 48) -> List[dict]:
    """A compact pre-order span-tree summary for the slow-request log:
    depth-tagged, attribute-free, capped so a pathological expansion
    cannot bloat the rolling log."""
    breakdown: List[dict] = []

    def walk(span, depth: int) -> None:
        if len(breakdown) >= max_spans:
            return
        breakdown.append({
            "kind": span.kind,
            "name": span.name,
            "depth": depth,
            "dur_ms": round(span.duration * 1000.0, 3),
        })
        for child in span.children:
            walk(child, depth + 1)

    for root in tracer.roots:
        walk(root, 0)
    return breakdown
