"""The mayad wire protocol: length-prefixed JSON frames.

A frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Length-prefixing (rather than newline framing)
keeps arbitrary source text — including newlines and partial writes —
unambiguous, and lets the receiver reject oversized frames *before*
buffering them.

Requests are ``{"op": ..., ...}``; responses always carry ``status``
(one of the ``STATUS_*`` constants) and, on failure, a structured
``diagnostics`` list so clients render the same caret-style output a
local mayac would.  Socket reads and writes are fault-injection
checkpoints (:data:`repro.faults.SITE_SOCKET_READ` / ``_WRITE``).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional

from repro import faults

#: Wire format version, echoed in every response.
PROTOCOL_VERSION = 1

#: Refuse frames beyond this size (a corrupt length prefix must not
#: make the receiver try to buffer gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct("!I")

# -- response status codes --------------------------------------------------

STATUS_OK = "ok"
STATUS_COMPILE_ERROR = "compile-error"       # source is at fault
STATUS_BAD_REQUEST = "bad-request"           # request is malformed
STATUS_OVERLOADED = "overloaded"             # admission control shed it
STATUS_DEADLINE = "deadline-exceeded"        # per-request deadline hit
STATUS_WORKER_CRASHED = "worker-crashed"     # crashed twice (incl. rerun)
STATUS_INTERNAL = "internal-error"           # recoverable server bug
STATUS_SHUTTING_DOWN = "shutting-down"       # daemon is stopping

#: Statuses a client may retry (with backoff) — the request itself is
#: fine, the service was momentarily unable to take it.
RETRYABLE_STATUSES = frozenset({STATUS_OVERLOADED, STATUS_SHUTTING_DOWN})


class ProtocolError(Exception):
    """A malformed frame (bad length, truncated payload, bad JSON)."""


def error_response(status: str, message: str, **details) -> dict:
    """A structured failure response: one synthetic diagnostic plus
    machine-readable detail fields (queue depth, retry hints, ...)."""
    return {
        "protocol": PROTOCOL_VERSION,
        "status": status,
        "diagnostics": [{
            "severity": "error",
            "phase": "server",
            "message": message,
            "rendered": f"mayad: [{status}] {message}",
        }],
        **details,
    }


def send_frame(sock: socket.socket, payload: dict) -> None:
    faults.check(faults.SITE_SOCKET_WRITE)
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {len(data)} bytes")
    sock.sendall(_HEADER.pack(len(data)) + data)


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """The next frame, or None on a clean EOF at a frame boundary."""
    faults.check(faults.SITE_SOCKET_READ)
    header = _recv_exact(sock, _HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds "
                            f"{MAX_FRAME_BYTES} bytes")
    data = _recv_exact(sock, length, eof_ok=False)
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"bad frame payload: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return payload


def _recv_exact(sock: socket.socket, count: int,
                eof_ok: bool) -> Optional[bytes]:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/"
                f"{count} bytes received)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
