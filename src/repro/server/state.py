"""Shared read-only state: epoch/snapshot handoff for a worker pool.

The daemon's whole value is sharing expensive derived state — LALR
tables, grammar fingerprints, compiled-artifact payloads — across
requests, but shared *mutable* state is exactly what a robust service
cannot afford: a reader observing a half-updated cache is a poisoned
request.  The rule here is the classic read-copy-update discipline:

* readers pin **one immutable snapshot** per request
  (:meth:`EpochCache.snapshot`) and never see later writes;
* writers build a *new* mapping off to the side and publish it with a
  single reference swap, bumping the epoch counter — publication is
  atomic, so there is no observable intermediate state;
* entries are immutable by convention (publish-once): a key is never
  overwritten with different data, only added or evicted.

The artifact cache is content-addressed (SHA-256 over source text and
every option that affects output), so a stale hit is *impossible* —
matching the cache key proves the cached response is the right answer.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from types import MappingProxyType
from typing import Mapping, Optional

from repro.obs.metrics import REGISTRY

ARTIFACT_EVENTS = REGISTRY.counter(
    "maya_server_artifact_cache_events_total",
    "Content-addressed compiled-artifact cache events.",
    labelnames=("event",),
)
EPOCH_GAUGE = REGISTRY.gauge(
    "maya_server_cache_epoch",
    "Current epoch of a shared daemon cache.",
    labelnames=("cache",),
)


class EpochCache:
    """A shared mapping published as immutable epoch-stamped snapshots."""

    def __init__(self, name: str, max_entries: int = 256):
        self.name = name
        self.max_entries = max_entries
        self._lock = threading.Lock()       # writers only
        self._epoch = 0
        self._snapshot: Mapping = MappingProxyType({})
        self._gauge = EPOCH_GAUGE.labels(cache=name)

    @property
    def epoch(self) -> int:
        return self._epoch

    def snapshot(self) -> Mapping:
        """The current immutable snapshot (pin once per request)."""
        return self._snapshot

    def get(self, key):
        return self._snapshot.get(key)

    def publish(self, key, value) -> None:
        """Add ``key`` via copy-on-write swap; oldest entries are
        evicted FIFO past ``max_entries``.  Publish-once: a key that is
        already present keeps its original value (first writer wins, so
        two workers racing on the same key cannot flap the cache)."""
        with self._lock:
            current = self._snapshot
            if key in current:
                return
            fresh = dict(current)
            fresh[key] = value
            while len(fresh) > self.max_entries:
                fresh.pop(next(iter(fresh)))
            self._epoch += 1
            self._gauge.set(self._epoch)
            # The swap is the handoff: readers hold either the old or
            # the new mapping, never a mixture.
            self._snapshot = MappingProxyType(fresh)

    def __len__(self) -> int:
        return len(self._snapshot)


def artifact_key(source: str, filename: str, options: dict) -> str:
    """Content address of one compile: source text plus every option
    that can change the produced artifact or its diagnostics."""
    relevant = {
        key: options.get(key)
        for key in ("use", "multijava", "no_macros", "fuel", "max_errors",
                    "expand", "provenance")
    }
    digest = hashlib.sha256()
    digest.update(source.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(filename.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(json.dumps(relevant, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()


class ArtifactCache:
    """The content-addressed response cache, over :class:`EpochCache`."""

    def __init__(self, max_entries: int = 256):
        self._cache = EpochCache("artifacts", max_entries=max_entries)
        self._hits = ARTIFACT_EVENTS.labels(event="hit")
        self._misses = ARTIFACT_EVENTS.labels(event="miss")

    @property
    def epoch(self) -> int:
        return self._cache.epoch

    def lookup(self, key: str) -> Optional[dict]:
        cached = self._cache.get(key)
        if cached is None:
            self._misses.inc()
            return None
        self._hits.inc()
        # Serve a copy: responses are annotated per-request (timings,
        # request ids) and must not mutate the shared entry.
        response = dict(cached)
        response["cached"] = True
        return response

    def store(self, key: str, response: dict) -> None:
        # Per-request annotations never enter the shared entry: stats
        # are re-stamped per hit, and the ids must be the *hitting*
        # request's, not the one that happened to populate the cache.
        entry = {k: v for k, v in response.items()
                 if k not in ("cached", "stats", "request_id", "trace_id")}
        self._cache.publish(key, entry)


#: What prewarm compiles: grammar extension is *content*-fingerprinted,
#: so exercising each ``use`` scope here populates the table cache for
#: every later request that imports the same metaprograms — whatever
#: its source text.
_PREWARM_SOURCE = """
    import java.util.*;
    class Prewarm {
        static void main() {
            use maya.util.ForEach;
            Vector v = new Vector();
            v.elements().foreach(String s) { System.out.println(s); }
        }
    }
"""


def prewarm() -> float:
    """Populate the process-wide caches a fresh session needs (base
    grammar singleton, macro-library tables, the ``use``-extended
    tables of the bundled macros) so the first real request is as fast
    as the thousandth.  Returns the time spent."""
    from repro import MayaCompiler
    from repro.macros import install_macro_library

    started = time.perf_counter()
    compiler = MayaCompiler()
    install_macro_library(compiler)
    compiler.compile(_PREWARM_SOURCE, "<prewarm>")
    return time.perf_counter() - started
