"""The daemon smoke/fault drill CI runs.

    python -m repro.server.smoke --requests 50 [--scenario NAME]
                                 [--metrics-out FILE] [--log-out FILE]

Starts an in-process daemon on an ephemeral port, fires N concurrent
client compiles, optionally arms a fault scenario, and then *proves
the daemon survived*: a final ping plus a clean compile must succeed,
every response must be one of the scenario's expected statuses, and
every response and request-scoped log event must carry a well-formed
``request_id``/``trace_id``.  The metrics snapshot is flushed *live*
through the daemon's ``stats`` op (post-mortem only as a fallback when
the drill dies early), and ``--log-out`` keeps the structured event
log as a flight recorder CI can upload.  Exit 0 on success, 1 on any
unexpected outcome.

Scenarios (``--scenario``):

* ``none``          — plain load: every request must succeed;
* ``cache-corrupt`` — the on-disk table cache serves one corrupt
  entry; compiles must succeed anyway (quarantine + regenerate);
* ``worker-hang``   — one worker hangs; that request must come back
  ``deadline-exceeded`` and the pool must backfill;
* ``worker-crash``  — one worker crashes; the request must be
  re-run in degraded mode and *succeed*;
* ``modules``       — multi-file compile requests fan each build
  across the worker pool (``jobs``) and hammer the shared incremental
  module cache while one on-disk entry *and* one interface payload
  are served corrupt; every request must succeed anyway (quarantine
  + recompile).
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import sys
import tempfile
import time

from repro import faults
from repro.lalr.tables import enable_disk_cache
from repro.obs import export as obs_export
from repro.obs import log as obs_log
from repro.obs.metrics import REGISTRY
from repro.server.client import MayaClient
from repro.server.daemon import DaemonConfig, MayaDaemon
from repro.server.protocol import STATUS_DEADLINE, STATUS_OK

SOURCE_TEMPLATE = """
    import java.util.*;
    class Demo%d {
        static void main() {
            use maya.util.ForEach;
            Vector v = new Vector();
            v.addElement("smoke-%d");
            v.elements().foreach(String s) { System.out.println(s); }
        }
    }
"""

#: scenario -> (fault spec, statuses allowed beyond plain success,
#: per-request deadline in seconds).  The crash scenario's deadline
#: leaves room for the degraded re-run, which rebuilds LALR tables
#: from scratch (shared caches are deliberately bypassed).
SCENARIOS = {
    "none": ("", set(), 2.0),
    "cache-corrupt": ("cache.disk.load:corrupt:times=1", set(), 2.0),
    "worker-hang": ("worker.execute:hang:secs=5:times=1",
                    {STATUS_DEADLINE}, 2.0),
    "worker-crash": ("worker.execute:crash:times=1", set(), 15.0),
    "modules": ("cache.module.load:corrupt:times=1,"
                "cache.module.iface:corrupt:times=1", set(), 5.0),
}

#: The multi-file program the ``modules`` scenario compiles: a Mayan
#: ``use``d in lib.Util reaches app.Main over the import edge, and
#: every request after the first replays both modules from the shared
#: module cache (except the one that draws the corrupt entry).
MODULE_SOURCES = {
    "lib.Util": """
        use maya.util.ForEach;
        class Util {
            static void dump(String[] items) {
                items.foreach(String s) { System.out.println(s); }
            }
        }
    """,
    "app.Main": """
        import lib.Util;
        class Main {
            static void main() {
                String[] data = new String[1];
                data[0] = "smoke";
                Util.dump(data);
            }
        }
    """,
}


def run_drill(requests: int, scenario: str, workers: int = 4,
              metrics_out: str = None, log_out: str = None) -> int:
    spec, allowed, deadline_s = SCENARIOS[scenario]
    allowed = {STATUS_OK} | allowed
    faults.configure(spec)
    # cache-corrupt needs a disk cache to corrupt.
    cache_dir = tempfile.mkdtemp(prefix="mayad-smoke-")
    enable_disk_cache(cache_dir)

    daemon = MayaDaemon(DaemonConfig(
        workers=workers, queue_size=max(16, requests),
        default_deadline_s=deadline_s,
        module_cache_dir=os.path.join(cache_dir, "modules"),
        metrics_out=metrics_out, log_out=log_out)).start()
    if scenario == "cache-corrupt":
        # Prewarm just wrote good table entries to disk; flushing the
        # in-memory LRU forces the drill through the on-disk loader,
        # where the armed corruption waits.
        from repro.lalr.tables import table_cache_clear

        table_cache_clear()
    failures = []
    statuses = {}
    try:
        client = MayaClient(daemon.address, retries=6)
        started = time.perf_counter()
        with concurrent.futures.ThreadPoolExecutor(
                max_workers=min(16, requests)) as pool:
            if scenario == "modules":
                futures = [
                    pool.submit(client.compile_modules,
                                MODULE_SOURCES, ["app.Main"],
                                expand=True, cache=False,
                                jobs=workers,
                                deadline_ms=int(deadline_s * 1000))
                    for i in range(requests)
                ]
            else:
                futures = [
                    pool.submit(client.compile,
                                SOURCE_TEMPLATE % (i, i),
                                filename=f"smoke{i}.maya", expand=True,
                                cache=False,
                                deadline_ms=int(deadline_s * 1000))
                    for i in range(requests)
                ]
            for i, future in enumerate(futures):
                response = future.result(timeout=60)
                status = str(response.get("status"))
                statuses[status] = statuses.get(status, 0) + 1
                if status not in allowed:
                    failures.append(f"request {i}: unexpected {status}: "
                                    f"{response}")
                # Every response — success, deadline, shed, whatever —
                # must name the request that produced it.
                request_id = response.get("request_id")
                if not (isinstance(request_id, str)
                        and obs_log.REQUEST_ID_RE.match(request_id)):
                    failures.append(f"request {i}: malformed request_id "
                                    f"{request_id!r} in {status} response")
                trace_id = response.get("trace_id")
                if not (isinstance(trace_id, str)
                        and obs_log.TRACE_ID_RE.match(trace_id)):
                    failures.append(f"request {i}: malformed trace_id "
                                    f"{trace_id!r} in {status} response")
        elapsed = time.perf_counter() - started

        # The daemon must still be serving, whatever was injected.
        ping = client.ping()
        if ping.get("status") != STATUS_OK:
            failures.append(f"post-drill ping failed: {ping}")
        check = client.compile("class Survivor { }",
                               filename="survivor.maya", cache=False)
        if check.get("status") != STATUS_OK:
            failures.append(f"post-drill compile failed: {check}")

        # Live introspection: the stats op answers from the *running*
        # daemon — and flushes --metrics-out as a side effect, so the
        # snapshot CI uploads reflects the live process, not a
        # post-mortem scrape.
        stats = client.stats()
        if stats.get("status") != STATUS_OK:
            failures.append(f"stats op failed: {stats}")
        latency = stats.get("latency_ms", {})
        if not latency.get("window"):
            failures.append("stats op reported an empty latency window "
                            "after a full drill")
        if metrics_out and not os.path.exists(metrics_out):
            failures.append("stats op did not flush --metrics-out from "
                            "the live daemon")

        # Every request-scoped lifecycle event in the log must be
        # well-formed too (the crash/deadline trail is only
        # reconstructible if the ids are trustworthy).
        for record in obs_log.LOG.records(name="server.request."):
            record_id = record.get("request_id")
            if not (isinstance(record_id, str)
                    and obs_log.REQUEST_ID_RE.match(record_id)):
                failures.append(f"log event {record.get('name')} has "
                                f"malformed request_id {record_id!r}")
                break

        print(f"smoke[{scenario}]: {requests} requests in "
              f"{elapsed:.2f}s ({requests / elapsed:.1f}/s), "
              f"statuses={statuses}, workers={ping.get('workers')}, "
              f"p95={latency.get('p95', 0):.0f}ms, "
              f"log_events={stats.get('log', {}).get('emitted', 0)}")
        if scenario == "worker-hang" \
                and statuses.get(STATUS_DEADLINE, 0) < 1:
            failures.append("worker-hang drill never hit a deadline")
        if faults.active_plan() and spec \
                and faults.active_plan().fired(spec.split(":")[0]) < 1:
            failures.append(f"fault {spec!r} never fired")
    finally:
        try:
            daemon.stop()
        finally:
            if metrics_out and not os.path.exists(metrics_out):
                # The live flush never happened (the drill died early):
                # still upload post-mortem evidence.
                with open(metrics_out, "w", encoding="utf-8") as out:
                    json.dump(obs_export.to_json(REGISTRY), out, indent=2)
                    out.write("\n")
            if log_out and not os.path.exists(log_out):
                with open(log_out, "w", encoding="utf-8") as out:
                    out.write(obs_log.LOG.to_jsonl())
            faults.reset()

    for failure in failures:
        print(f"smoke[{scenario}]: FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"smoke[{scenario}]: OK")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.server.smoke",
        description="Concurrent-load + fault-injection drill for mayad.")
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                        default="none")
    parser.add_argument("--metrics-out", metavar="FILE")
    parser.add_argument("--log-out", metavar="FILE",
                        help="mirror the daemon's structured event log "
                             "to FILE as JSONL (CI uploads it on "
                             "failure)")
    args = parser.parse_args(argv)
    return run_drill(args.requests, args.scenario, args.workers,
                     args.metrics_out, args.log_out)


if __name__ == "__main__":
    sys.exit(main())
