"""The daemon smoke/fault drill CI runs.

    python -m repro.server.smoke --requests 50 [--scenario NAME]
                                 [--metrics-out FILE]

Starts an in-process daemon on an ephemeral port, fires N concurrent
client compiles, optionally arms a fault scenario, and then *proves
the daemon survived*: a final ping plus a clean compile must succeed,
and every response must be one of the scenario's expected statuses.
Exit 0 on success, 1 on any unexpected outcome — and the metrics
snapshot is written either way, so a failing drill still uploads the
evidence.

Scenarios (``--scenario``):

* ``none``          — plain load: every request must succeed;
* ``cache-corrupt`` — the on-disk table cache serves one corrupt
  entry; compiles must succeed anyway (quarantine + regenerate);
* ``worker-hang``   — one worker hangs; that request must come back
  ``deadline-exceeded`` and the pool must backfill;
* ``worker-crash``  — one worker crashes; the request must be
  re-run in degraded mode and *succeed*;
* ``modules``       — multi-file compile requests hammer the shared
  incremental module cache while one on-disk entry is served corrupt;
  every request must succeed anyway (quarantine + recompile).
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import sys
import tempfile
import time

from repro import faults
from repro.lalr.tables import enable_disk_cache
from repro.obs import export as obs_export
from repro.obs.metrics import REGISTRY
from repro.server.client import MayaClient
from repro.server.daemon import DaemonConfig, MayaDaemon
from repro.server.protocol import STATUS_DEADLINE, STATUS_OK

SOURCE_TEMPLATE = """
    import java.util.*;
    class Demo%d {
        static void main() {
            use maya.util.ForEach;
            Vector v = new Vector();
            v.addElement("smoke-%d");
            v.elements().foreach(String s) { System.out.println(s); }
        }
    }
"""

#: scenario -> (fault spec, statuses allowed beyond plain success,
#: per-request deadline in seconds).  The crash scenario's deadline
#: leaves room for the degraded re-run, which rebuilds LALR tables
#: from scratch (shared caches are deliberately bypassed).
SCENARIOS = {
    "none": ("", set(), 2.0),
    "cache-corrupt": ("cache.disk.load:corrupt:times=1", set(), 2.0),
    "worker-hang": ("worker.execute:hang:secs=5:times=1",
                    {STATUS_DEADLINE}, 2.0),
    "worker-crash": ("worker.execute:crash:times=1", set(), 15.0),
    "modules": ("cache.module.load:corrupt:times=1", set(), 5.0),
}

#: The multi-file program the ``modules`` scenario compiles: a Mayan
#: ``use``d in lib.Util reaches app.Main over the import edge, and
#: every request after the first replays both modules from the shared
#: module cache (except the one that draws the corrupt entry).
MODULE_SOURCES = {
    "lib.Util": """
        use maya.util.ForEach;
        class Util {
            static void dump(String[] items) {
                items.foreach(String s) { System.out.println(s); }
            }
        }
    """,
    "app.Main": """
        import lib.Util;
        class Main {
            static void main() {
                String[] data = new String[1];
                data[0] = "smoke";
                Util.dump(data);
            }
        }
    """,
}


def run_drill(requests: int, scenario: str, workers: int = 4,
              metrics_out: str = None) -> int:
    spec, allowed, deadline_s = SCENARIOS[scenario]
    allowed = {STATUS_OK} | allowed
    faults.configure(spec)
    # cache-corrupt needs a disk cache to corrupt.
    cache_dir = tempfile.mkdtemp(prefix="mayad-smoke-")
    enable_disk_cache(cache_dir)

    import os

    daemon = MayaDaemon(DaemonConfig(
        workers=workers, queue_size=max(16, requests),
        default_deadline_s=deadline_s,
        module_cache_dir=os.path.join(cache_dir, "modules"))).start()
    if scenario == "cache-corrupt":
        # Prewarm just wrote good table entries to disk; flushing the
        # in-memory LRU forces the drill through the on-disk loader,
        # where the armed corruption waits.
        from repro.lalr.tables import table_cache_clear

        table_cache_clear()
    failures = []
    statuses = {}
    try:
        client = MayaClient(daemon.address, retries=6)
        started = time.perf_counter()
        with concurrent.futures.ThreadPoolExecutor(
                max_workers=min(16, requests)) as pool:
            if scenario == "modules":
                futures = [
                    pool.submit(client.compile_modules,
                                MODULE_SOURCES, ["app.Main"],
                                expand=True, cache=False,
                                deadline_ms=int(deadline_s * 1000))
                    for i in range(requests)
                ]
            else:
                futures = [
                    pool.submit(client.compile,
                                SOURCE_TEMPLATE % (i, i),
                                filename=f"smoke{i}.maya", expand=True,
                                cache=False,
                                deadline_ms=int(deadline_s * 1000))
                    for i in range(requests)
                ]
            for i, future in enumerate(futures):
                response = future.result(timeout=60)
                status = str(response.get("status"))
                statuses[status] = statuses.get(status, 0) + 1
                if status not in allowed:
                    failures.append(f"request {i}: unexpected {status}: "
                                    f"{response}")
        elapsed = time.perf_counter() - started

        # The daemon must still be serving, whatever was injected.
        ping = client.ping()
        if ping.get("status") != STATUS_OK:
            failures.append(f"post-drill ping failed: {ping}")
        check = client.compile("class Survivor { }",
                               filename="survivor.maya", cache=False)
        if check.get("status") != STATUS_OK:
            failures.append(f"post-drill compile failed: {check}")

        print(f"smoke[{scenario}]: {requests} requests in "
              f"{elapsed:.2f}s ({requests / elapsed:.1f}/s), "
              f"statuses={statuses}, workers={ping.get('workers')}")
        if scenario == "worker-hang" \
                and statuses.get(STATUS_DEADLINE, 0) < 1:
            failures.append("worker-hang drill never hit a deadline")
        if faults.active_plan() and spec \
                and faults.active_plan().fired(spec.split(":")[0]) < 1:
            failures.append(f"fault {spec!r} never fired")
    finally:
        try:
            daemon.stop()
        finally:
            if metrics_out:
                with open(metrics_out, "w", encoding="utf-8") as out:
                    json.dump(obs_export.to_json(REGISTRY), out, indent=2)
                    out.write("\n")
            faults.reset()

    for failure in failures:
        print(f"smoke[{scenario}]: FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"smoke[{scenario}]: OK")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.server.smoke",
        description="Concurrent-load + fault-injection drill for mayad.")
    parser.add_argument("--requests", type=int, default=50)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                        default="none")
    parser.add_argument("--metrics-out", metavar="FILE")
    args = parser.parse_args(argv)
    return run_drill(args.requests, args.scenario, args.workers,
                     args.metrics_out)


if __name__ == "__main__":
    sys.exit(main())
