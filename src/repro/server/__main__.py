"""mayad: run the compile daemon from the command line.

    python -m repro.server [options]

Options:
    --host HOST        bind address (default 127.0.0.1)
    --port PORT        TCP port (default 7463; 0 = ephemeral)
    --socket PATH      serve on a Unix socket instead of TCP
    --workers N        worker threads (default 4)
    --queue-size N     admission-control queue bound (default 16)
    --deadline S       default per-request deadline seconds (default 30)
    --max-deadline S   hard cap on client-requested deadlines
    --no-prewarm       skip warming the base/macro grammar tables
    --table-cache DIR  persist LALR tables under DIR (MAYA_TABLE_CACHE)
    --port-file FILE   write the bound address to FILE once serving
                       (for scripts using --port 0)
    --metrics-out FILE JSON metrics snapshot target: written on
                       shutdown, and *live* on SIGUSR1 or any `stats`
                       op (``mayac --daemon-status`` refreshes it)
    --log-out FILE     mirror the structured event log to FILE as JSONL
                       (a flight recorder; same schema as --trace-out)
    --log-level LEVEL  event-log threshold (debug/info/warn/error)
    --slow-ms MS       slow-request log threshold (default 1000)
    --no-trace-requests  disable per-request span tracing

The daemon serves until SIGINT/SIGTERM, then drains and exits 0.
SIGUSR1 flushes a fresh metrics snapshot to --metrics-out without
stopping anything.  Fault injection for drills: set MAYA_FAULTS (see
repro.faults).
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro.obs import log as obs_log
from repro.server.client import DEFAULT_PORT
from repro.server.daemon import DaemonConfig, MayaDaemon


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mayad", description="Run the Maya compile daemon.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--socket", metavar="PATH", default=None)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-size", type=int, default=16)
    parser.add_argument("--deadline", type=float, default=30.0,
                        metavar="S")
    parser.add_argument("--max-deadline", type=float, default=120.0,
                        metavar="S")
    parser.add_argument("--no-prewarm", action="store_true")
    parser.add_argument("--table-cache", metavar="DIR")
    parser.add_argument("--port-file", metavar="FILE")
    parser.add_argument("--metrics-out", metavar="FILE")
    parser.add_argument("--log-out", metavar="FILE")
    parser.add_argument("--log-level", choices=sorted(obs_log.LEVELS),
                        default=None)
    parser.add_argument("--slow-ms", type=float, default=1000.0,
                        metavar="MS")
    parser.add_argument("--no-trace-requests", action="store_true")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.table_cache:
        from repro.lalr.tables import enable_disk_cache

        enable_disk_cache(args.table_cache)
    config = DaemonConfig(
        host=args.host, port=args.port, socket_path=args.socket,
        workers=args.workers, queue_size=args.queue_size,
        default_deadline_s=args.deadline,
        max_deadline_s=args.max_deadline, prewarm=not args.no_prewarm,
        trace_requests=not args.no_trace_requests,
        slow_request_ms=args.slow_ms,
        metrics_out=args.metrics_out,
        log_out=args.log_out, log_level=args.log_level)
    daemon = MayaDaemon(config)
    try:
        daemon.start()
    except OSError as error:
        print(f"mayad: cannot bind {args.socket or args.port}: {error}",
              file=sys.stderr)
        return 1
    print(f"mayad: serving on {daemon.address} "
          f"(workers={config.workers}, queue={config.queue_size}, "
          f"prewarm={daemon.prewarm_s * 1000:.0f}ms)", file=sys.stderr)
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as out:
            out.write(daemon.address + "\n")

    stop = threading.Event()

    def _signalled(_signum, _frame):
        stop.set()

    signal.signal(signal.SIGINT, _signalled)
    signal.signal(signal.SIGTERM, _signalled)
    if hasattr(signal, "SIGUSR1"):
        # Live introspection without a client: kill -USR1 flushes the
        # current metrics to --metrics-out (a no-op when unset).
        def _flush(_signum, _frame):
            daemon.flush_metrics()

        signal.signal(signal.SIGUSR1, _flush)
    # Wake on a signal or on a client-initiated shutdown op.
    while not stop.is_set() and daemon.running:
        stop.wait(0.5)
    print("mayad: draining and stopping", file=sys.stderr)
    daemon.stop()
    daemon.flush_metrics()
    return 0


if __name__ == "__main__":
    sys.exit(main())
