"""maya-top: a live terminal view of one running mayad.

    python -m repro.server.top --address HOST:PORT [--interval S]

Polls the daemon's ``stats`` op and renders the snapshot the way
``top`` renders a process table: uptime, worker states, queue
occupancy, rolling latency percentiles, degradation counters, cache
hit ratios, and the tail of the slow-request log.  The same renderer
backs ``mayac --daemon-status`` (one-shot, no screen clearing).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.server.client import DEFAULT_PORT, DaemonError, MayaClient


def _bar(used: int, total: int, width: int = 20) -> str:
    total = max(total, 1)
    filled = min(width, round(width * used / total))
    return "[" + "#" * filled + "." * (width - filled) + f"] {used}/{total}"


def render_stats(stats: dict) -> str:
    """One ``stats`` response as human-readable text."""
    lines: List[str] = []
    uptime = float(stats.get("uptime_s", 0.0))
    lines.append(f"mayad {stats.get('address', '?')}  "
                 f"up {uptime:.1f}s  protocol {stats.get('protocol')}")

    workers = stats.get("workers", {})
    lines.append(
        f"workers  {_bar(int(workers.get('busy', 0)), int(workers.get('live', 1)))} busy"
        f"  zombies={workers.get('zombies', 0)}"
        f"  replaced={workers.get('replaced_total', 0)}")
    queue = stats.get("queue", {})
    lines.append(
        f"queue    {_bar(int(queue.get('depth', 0)), int(queue.get('capacity', 1)))} deep")

    latency = stats.get("latency_ms", {})
    lines.append(
        f"latency  p50={latency.get('p50', 0.0):.1f}ms"
        f"  p95={latency.get('p95', 0.0):.1f}ms"
        f"  p99={latency.get('p99', 0.0):.1f}ms"
        f"  (window={latency.get('window', 0)})")

    degradations = stats.get("degradations", {})
    crashes = degradations.get("crashes", {})
    lines.append(
        f"degrade  shed={degradations.get('shed_total', 0)}"
        f"  deadline={degradations.get('deadline_total', 0)}"
        f"  crashes={sum(crashes.values()) if crashes else 0}"
        f"{' (' + ', '.join(f'{k}={v}' for k, v in sorted(crashes.items())) + ')' if crashes else ''}"
        f"  disconnects={degradations.get('disconnects_total', 0)}")

    requests = stats.get("requests", {})
    if requests:
        parts = []
        for op in sorted(requests):
            total = sum(requests[op].values())
            parts.append(f"{op}={int(total)}")
        lines.append("requests " + "  ".join(parts))

    modules = stats.get("modules", {})
    if modules.get("compiled_total") or modules.get("reused_total"):
        compiled = int(modules.get("compiled_total", 0))
        reused = int(modules.get("reused_total", 0))
        ratio = reused / max(compiled + reused, 1)
        lines.append(f"modules  compiled={compiled}  reused={reused}"
                     f"  reuse-ratio={ratio:.1%}")

    caches = stats.get("caches", {})
    cache_parts = []
    for name in sorted(caches):
        if name == "epochs":
            continue
        ratio = caches[name].get("hit_ratio")
        if ratio is not None:
            cache_parts.append(f"{name}={ratio:.0%}")
    if cache_parts:
        lines.append("caches   " + "  ".join(cache_parts))
    epochs = caches.get("epochs", {})
    if epochs:
        lines.append("epochs   " + "  ".join(
            f"{name}={int(value)}" for name, value in sorted(epochs.items())))

    log = stats.get("log", {})
    if log:
        lines.append(f"log      level={log.get('level')}"
                     f"  emitted={log.get('emitted', 0)}"
                     f"  buffered={log.get('buffered', 0)}")

    faults_spec = stats.get("faults")
    if faults_spec:
        lines.append(f"faults   {faults_spec}")

    slow = stats.get("slow_requests", [])
    if slow:
        lines.append(f"slow requests (>{stats.get('slow_request_ms', 0):.0f}ms,"
                     f" last {len(slow)}):")
        for entry in slow[-5:]:
            phases = entry.get("phases", {})
            top_phase = max(phases.items(), key=lambda kv: kv[1])[0] \
                if phases else "?"
            lines.append(
                f"  {entry.get('request_id')}  {entry.get('total_ms', 0):.0f}ms"
                f"  {entry.get('status')}  {entry.get('filename', '')}"
                f"  hottest={top_phase}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="maya-top", description="Watch a running mayad.")
    parser.add_argument("--address", default=f"127.0.0.1:{DEFAULT_PORT}",
                        help="daemon address (host:port or socket path)")
    parser.add_argument("--interval", type=float, default=2.0,
                        metavar="S", help="refresh period (default 2s)")
    parser.add_argument("--iterations", type=int, default=0, metavar="N",
                        help="stop after N refreshes (0 = forever)")
    parser.add_argument("--once", action="store_true",
                        help="print one snapshot and exit (no clearing)")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    client = MayaClient(args.address, retries=0, timeout_s=5.0)
    count = 0
    while True:
        try:
            stats = client.stats()
        except DaemonError as error:
            print(f"maya-top: {error}", file=sys.stderr)
            return 1
        text = render_stats(stats)
        if args.once:
            print(text)
            return 0
        # ANSI clear + home, like watch(1); fall back to a separator
        # when stdout is not a terminal.
        if sys.stdout.isatty():
            sys.stdout.write("\x1b[2J\x1b[H")
        else:
            sys.stdout.write("\n---\n")
        sys.stdout.write(text + "\n")
        sys.stdout.flush()
        count += 1
        if args.iterations and count >= args.iterations:
            return 0
        time.sleep(max(0.1, args.interval))


if __name__ == "__main__":
    sys.exit(main())
