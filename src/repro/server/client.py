"""maya-client: the thin front end for a running mayad.

One connection per request keeps the failure model simple: any
transport error leaves no half-open protocol state to resynchronize.
Compiles are idempotent (the daemon's artifact cache is
content-addressed), so the client retries *transient* failures —
connection refused/reset, and ``overloaded``/``shutting-down``
responses — with jittered exponential backoff; everything else
(compile errors, deadline hits, crashes) is surfaced to the caller
immediately.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Optional

from repro.obs import log as obs_log
from repro.obs.metrics import REGISTRY
from repro.server import protocol

RETRIES = REGISTRY.counter(
    "maya_client_retries_total", "Client-side retries by trigger.",
    labelnames=("reason",))

#: Default TCP port ("MAYA" on a phone keypad, truncated).
DEFAULT_PORT = 7463


def parse_address(address: str):
    """``host:port`` -> (host, port); anything with a ``/`` is a Unix
    socket path."""
    if "/" in address:
        return address
    host, sep, port = address.rpartition(":")
    if not sep:
        return address, DEFAULT_PORT
    try:
        return (host or "127.0.0.1"), int(port)
    except ValueError:
        raise ValueError(f"bad daemon address {address!r} "
                         f"(expected host:port or a socket path)") from None


class DaemonError(Exception):
    """A non-OK daemon response, or the daemon being unreachable."""

    def __init__(self, message: str, status: str = "unreachable",
                 response: Optional[dict] = None):
        super().__init__(message)
        self.status = status
        self.response = response or {}

    def rendered(self) -> str:
        """Caret-style text for every diagnostic in the response."""
        parts = [d.get("rendered") or d.get("message", "")
                 for d in self.response.get("diagnostics", ())]
        return "\n".join(p for p in parts if p) or str(self)


class MayaClient:
    """A client for one mayad address, with transient-failure retry."""

    def __init__(self, address: str, retries: int = 4,
                 backoff_s: float = 0.05, backoff_cap_s: float = 2.0,
                 timeout_s: float = 60.0,
                 rng: Optional[random.Random] = None):
        self.address = parse_address(address)
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.timeout_s = timeout_s
        self._rng = rng if rng is not None else random.Random()

    # -- transport ---------------------------------------------------------

    def _connect(self) -> socket.socket:
        if isinstance(self.address, str):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout_s)
            sock.connect(self.address)
        else:
            sock = socket.create_connection(self.address,
                                            timeout=self.timeout_s)
        return sock

    def _once(self, payload: dict) -> dict:
        sock = self._connect()
        try:
            protocol.send_frame(sock, payload)
            response = protocol.recv_frame(sock)
        finally:
            try:
                sock.close()
            except OSError:
                pass
        if response is None:
            raise protocol.ProtocolError(
                "daemon closed the connection without answering")
        return response

    def request(self, op: str, **payload) -> dict:
        """Send one request, retrying transient failures with jittered
        exponential backoff.  Returns the (possibly non-OK) response.

        The client mints the ``trace_id`` — one per *logical* request,
        minted before the first attempt, so every retry (and the
        daemon-side degraded re-run of any attempt) shares it.  A
        caller already inside a request scope propagates that scope's
        trace instead.
        """
        payload = {"op": op, **payload}
        if "trace_id" not in payload:
            context = obs_log.current_request()
            payload["trace_id"] = (context.trace_id if context is not None
                                   else obs_log.mint_trace_id())
        attempt = 0
        while True:
            reason = None
            try:
                response = self._once(payload)
                if response.get("status") \
                        not in protocol.RETRYABLE_STATUSES:
                    return response
                reason = str(response.get("status"))
            except (ConnectionError, socket.timeout,
                    protocol.ProtocolError, OSError) as error:
                reason = "connection"
                if attempt >= self.retries:
                    raise DaemonError(
                        f"daemon at {self.address} unreachable after "
                        f"{attempt + 1} attempts: {error}") from error
            if attempt >= self.retries:
                return response
            RETRIES.labels(reason=reason).inc()
            obs_log.emit("client.retry", level="warn", op=op,
                         reason=reason, attempt=attempt + 1,
                         trace_id=payload["trace_id"])
            time.sleep(self._backoff(attempt, response
                                     if reason != "connection" else None))
            attempt += 1

    def _backoff(self, attempt: int, response: Optional[dict]) -> float:
        """Exponential backoff with full jitter; an explicit
        ``retry_after_ms`` hint from admission control sets the floor."""
        delay = min(self.backoff_cap_s, self.backoff_s * (2 ** attempt))
        delay *= 0.5 + self._rng.random() / 2.0
        if response is not None:
            hint = response.get("retry_after_ms")
            if isinstance(hint, (int, float)):
                delay = max(delay, float(hint) / 1000.0)
        return delay

    # -- operations --------------------------------------------------------

    def compile(self, source: str, filename: str = "<client>",
                **options) -> dict:
        deadline_ms = options.pop("deadline_ms", None)
        if deadline_ms is not None:
            options["deadline_ms"] = deadline_ms
        return self.request("compile", source=source, filename=filename,
                            options=options)

    def compile_modules(self, sources: dict, roots, **options) -> dict:
        """Compile a multi-file program: ``sources`` maps module names
        to source text, ``roots`` lists the entry modules.

        ``options['jobs']`` caps how many of the request's independent
        modules the daemon builds concurrently on its worker pool
        (default: the pool size; output is byte-identical to 1)."""
        return self.request("compile", sources=dict(sources),
                            roots=list(roots), options=options)

    def ping(self) -> dict:
        return self.request("ping")

    def stats(self) -> dict:
        """The daemon's live introspection snapshot (``stats`` op)."""
        response = self.request("stats")
        if response.get("status") != protocol.STATUS_OK:
            raise DaemonError("stats request failed",
                              status=str(response.get("status")),
                              response=response)
        return response

    def metrics(self) -> dict:
        response = self.request("metrics")
        if response.get("status") != protocol.STATUS_OK:
            raise DaemonError("metrics request failed",
                              status=str(response.get("status")),
                              response=response)
        return response["metrics"]

    def shutdown(self) -> dict:
        return self.request("shutdown")
