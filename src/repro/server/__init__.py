"""repro.server: the ``mayad`` compile service.

A long-running daemon that amortizes grammar building, LALR table
generation, and plan caching across compile requests — the paper's
mayac as a multi-tenant service.  The package splits into:

* :mod:`repro.server.protocol` — the length-prefixed JSON wire format
  and the structured response codes;
* :mod:`repro.server.state` — the shared read-only cache layer
  (epoch/snapshot handoff, the content-addressed artifact cache);
* :mod:`repro.server.daemon` — :class:`MayaDaemon`: listener,
  admission control, the worker pool with crash containment;
* :mod:`repro.server.client` — :class:`MayaClient` with retry and
  jittered exponential backoff;
* :mod:`repro.server.smoke` — the self-contained smoke/fault drill
  CI runs (``python -m repro.server.smoke``).

Run the daemon with ``python -m repro.server`` (see ``--help``);
point ``mayac --daemon HOST:PORT`` or :class:`MayaClient` at it.
"""

from repro.server.client import DaemonError, MayaClient, parse_address
from repro.server.daemon import DaemonConfig, MayaDaemon

__all__ = [
    "DaemonConfig",
    "DaemonError",
    "MayaClient",
    "MayaDaemon",
    "parse_address",
]
