"""AST node classes.

Every node carries:

* ``location`` — source position,
* ``syntax`` — the (production, child values) pair recorded when the
  parser reduced it, used by structure specializers and ``syntax case``
  pattern matching,
* ``scope`` — the lexical scope in effect where the node was parsed
  (set by the compiler), which is how ``get_static_type`` works without
  arguments, as in the paper's reflection API.

The class hierarchy itself is the node-type lattice that Mayan dispatch
compares with: ``MethodInvocation`` is more specific than ``Primary``,
which is more specific than ``Expression``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from repro.lexer import Location

__all__ = [
    "ArrayAccess",
    "ArrayInitializer",
    "Assignment",
    "BinaryExpr",
    "Block",
    "BlockStmts",
    "BreakStmt",
    "CastExpr",
    "CatchClause",
    "ClassDecl",
    "CompilationUnit",
    "ConditionalExpr",
    "ConstructorDecl",
    "ContinueStmt",
    "DeclStmt",
    "Declaration",
    "DoStmt",
    "EmptyStmt",
    "Expression",
    "ExprStmt",
    "FieldAccess",
    "FieldDecl",
    "ForStmt",
    "Formal",
    "Ident",
    "IfStmt",
    "ImportDecl",
    "InstanceofExpr",
    "InterfaceDecl",
    "LazyNode",
    "Literal",
    "LocalVarDecl",
    "MemberDecl",
    "MethodDecl",
    "MethodInvocation",
    "MethodName",
    "NameExpr",
    "NewArray",
    "NewObject",
    "Node",
    "PackageDecl",
    "ParenExpr",
    "PostfixExpr",
    "Primary",
    "Reference",
    "ReturnStmt",
    "Statement",
    "StrictTypeName",
    "SuperExpr",
    "SyntaxList",
    "ThisExpr",
    "ThrowStmt",
    "TryStmt",
    "TypeDecl",
    "TypeName",
    "UnaryExpr",
    "UseDecl",
    "VarDeclaration",
    "UseStmt",
    "VarDeclarator",
    "WhileStmt",
    "structurally_equal",
]


def _kind_tag(class_name: str) -> str:
    """snake_case tag for a node class name (MethodInvocation ->
    method_invocation)."""
    return re.sub(r"(?<!^)(?=[A-Z])", "_", class_name).lower()


class Node:
    """Base class for all AST nodes."""

    _fields: Tuple[str, ...] = ()

    #: Provenance: the expansion that produced this node (a
    #: ``repro.trace.Origin``), or None for user-written syntax.  A
    #: class attribute so ordinary nodes pay nothing; stamped as an
    #: instance attribute on nodes built during Mayan activations.
    origin = None

    #: Stable node-kind tag: the snake_case class name, assigned
    #: automatically for every subclass.  The closure backend dispatches
    #: its one-pass compiler on these strings (and uses them in
    #: telemetry labels) instead of on class identity.
    node_kind = "node"

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        cls.node_kind = _kind_tag(cls.__name__)

    def __init__(self, *args, location: Location = Location.UNKNOWN):
        if len(args) != len(self._fields):
            raise TypeError(
                f"{type(self).__name__} takes {len(self._fields)} fields "
                f"{self._fields}, got {len(args)}"
            )
        for name, value in zip(self._fields, args):
            setattr(self, name, value)
        self.location = location
        self.syntax: Optional[Tuple[object, Tuple[object, ...]]] = None
        self.scope = None

    def fields(self):
        return [(name, getattr(self, name)) for name in self._fields]

    def children(self) -> List["Node"]:
        out: List[Node] = []
        for _, value in self.fields():
            _collect_nodes(value, out)
        return out

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields())
        return f"{type(self).__name__}({inner})"

    # -- reflection-style API (paper section 3.2) ------------------------

    def get_static_type(self):
        """The static type of this node, per the lazily-run checker.

        Only meaningful for expressions; requires the compiler to have
        attached a scope (it does so during parsing).
        """
        from repro.typecheck import static_type_of

        return static_type_of(self)

    def get_location(self) -> Location:
        return self.location


def _collect_nodes(value, out: List[Node]) -> None:
    if isinstance(value, Node):
        out.append(value)
    elif isinstance(value, (list, tuple)):
        for element in value:
            _collect_nodes(element, out)


def structurally_equal(a, b) -> bool:
    """Structural AST equality, ignoring locations, scopes, and laziness."""
    a = a.force() if isinstance(a, LazyNode) and a.is_forced() else a
    b = b.force() if isinstance(b, LazyNode) and b.is_forced() else b
    if isinstance(a, Node) and isinstance(b, Node):
        if type(a) is not type(b):
            return False
        return all(
            structurally_equal(x, y)
            for (_, x), (_, y) in zip(a.fields(), b.fields())
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(
            structurally_equal(x, y) for x, y in zip(a, b)
        )
    return a == b


# ---------------------------------------------------------------------------
# Leaves and names
# ---------------------------------------------------------------------------


class SyntaxList(Node):
    """The value of a multi-symbol subtree group in a user production.

    The paper's G0-style actions "produce AST nodes from unstructured
    subtrees"; for groups containing several symbols the node is simply
    the sequence of child values, structurally matchable.
    """

    _fields = ("values",)

    def __getitem__(self, index):
        return self.values[index]

    def __len__(self):
        return len(self.values)


class Ident(Node):
    """An identifier occurrence (declared name or name segment)."""

    _fields = ("name",)

    name: str

    def __str__(self) -> str:
        return self.name

    def get_name(self) -> str:
        return self.name


class TypeName(Node):
    """A syntactic type: dotted name or primitive keyword, plus dims."""

    _fields = ("base", "dims")

    base: Tuple[str, ...]  # ("java","util","Vector") or ("int",)
    dims: int

    def __str__(self) -> str:
        return ".".join(self.base) + "[]" * self.dims


class StrictTypeName(TypeName):
    """A type name resolved directly to a Type object.

    This is the paper's referential-transparency device: templates embed
    StrictTypeNames so the generated code means the same type regardless
    of names in scope at the expansion site.  Built with
    ``StrictTypeName.make(type_object)``.
    """

    _fields = ("base", "dims", "type")

    @classmethod
    def make(cls, type_object) -> "StrictTypeName":
        base, dims = type_object.syntax_parts()
        return cls(base, dims, type_object)

    def __str__(self) -> str:
        return str(self.type)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression(Node):
    """Base class of all expressions."""


class Primary(Expression):
    """Expressions usable as a field-access/array-access receiver."""


class Literal(Primary):
    _fields = ("kind", "value")

    kind: str  # int, long, double, char, String, boolean, null
    value: object


class NameExpr(Expression):
    """A dotted name in expression position ("ambiguous name", JLS 6.5).

    The type checker reclassifies the segments as a local variable,
    field chain, or type prefix; ``resolution`` caches the result.
    """

    _fields = ("parts",)

    parts: Tuple[str, ...]

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.resolution = None

    def __str__(self) -> str:
        return ".".join(self.parts)


class Reference(Expression):
    """A direct reference to a variable binding, bypassing name lookup.

    ``Reference.make_expr(binding)`` is the paper's
    ``Reference.makeExpr``: it generates a reference to a local variable
    (or field) directly rather than an occurrence of its name, so
    hygiene renaming and shadowing cannot affect it.
    """

    _fields = ("binding",)

    @classmethod
    def make_expr(cls, binding) -> "Reference":
        return cls(binding)

    # Paper-style alias.
    makeExpr = make_expr


class ThisExpr(Primary):
    _fields = ()


class SuperExpr(Expression):
    _fields = ()


class ParenExpr(Primary):
    _fields = ("inner",)


class FieldAccess(Primary):
    _fields = ("receiver", "name")  # receiver: Expression | SuperExpr


class ArrayAccess(Primary):
    _fields = ("array", "index")


class MethodName(Node):
    """Everything left of ``(`` in a method invocation (paper 3.1).

    ``receiver`` is None for plain/dotted names (carried in ``parts``),
    or an Expression (explicit receiver) / SuperExpr.
    """

    _fields = ("receiver", "parts")

    receiver: Optional[Expression]
    parts: Tuple[str, ...]

    @property
    def simple_name(self) -> str:
        return self.parts[-1]


class MethodInvocation(Primary):
    _fields = ("method", "args")

    method: MethodName
    args: List[Expression]


class NewObject(Primary):
    _fields = ("type_name", "args")


class NewArray(Primary):
    _fields = ("element_type", "dim_exprs", "extra_dims", "initializer")


class ArrayInitializer(Expression):
    _fields = ("elements",)


class UnaryExpr(Expression):
    _fields = ("op", "operand")


class PostfixExpr(Expression):
    _fields = ("op", "operand")


class BinaryExpr(Expression):
    _fields = ("op", "left", "right")


class InstanceofExpr(Expression):
    _fields = ("expr", "type_name")


class CastExpr(Expression):
    _fields = ("type_name", "expr")


class Assignment(Expression):
    _fields = ("lhs", "op", "value")


class ConditionalExpr(Expression):
    _fields = ("cond", "then_expr", "else_expr")


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement(Node):
    """Base class of all statements."""


class BlockStmts(Node):
    """An ordered statement list (the content of a block)."""

    _fields = ("stmts",)

    stmts: List[Statement]

    #: Stamped by the checker: how many bindings the enclosing method
    #: had declared when this block finished checking.  On a method's
    #: outermost body block this is the full per-method count, which the
    #: closure backend uses to size slot frames.  None when unchecked.
    declared_locals: Optional[int] = None


class Block(Statement):
    _fields = ("body",)

    body: BlockStmts


class EmptyStmt(Statement):
    _fields = ()


class ExprStmt(Statement):
    _fields = ("expr",)


class VarDeclarator(Node):
    _fields = ("name", "dims", "init")

    name: Ident
    dims: int
    init: Optional[Expression]


class LocalVarDecl(Statement):
    _fields = ("modifiers", "type_name", "declarators")

    def bindings(self):
        """The (name Ident, extra dims, init) triples declared here."""
        return [(d.name, d.dims, d.init) for d in self.declarators]

    @classmethod
    def make(cls, formal: "Formal") -> "LocalVarDecl":
        """Translate a formal parameter into a declaration statement.

        This is the paper's ``DeclStmt.make(var)`` (figure 2, line 12).
        """
        declarator = VarDeclarator(formal.name, 0, None, location=formal.location)
        return cls(list(formal.modifiers), formal.type_name, [declarator],
                   location=formal.location)


# Paper-style alias: DeclStmt.make(...)
DeclStmt = LocalVarDecl


class IfStmt(Statement):
    _fields = ("cond", "then_stmt", "else_stmt")


class WhileStmt(Statement):
    _fields = ("cond", "body")


class DoStmt(Statement):
    _fields = ("body", "cond")


class ForStmt(Statement):
    _fields = ("init", "cond", "update", "body")


class ReturnStmt(Statement):
    _fields = ("expr",)


class ThrowStmt(Statement):
    _fields = ("expr",)


class BreakStmt(Statement):
    _fields = ()


class ContinueStmt(Statement):
    _fields = ()


class CatchClause(Node):
    _fields = ("formal", "body")


class TryStmt(Statement):
    _fields = ("body", "catches", "finally_body")


class UseStmt(Statement):
    """A metaprogram import scoped over the following statements.

    "UseStmt nodes contain the metaprogram that is imported and the list
    of statements in which it is visible" (paper section 3.3).
    """

    _fields = ("metaprogram", "body")


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


class Declaration(Node):
    """Base class for top-level and member declarations."""


class Formal(Declaration):
    _fields = ("modifiers", "type_name", "name")

    name: Ident

    def get_type(self):
        """The resolved Type of this formal (reflection API)."""
        from repro.typecheck import resolve_type_name

        return resolve_type_name(self.type_name, self.scope)


class VarDeclaration(Formal):
    """Paper-compatible alias used in reflection examples."""


class PackageDecl(Declaration):
    _fields = ("parts",)


class ImportDecl(Declaration):
    _fields = ("parts", "on_demand")


class UseDecl(Declaration):
    """A ``use`` directive at class-body or top level."""

    _fields = ("parts",)


class TypeDecl(Declaration):
    """Base for class and interface declarations."""


class ClassDecl(TypeDecl):
    _fields = ("modifiers", "name", "superclass", "interfaces", "members")

    name: Ident


class InterfaceDecl(TypeDecl):
    _fields = ("modifiers", "name", "superinterfaces", "members")


class MemberDecl(Declaration):
    """Base for class-body member declarations."""


class FieldDecl(MemberDecl):
    _fields = ("modifiers", "type_name", "declarators")


class MethodDecl(MemberDecl):
    _fields = ("modifiers", "return_type", "name", "formals", "throws", "body")

    name: Ident
    body: object  # LazyNode | BlockStmts | None (abstract)


class ConstructorDecl(MemberDecl):
    _fields = ("modifiers", "name", "formals", "throws", "body")


class CompilationUnit(Node):
    _fields = ("package", "imports", "types")


# ---------------------------------------------------------------------------
# Laziness
# ---------------------------------------------------------------------------


class LazyNode(Node):
    """A lazily parsed piece of syntax (paper's lazy-block values).

    ``force(scope)`` parses the captured tokens with the captured
    compilation environment; the *variable* scope is supplied at force
    time because the surrounding expansion may have created bindings
    (e.g. the loop variable of foreach) that must be visible inside.
    """

    _fields = ("tree_token", "symbol")

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._forced = None
        self._parse = None  # installed by the compiler

    def is_forced(self) -> bool:
        return self._forced is not None

    def force(self, scope=None):
        if self._forced is None:
            if self._parse is None:
                raise RuntimeError("LazyNode has no parse environment")
            self._forced = self._parse(scope)
        return self._forced
