"""Typed abstract syntax trees for the Java subset.

AST nodes are well typed (the paper's guarantee that Mayans produce
valid trees); each node remembers the production and child values that
built it, which is what structural pattern matching and structure
specializers dispatch on.
"""

from repro.ast.nodes import *  # noqa: F401,F403
from repro.ast.nodes import __all__ as _node_names
from repro.ast.unparse import to_source

__all__ = list(_node_names) + ["to_source"]
