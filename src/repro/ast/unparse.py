"""Unparser: AST back to Java-subset source text.

Used by tests and examples to display expansions the way the paper's
listings do.  Lazy nodes are forced if they already have a parse
environment; otherwise they print as their raw token text.

``provenance=True`` annotates generated *statements* with their origin
(``/* from <Mayan> @ <use-site> */``), so expanded output shows which
rewrite produced each line (``mayac --expand --provenance``).
"""

from __future__ import annotations

from typing import List

from repro.ast import nodes as n

_INDENT = "    "


def to_source(node, indent: int = 0, provenance: bool = False) -> str:
    """Render a node (or statement list) as source text."""
    return _Unparser(indent, provenance).render(node)


class _Unparser:
    def __init__(self, indent: int = 0, provenance: bool = False):
        self.indent = indent
        self.provenance = provenance

    def render(self, node) -> str:
        if node is None:
            return ""
        if isinstance(node, list):
            return "\n".join(self._with_origin(self.render(element), element)
                             for element in node)
        method = getattr(self, "_render_" + type(node).__name__, None)
        if method is None:
            for klass in type(node).__mro__:
                method = getattr(self, "_render_" + klass.__name__, None)
                if method is not None:
                    break
        if method is None:
            raise TypeError(f"cannot unparse {type(node).__name__}")
        return method(node)

    def _with_origin(self, text: str, node) -> str:
        """Provenance annotation for one statement-list element (only
        top-of-line statements are annotated, so expressions and inline
        sub-statements never grow comments mid-line)."""
        if not self.provenance or not text or not isinstance(node, n.Statement):
            return text
        origin = getattr(node, "origin", None)
        if origin is None:
            return text
        head, newline, rest = text.partition("\n")
        return f"{head}  /* from {origin.brief()} */{newline}{rest}"

    # -- helpers -------------------------------------------------------

    def _pad(self) -> str:
        return _INDENT * self.indent

    def _stmt_block(self, stmts) -> str:
        inner = _Unparser(self.indent + 1, self.provenance)
        lines = [inner._with_origin(inner.render(stmt), stmt)
                 for stmt in stmts]
        body = "\n".join(line for line in lines if line)
        if body:
            return "{\n" + body + "\n" + self._pad() + "}"
        return "{ }"

    def _mods(self, modifiers) -> str:
        return "".join(str(m) + " " for m in modifiers)

    # -- leaves ----------------------------------------------------------

    def _render_Ident(self, node) -> str:
        return node.name

    def _render_TypeName(self, node) -> str:
        return str(node)

    def _render_Token(self, token) -> str:  # pragma: no cover - debug aid
        return token.source_text()

    # -- expressions -----------------------------------------------------

    def _render_Literal(self, node) -> str:
        if node.kind == "String":
            return '"%s"' % _escape(node.value)
        if node.kind == "char":
            return "'%s'" % _escape(node.value)
        if node.kind == "boolean":
            return "true" if node.value else "false"
        if node.kind == "null":
            return "null"
        return str(node.value)

    def _render_NameExpr(self, node) -> str:
        return ".".join(node.parts)

    def _render_Reference(self, node) -> str:
        return node.binding.name

    def _render_ThisExpr(self, node) -> str:
        return "this"

    def _render_SuperExpr(self, node) -> str:
        return "super"

    def _render_ParenExpr(self, node) -> str:
        return f"({self.render(node.inner)})"

    def _render_FieldAccess(self, node) -> str:
        return f"{self.render(node.receiver)}.{node.name}"

    def _render_ArrayAccess(self, node) -> str:
        return f"{self.render(node.array)}[{self.render(node.index)}]"

    def _render_MethodName(self, node) -> str:
        if node.receiver is not None:
            return f"{self.render(node.receiver)}.{'.'.join(node.parts)}"
        return ".".join(node.parts)

    def _render_MethodInvocation(self, node) -> str:
        args = ", ".join(self.render(a) for a in node.args)
        return f"{self.render(node.method)}({args})"

    def _render_NewObject(self, node) -> str:
        args = ", ".join(self.render(a) for a in node.args)
        return f"new {self.render(node.type_name)}({args})"

    def _render_NewArray(self, node) -> str:
        dims = "".join(f"[{self.render(d)}]" for d in node.dim_exprs)
        dims += "[]" * node.extra_dims
        init = f" {self.render(node.initializer)}" if node.initializer else ""
        return f"new {self.render(node.element_type)}{dims}{init}"

    def _render_ArrayInitializer(self, node) -> str:
        return "{ " + ", ".join(self.render(e) for e in node.elements) + " }"

    def _render_UnaryExpr(self, node) -> str:
        return f"{node.op}{self.render(node.operand)}"

    def _render_PostfixExpr(self, node) -> str:
        return f"{self.render(node.operand)}{node.op}"

    def _render_BinaryExpr(self, node) -> str:
        return f"{self.render(node.left)} {node.op} {self.render(node.right)}"

    def _render_InstanceofExpr(self, node) -> str:
        return f"{self.render(node.expr)} instanceof {self.render(node.type_name)}"

    def _render_CastExpr(self, node) -> str:
        return f"({self.render(node.type_name)}) {self.render(node.expr)}"

    def _render_Assignment(self, node) -> str:
        return f"{self.render(node.lhs)} {node.op} {self.render(node.value)}"

    def _render_ConditionalExpr(self, node) -> str:
        return (
            f"{self.render(node.cond)} ? {self.render(node.then_expr)}"
            f" : {self.render(node.else_expr)}"
        )

    # -- statements -----------------------------------------------------

    def _render_BlockStmts(self, node) -> str:
        return self.render(node.stmts)

    def _render_Block(self, node) -> str:
        return self._pad() + self._stmt_block(node.body.stmts)

    def _render_EmptyStmt(self, node) -> str:
        return self._pad() + ";"

    def _render_ExprStmt(self, node) -> str:
        return self._pad() + self.render(node.expr) + ";"

    def _render_VarDeclarator(self, node) -> str:
        text = node.name.name + "[]" * node.dims
        if node.init is not None:
            text += " = " + self.render(node.init)
        return text

    def _render_LocalVarDecl(self, node) -> str:
        decls = ", ".join(self._render_VarDeclarator(d) for d in node.declarators)
        return (
            self._pad()
            + self._mods(node.modifiers)
            + f"{self.render(node.type_name)} {decls};"
        )

    def _render_IfStmt(self, node) -> str:
        text = self._pad() + f"if ({self.render(node.cond)}) "
        text += self._inline_stmt(node.then_stmt)
        if node.else_stmt is not None:
            text += " else " + self._inline_stmt(node.else_stmt)
        return text

    def _inline_stmt(self, stmt) -> str:
        rendered = self.render(stmt)
        return rendered[len(self._pad()):] if rendered.startswith(self._pad()) else rendered

    def _render_WhileStmt(self, node) -> str:
        return (
            self._pad()
            + f"while ({self.render(node.cond)}) "
            + self._inline_stmt(node.body)
        )

    def _render_DoStmt(self, node) -> str:
        return (
            self._pad()
            + "do "
            + self._inline_stmt(node.body)
            + f" while ({self.render(node.cond)});"
        )

    def _render_ForStmt(self, node) -> str:
        init = self._render_for_init(node.init)
        cond = self.render(node.cond) if node.cond else ""
        update = ", ".join(self.render(u) for u in node.update)
        return (
            self._pad()
            + f"for ({init}; {cond}; {update}) "
            + self._inline_stmt(node.body)
        )

    def _render_for_init(self, init) -> str:
        if init is None:
            return ""
        if isinstance(init, n.LocalVarDecl):
            return self.render(init).strip().rstrip(";")
        return ", ".join(self.render(e) for e in init)

    def _render_ReturnStmt(self, node) -> str:
        if node.expr is None:
            return self._pad() + "return;"
        return self._pad() + f"return {self.render(node.expr)};"

    def _render_ThrowStmt(self, node) -> str:
        return self._pad() + f"throw {self.render(node.expr)};"

    def _render_BreakStmt(self, node) -> str:
        return self._pad() + "break;"

    def _render_ContinueStmt(self, node) -> str:
        return self._pad() + "continue;"

    def _render_TryStmt(self, node) -> str:
        text = self._pad() + "try " + self._stmt_block(node.body.stmts)
        for clause in node.catches:
            text += (
                f" catch ({self.render(clause.formal)}) "
                + self._stmt_block(clause.body.stmts)
            )
        if node.finally_body is not None:
            text += " finally " + self._stmt_block(node.finally_body.stmts)
        return text

    def _render_UseStmt(self, node) -> str:
        name = getattr(node.metaprogram, "use_name", None) \
            or type(node.metaprogram).__name__
        lines = [self._pad() + f"/* use {name} */"]
        for stmt in node.body:
            lines.append(self._with_origin(self.render(stmt), stmt))
        return "\n".join(lines)

    def _render_LazyNode(self, node) -> str:
        if node.is_forced():
            return self.render(node.force())
        return self._pad() + node.tree_token.source_text()

    # -- declarations ------------------------------------------------------

    def _render_Formal(self, node) -> str:
        return self._mods(node.modifiers) + f"{self.render(node.type_name)} {node.name.name}"

    def _render_PackageDecl(self, node) -> str:
        return f"package {'.'.join(node.parts)};"

    def _render_ImportDecl(self, node) -> str:
        suffix = ".*" if node.on_demand else ""
        return f"import {'.'.join(node.parts)}{suffix};"

    def _render_UseDecl(self, node) -> str:
        return f"use {'.'.join(node.parts)};"

    def _render_FieldDecl(self, node) -> str:
        decls = ", ".join(self._render_VarDeclarator(d) for d in node.declarators)
        return (
            self._pad()
            + self._mods(node.modifiers)
            + f"{self.render(node.type_name)} {decls};"
        )

    def _render_MethodDecl(self, node) -> str:
        formals = ", ".join(self.render(f) for f in node.formals)
        head = (
            self._pad()
            + self._mods(node.modifiers)
            + f"{self.render(node.return_type)} {node.name.name}({formals})"
        )
        if node.throws:
            head += " throws " + ", ".join(str(t) for t in node.throws)
        if node.body is None:
            return head + ";"
        body = node.body.force() if isinstance(node.body, n.LazyNode) and node.body.is_forced() else node.body
        if isinstance(body, n.LazyNode):
            return head + " " + body.tree_token.source_text()
        return head + " " + self._stmt_block(body.stmts)

    def _render_ConstructorDecl(self, node) -> str:
        formals = ", ".join(self.render(f) for f in node.formals)
        head = self._pad() + self._mods(node.modifiers) + f"{node.name.name}({formals})"
        body = node.body.force() if isinstance(node.body, n.LazyNode) and node.body.is_forced() else node.body
        if isinstance(body, n.LazyNode):
            return head + " " + body.tree_token.source_text()
        return head + " " + self._stmt_block(body.stmts)

    def _render_ClassDecl(self, node) -> str:
        head = self._pad() + self._mods(node.modifiers) + f"class {node.name.name}"
        if node.superclass is not None:
            head += f" extends {self.render(node.superclass)}"
        if node.interfaces:
            head += " implements " + ", ".join(self.render(i) for i in node.interfaces)
        return head + " " + self._stmt_block(node.members)

    def _render_InterfaceDecl(self, node) -> str:
        head = self._pad() + self._mods(node.modifiers) + f"interface {node.name.name}"
        if node.superinterfaces:
            head += " extends " + ", ".join(self.render(i) for i in node.superinterfaces)
        return head + " " + self._stmt_block(node.members)

    def _render_ExternalMethodDecl(self, node) -> str:
        # MultiJava external methods are compiled into their receiver
        # class; at top level they render as a marker comment.
        formals = ", ".join(self.render(f) for f in node.formals)
        return (
            f"/* external: {self.render(node.return_type)} "
            f"{'.'.join(node.receiver.parts)}.{node.name.name}({formals}) "
            f"moved into receiver class */"
        )

    def _render_CompilationUnit(self, node) -> str:
        parts: List[str] = []
        if node.package is not None:
            parts.append(self.render(node.package))
        for imp in node.imports:
            parts.append(self.render(imp))
        for type_decl in node.types:
            parts.append(self.render(type_decl))
        return "\n".join(parts)


def _escape(text) -> str:
    out = []
    escapes = {"\n": "\\n", "\t": "\\t", "\r": "\\r", '"': '\\"', "'": "\\'", "\\": "\\\\"}
    for ch in str(text):
        out.append(escapes.get(ch, ch))
    return "".join(out)
