"""The diagnostic model: spans, severities, phases, rendering.

A Diagnostic is a located, phase-tagged message with optional notes and
an expansion backtrace (the chain of Mayans whose expansions led to the
error).  Rendering follows the familiar ``file:line:col`` convention
with the offending source line and a caret underline when the source
text is available::

    demo.maya:3:17: [check] error: cannot assign boolean to int
      |         int x = true;
      |                 ^
      note: while compiling method f
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.obs import log as _obs_log

SEVERITIES = ("error", "warning", "note")

#: Compiler phases a diagnostic can originate from.
PHASES = ("lex", "parse", "check", "expand", "dispatch", "compile",
          "interp", "general")


@dataclass(frozen=True)
class SourceSpan:
    """A region of a source file (1-based line and column).

    ``length`` is the number of columns the caret underline covers; a
    plain point span has length 1.
    """

    filename: str = "<unknown>"
    line: int = 0
    column: int = 0
    length: int = 1

    @classmethod
    def from_location(cls, location, length: int = 1) -> "SourceSpan":
        """Build a span from any Location-like object (duck-typed so
        this package need not import the lexer)."""
        if location is None:
            return cls()
        return cls(
            getattr(location, "filename", "<unknown>"),
            getattr(location, "line", 0),
            getattr(location, "column", 0),
            max(1, length),
        )

    @property
    def is_known(self) -> bool:
        return self.line > 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class Diagnostic:
    """A single located compiler message."""

    def __init__(
        self,
        message: str,
        *,
        severity: str = "error",
        phase: str = "general",
        span: Optional[SourceSpan] = None,
        notes: Sequence[str] = (),
        backtrace: Sequence[str] = (),
        cause: Optional[BaseException] = None,
    ):
        if severity not in SEVERITIES:
            raise ValueError(f"bad severity {severity!r}")
        self.message = message
        self.severity = severity
        self.phase = phase
        self.span = span if span is not None else SourceSpan()
        self.notes: List[str] = list(notes)
        self.backtrace: List[str] = list(backtrace)
        #: The original exception this diagnostic was absorbed from, if
        #: any.  Lets single-error compiles re-raise the precise type.
        self.cause = cause
        #: The request this diagnostic belongs to, when one was bound
        #: at creation (daemon workers bind one per request): lets a
        #: service response — or a log line quoting the diagnostic —
        #: blame the exact request that produced it.
        context = _obs_log.current_request()
        self.request_id = context.request_id if context else None
        self.trace_id = context.trace_id if context else None

    def with_note(self, note: str) -> "Diagnostic":
        self.notes.append(note)
        return self

    def render(self, source_lookup: Optional[Callable[[str], Optional[str]]] = None) -> str:
        """Render to text; ``source_lookup`` maps a filename to its
        source text (enables the source line + caret underline)."""
        head = f"[{self.phase}] {self.severity}: {self.message}"
        if self.span.is_known:
            head = f"{self.span}: {head}"
        lines = [head]
        snippet = self._snippet(source_lookup)
        if snippet:
            lines.extend(snippet)
        for note in self.notes:
            lines.append(f"  note: {note}")
        for entry in self.backtrace:
            lines.append(f"  in expansion of {entry}")
        return "\n".join(lines)

    def _snippet(self, source_lookup) -> List[str]:
        if source_lookup is None or not self.span.is_known:
            return []
        text = source_lookup(self.span.filename)
        if text is None:
            return []
        source_lines = text.splitlines()
        if not (1 <= self.span.line <= len(source_lines)):
            return []
        line = source_lines[self.span.line - 1].replace("\t", " ")
        caret_pad = " " * max(0, self.span.column - 1)
        caret = "^" + "~" * max(0, self.span.length - 1)
        return [f"  | {line}", f"  | {caret_pad}{caret}"]

    def __repr__(self) -> str:
        return f"<diagnostic [{self.phase}] {self.severity} {self.span}: " \
               f"{self.message!r}>"

    def __str__(self) -> str:
        return self.render()
