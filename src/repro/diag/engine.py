"""The DiagnosticEngine: per-compilation collector and guard-rail knobs.

One engine lives on the *root* CompileEnv; child environments share it,
so every phase (parser drivers, checker, dispatcher, class compiler)
reports into the same stream.  The engine also remembers source text by
filename so rendering can show the offending line with a caret.

Guard-rail configuration lives here too, because the engine is the one
object every layer can already reach through its environment:

* ``max_errors`` — recovery stops absorbing errors past this count
  (the mayac ``--max-errors`` flag);
* ``max_expansion_depth`` — the expansion fuel budget: how many Mayan
  activations may be nested before "expansion too deep" (``--fuel``);
* ``max_mayan_reentry`` — the re-entrant-Mayan cycle detector: how many
  times a single Mayan may appear in the active expansion chain.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.diag.diagnostic import Diagnostic
from repro.diag.errors import diagnostic_from

DEFAULT_MAX_ERRORS = 20
DEFAULT_EXPANSION_DEPTH = 64
DEFAULT_MAYAN_REENTRY = 16


class DiagnosticEngine:
    """Collects diagnostics and renders them against registered sources."""

    def __init__(
        self,
        max_errors: int = DEFAULT_MAX_ERRORS,
        max_expansion_depth: int = DEFAULT_EXPANSION_DEPTH,
        max_mayan_reentry: int = DEFAULT_MAYAN_REENTRY,
    ):
        self.diagnostics: List[Diagnostic] = []
        self.sources: Dict[str, str] = {}
        self.max_errors = max_errors
        self.max_expansion_depth = max_expansion_depth
        self.max_mayan_reentry = max_mayan_reentry
        #: Optional wall-clock budget (a ``time.monotonic()`` stamp).
        #: Set per-request by the compile service so a runaway compile
        #: trips cooperatively even before the fuel budget would.
        self.deadline: Optional[float] = None

    def check_deadline(self) -> None:
        """Raise :class:`DeadlineExceededError` past the deadline.

        Called at cheap, frequent boundaries (each Mayan activation,
        each member body) so per-request deadlines compose with the
        fuel/step budgets instead of relying on an external kill."""
        if self.deadline is not None and time.monotonic() > self.deadline:
            from repro.diag.errors import DeadlineExceededError

            raise DeadlineExceededError(self.deadline)

    # -- sources ---------------------------------------------------------

    def add_source(self, filename: str, text: str) -> None:
        self.sources[filename] = text

    def source_text(self, filename: str) -> Optional[str]:
        return self.sources.get(filename)

    # -- collection ------------------------------------------------------

    def mark(self) -> int:
        """A position in the stream; compile() scopes its verdict to
        diagnostics emitted after its mark (one compiler instance may
        run several compiles)."""
        return len(self.diagnostics)

    def emit(self, diagnostic: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diagnostic)
        return diagnostic

    def report(self, message: str, *, severity: str = "error",
               phase: str = "general", span=None, **kw) -> Diagnostic:
        return self.emit(Diagnostic(message, severity=severity, phase=phase,
                                    span=span, **kw))

    def absorb(self, error: BaseException, phase: str = "general") -> Diagnostic:
        """Record an exception as a diagnostic (idempotent per exception
        object, so nested recovery sites never double-report)."""
        diag = diagnostic_from(error, phase)
        if not getattr(error, "_diag_absorbed", False):
            error._diag_absorbed = True
            self.emit(diag)
        return diag

    def try_absorb(self, error: BaseException, phase: str = "general") -> bool:
        """Absorb the error if the ``max_errors`` budget allows; False
        means the caller should let the exception propagate.

        The budget counts *total* errors: the one that would become
        number ``max_errors`` is refused here, propagates, and is
        recorded by the compile driver as the final error — so exactly
        ``max_errors`` diagnostics are ever reported."""
        if self.error_count + 1 >= self.max_errors:
            return False
        self.absorb(error, phase)
        return True

    # -- queries ---------------------------------------------------------

    @property
    def error_count(self) -> int:
        return sum(1 for d in self.diagnostics if d.severity == "error")

    def errors_since(self, mark: int = 0) -> List[Diagnostic]:
        return [d for d in self.diagnostics[mark:] if d.severity == "error"]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self.diagnostics)

    # -- rendering -------------------------------------------------------

    def render(self, diagnostic: Diagnostic) -> str:
        return diagnostic.render(self.source_text)

    def render_all(self, mark: int = 0) -> str:
        return "\n".join(self.render(d) for d in self.diagnostics[mark:])
