"""Exception bases: every compiler error is a thin Diagnostic wrapper.

Phase-specific exception types (``LexError``, ``ParseError``,
``CheckError``, ``MayaError``, ``DispatchError``, ...) subclass
:class:`DiagnosticError`.  Their message formats are unchanged — the
structured :class:`Diagnostic` rides along on ``.diagnostic`` and is
synthesized lazily for subclasses that never build one explicitly.

:class:`CompileFailed` aggregates the diagnostics of a whole
multi-error compile.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.diag.diagnostic import Diagnostic, SourceSpan


class DiagnosticError(Exception):
    """Base of all compiler errors; carries a :class:`Diagnostic`.

    Subclasses either assign ``self.diagnostic`` in their constructor
    or just set a class-level ``phase`` and (optionally) an instance
    ``location`` attribute — a diagnostic is synthesized on first
    access from ``str(self)``.
    """

    phase: str = "general"

    _diagnostic: Optional[Diagnostic] = None

    @property
    def diagnostic(self) -> Diagnostic:
        if self._diagnostic is None:
            self._diagnostic = Diagnostic(
                str(self),
                phase=self.phase,
                span=SourceSpan.from_location(getattr(self, "location", None)),
                cause=self,
            )
        return self._diagnostic

    @diagnostic.setter
    def diagnostic(self, value: Diagnostic) -> None:
        self._diagnostic = value


def diagnostic_from(error: BaseException, phase: str = "general") -> Diagnostic:
    """The diagnostic for any exception (synthesized for foreign ones)."""
    if isinstance(error, DiagnosticError):
        diag = error.diagnostic
        if diag.cause is None:
            diag.cause = error
        return diag
    return Diagnostic(
        f"{type(error).__name__}: {error}",
        phase=phase,
        span=SourceSpan.from_location(getattr(error, "location", None)),
        cause=error,
    )


class DeadlineExceededError(DiagnosticError):
    """The compile's wall-clock budget ran out (a service deadline).

    Raised cooperatively by :meth:`DiagnosticEngine.check_deadline`, so
    a deadline surfaces as a located, structured diagnostic — like fuel
    exhaustion — rather than an external kill."""

    phase = "compile"

    def __init__(self, deadline: float):
        super().__init__(
            "compile deadline exceeded: the request's wall-clock budget "
            "ran out mid-compile (raise deadline_ms, or simplify the "
            "expansion)")
        self.deadline = deadline


class CompileFailed(DiagnosticError):
    """Raised at the end of a compile that recorded multiple errors.

    ``diagnostics`` holds every error (and warning) diagnostic from the
    failed run, in emission order; ``render()`` formats them all.
    """

    phase = "compile"

    def __init__(self, diagnostics: Sequence[Diagnostic], engine=None):
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        self.engine = engine
        errors = sum(1 for d in self.diagnostics if d.severity == "error")
        summary = f"compilation failed with {errors} error" \
                  f"{'s' if errors != 1 else ''}"
        super().__init__(
            summary + "".join(f"\n{d.span}: {d.message}" for d in self.diagnostics)
        )
        self.diagnostic = Diagnostic(summary, phase="compile", cause=self)

    def render(self) -> str:
        """All diagnostics rendered (with carets when an engine with
        registered sources was attached)."""
        lookup = self.engine.source_text if self.engine is not None else None
        return "\n".join(d.render(lookup) for d in self.diagnostics)
