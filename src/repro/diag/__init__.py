"""The compiler resilience layer: structured, located diagnostics.

Mayans are statically checked *user code running inside the compiler*,
so a production mayac must survive buggy macros, malformed input, and
runaway expansions instead of dying on the first Python traceback.
This package supplies the shared machinery every phase uses:

* :class:`Diagnostic` / :class:`SourceSpan` — the located error model
  (severity, phase, span, message, notes, expansion backtrace);
* :class:`DiagnosticEngine` — the per-compilation collector that also
  remembers source text so diagnostics render with carets, and holds
  the guard-rail knobs (``max_errors``, expansion fuel);
* :class:`DiagnosticError` — the base of every compiler exception,
  each a thin wrapper carrying a :class:`Diagnostic`;
* :class:`CompileFailed` — the aggregate raised after multi-error
  recovery, carrying *all* diagnostics from the run.

Nothing here imports the rest of ``repro``; every layer (lexer,
parser, checker, dispatcher, interpreter) depends on this one.
"""

from repro.diag.diagnostic import Diagnostic, SourceSpan
from repro.diag.errors import (
    CompileFailed,
    DeadlineExceededError,
    DiagnosticError,
    diagnostic_from,
)
from repro.diag.engine import (
    DEFAULT_EXPANSION_DEPTH,
    DEFAULT_MAX_ERRORS,
    DEFAULT_MAYAN_REENTRY,
    DiagnosticEngine,
)

__all__ = [
    "CompileFailed",
    "DEFAULT_EXPANSION_DEPTH",
    "DEFAULT_MAX_ERRORS",
    "DEFAULT_MAYAN_REENTRY",
    "DeadlineExceededError",
    "Diagnostic",
    "DiagnosticEngine",
    "DiagnosticError",
    "SourceSpan",
    "diagnostic_from",
]
