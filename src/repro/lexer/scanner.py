"""The flat scanner: text to a stream of non-tree tokens."""

from __future__ import annotations

from typing import List

from repro.diag import Diagnostic, DiagnosticError, SourceSpan
from repro.lexer.source import Location, SourceFile
from repro.lexer.tokens import KEYWORDS, OPERATORS, Token


class LexError(DiagnosticError):
    """A lexical error with a source location."""

    phase = "lex"

    def __init__(self, message: str, location: Location):
        super().__init__(f"{location}: {message}")
        self.location = location
        self.diagnostic = Diagnostic(
            message, phase="lex",
            span=SourceSpan.from_location(location), cause=self,
        )


_SORTED_OPERATORS = sorted(OPERATORS, key=len, reverse=True)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "0": "\0",
    "'": "'",
    '"': '"',
    "\\": "\\",
}


class Scanner:
    """Scans a SourceFile into flat tokens (no delimiter matching)."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.text = source.text
        self.pos = 0
        self.line = 1
        self.column = 1

    def location(self) -> Location:
        return Location(self.source.filename, self.line, self.column)

    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.text):
                return out
            out.append(self._next_token())

    # -- internals -----------------------------------------------------

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_trivia(self) -> None:
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch in " \t\r\n":
                self._advance()
            elif text.startswith("//", self.pos):
                while self.pos < len(text) and text[self.pos] != "\n":
                    self._advance()
            elif text.startswith("/*", self.pos):
                start = self.location()
                self._advance(2)
                while not text.startswith("*/", self.pos):
                    if self.pos >= len(text):
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        text = self.text
        loc = self.location()
        ch = text[self.pos]
        if ch.isalpha() or ch in "_$":
            return self._word(loc)
        if ch.isdigit():
            return self._number(loc)
        if ch == ".":
            # A leading dot can start a double literal (".5").
            if self.pos + 1 < len(text) and text[self.pos + 1].isdigit():
                return self._number(loc)
        if ch == '"':
            return self._string(loc)
        if ch == "'":
            return self._char(loc)
        for op in _SORTED_OPERATORS:
            if text.startswith(op, self.pos):
                self._advance(len(op))
                return Token(op, op, loc)
        raise LexError(f"unexpected character {ch!r}", loc)

    def _word(self, loc: Location) -> Token:
        start = self.pos
        text = self.text
        while self.pos < len(text) and (
            text[self.pos].isalnum() or text[self.pos] in "_$"
        ):
            self._advance()
        word = text[start : self.pos]
        if word in KEYWORDS:
            return Token(word, word, loc)
        return Token("Identifier", word, loc)

    def _number(self, loc: Location) -> Token:
        start = self.pos
        text = self.text
        is_double = False
        if text.startswith(("0x", "0X"), self.pos):
            self._advance(2)
            while self.pos < len(text) and text[self.pos] in "0123456789abcdefABCDEF":
                self._advance()
            literal = text[start : self.pos]
            value = int(literal, 16)
        else:
            while self.pos < len(text) and text[self.pos].isdigit():
                self._advance()
            if self.pos < len(text) and text[self.pos] == ".":
                # Don't treat "1..2" or "x.method" style dots as part of
                # the number unless a digit follows.
                if self.pos + 1 < len(text) and text[self.pos + 1].isdigit():
                    is_double = True
                    self._advance()
                    while self.pos < len(text) and text[self.pos].isdigit():
                        self._advance()
            if self.pos < len(text) and text[self.pos] in "eE":
                is_double = True
                self._advance()
                if self.pos < len(text) and text[self.pos] in "+-":
                    self._advance()
                while self.pos < len(text) and text[self.pos].isdigit():
                    self._advance()
            literal = text[start : self.pos]
            value = float(literal) if is_double else int(literal)
        if self.pos < len(text) and text[self.pos] in "lL":
            self._advance()
            return Token("LongLit", literal, loc, value=int(value))
        if self.pos < len(text) and text[self.pos] in "dDfF":
            self._advance()
            return Token("DoubleLit", literal, loc, value=float(value))
        if is_double:
            return Token("DoubleLit", literal, loc, value=value)
        return Token("IntLit", literal, loc, value=value)

    def _string(self, loc: Location) -> Token:
        self._advance()  # opening quote
        value = self._quoted('"', loc)
        return Token("StringLit", value, loc, value=value)

    def _char(self, loc: Location) -> Token:
        self._advance()  # opening quote
        value = self._quoted("'", loc)
        if len(value) != 1:
            raise LexError("character literal must contain one character", loc)
        return Token("CharLit", value, loc, value=value)

    def _quoted(self, quote: str, loc: Location) -> str:
        text = self.text
        out: List[str] = []
        while True:
            if self.pos >= len(text) or text[self.pos] == "\n":
                raise LexError("unterminated literal", loc)
            ch = text[self.pos]
            if ch == quote:
                self._advance()
                return "".join(out)
            if ch == "\\":
                self._advance()
                if self.pos >= len(text):
                    raise LexError("unterminated escape", loc)
                esc = text[self.pos]
                if esc not in _ESCAPES:
                    raise LexError(f"bad escape \\{esc}", self.location())
                out.append(_ESCAPES[esc])
                self._advance()
            else:
                out.append(ch)
                self._advance()


def scan(text: str, filename: str = "<string>") -> List[Token]:
    """Scan source text into a flat token list."""
    return Scanner(SourceFile(filename, text)).tokens()
