"""Source files and source locations."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Location:
    """A point in a source file (1-based line and column)."""

    filename: str
    line: int
    column: int

    UNKNOWN: "Location" = None  # set below

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


Location.UNKNOWN = Location("<unknown>", 0, 0)


def span(first: Location, last: Location) -> Location:
    """Collapse a span to its starting location.

    Maya reports a single point per node; we keep the same convention but
    accept a pair so call sites read naturally.
    """
    if first is Location.UNKNOWN:
        return last
    return first


class SourceFile:
    """A named chunk of source text with line bookkeeping."""

    def __init__(self, filename: str, text: str):
        self.filename = filename
        self.text = text

    @classmethod
    def from_path(cls, path: str) -> "SourceFile":
        with open(path, "r", encoding="utf-8") as handle:
            return cls(path, handle.read())

    def location(self, offset: int) -> Location:
        prefix = self.text[:offset]
        line = prefix.count("\n") + 1
        last_newline = prefix.rfind("\n")
        column = offset - last_newline
        return Location(self.filename, line, column)
