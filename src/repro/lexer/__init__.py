"""Lexical analysis: flat scanning and the stream lexer.

The stream lexer (paper section 4, figure 4) turns a flat token stream
into a *token tree*: every matched pair of delimiters becomes a single
subtree token.  Subtrees are "lexers" in the paper's terminology because
they can later provide input to the parser, which is what makes lazy
parsing and quick member-boundary discovery possible.
"""

from repro.lexer.source import Location, SourceFile, span
from repro.lexer.tokens import (
    KEYWORDS,
    OPERATORS,
    TREE_KINDS,
    Token,
    is_tree_kind,
)
from repro.lexer.scanner import LexError, Scanner, scan
from repro.lexer.stream import StreamLexer, stream_lex

__all__ = [
    "KEYWORDS",
    "LexError",
    "Location",
    "OPERATORS",
    "Scanner",
    "SourceFile",
    "StreamLexer",
    "TREE_KINDS",
    "Token",
    "is_tree_kind",
    "scan",
    "span",
    "stream_lex",
]
