"""The stream lexer: flat tokens to a token tree.

Per the paper (section 4, figure 4), the stream lexer "creates a subtree
for each pair of matching delimiters: parentheses, braces, and brackets".
It resembles a Lisp reader: it builds trees from a simple context-free
language, which lets the compiler find the end of a method body or field
initializer without fully parsing it.

In addition to the raw tree structure we classify a few shapes at this
level, because they correspond to distinct terminals in the LALR(1)
grammar (see repro.lexer.tokens for the list):

* empty bracket pairs become ``Dims``,
* empty paren pairs become ``EmptyParen``,
* paren groups that lexically *must* be a cast type become ``CastParen``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.lexer.scanner import LexError, scan
from repro.lexer.source import Location
from repro.lexer.tokens import (
    CLOSE_DELIMS,
    OPEN_DELIMS,
    PRIMITIVE_TYPE_KEYWORDS,
    Token,
)

_KIND_BY_OPEN = {"(": "ParenTree", "{": "BraceTree", "[": "BracketTree"}


class StreamLexer:
    """Builds token trees from a flat token sequence."""

    def __init__(self, tokens: Sequence[Token], classify_casts: bool = True):
        self._tokens = list(tokens)
        self._pos = 0
        self._classify_casts = classify_casts

    def tree(self) -> List[Token]:
        """Return the token tree for the whole input."""
        out, closer = self._group(None)
        if closer is not None:
            raise LexError(f"unmatched {closer.text!r}", closer.location)
        return out

    # -- internals -----------------------------------------------------

    def _group(self, open_token: Optional[Token]) -> Tuple[List[Token], Optional[Token]]:
        """Collect tokens until the closer matching *open_token* (or EOF)."""
        expected_close = OPEN_DELIMS[open_token.text] if open_token else None
        out: List[Token] = []
        while self._pos < len(self._tokens):
            token = self._tokens[self._pos]
            self._pos += 1
            if token.text in OPEN_DELIMS:
                children, closer = self._group(token)
                if closer is None:
                    raise LexError(
                        f"unexpected end of file, unclosed {token.text!r} "
                        f"opened at {token.location.line}:{token.location.column}",
                        token.location,
                    )
                out.append(self._make_tree(token, children))
            elif token.text in CLOSE_DELIMS:
                if token.text != expected_close:
                    raise LexError(
                        f"mismatched delimiter {token.text!r}", token.location
                    )
                return out, token
            else:
                out.append(token)
        return out, None

    def _make_tree(self, open_token: Token, children: List[Token]) -> Token:
        kind = _KIND_BY_OPEN[open_token.text]
        if not children:
            if kind == "BracketTree":
                kind = "Dims"
            elif kind == "ParenTree":
                kind = "EmptyParen"
        elif (
            kind == "ParenTree"
            and self._classify_casts
            and _is_cast_shape(children)
        ):
            kind = "CastParen"
        return Token(kind, open_token.text, open_token.location, tuple(children))


def _is_cast_shape(children: Sequence[Token]) -> bool:
    """True when a paren group's content is lexically a type.

    Accepted shapes: ``primitive Dims*`` and ``Name(.Name)* Dims+``.  A
    plain ``(Name)`` stays a ParenTree: it is only a cast when followed
    by an operand that cannot start an infix context, which the grammar
    handles via UnaryNotPlusMinus (JLS-style).
    """
    index = 0
    if children[0].kind in PRIMITIVE_TYPE_KEYWORDS:
        index = 1
        needs_dims = False
    elif children[0].kind == "Identifier":
        index = 1
        while (
            index + 1 < len(children)
            and children[index].kind == "."
            and children[index + 1].kind == "Identifier"
        ):
            index += 2
        needs_dims = True
    else:
        return False
    dims = 0
    while index < len(children) and children[index].kind == "Dims":
        dims += 1
        index += 1
    if index != len(children):
        return False
    return dims >= 1 if needs_dims else True


def stream_lex(text: str, filename: str = "<string>") -> List[Token]:
    """Scan and tree-ify source text in one step."""
    return StreamLexer(scan(text, filename)).tree()
