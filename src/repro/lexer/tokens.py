"""Token kinds and the token data structure.

Terminal kinds
--------------
Fixed tokens (keywords and operators) use their own spelling as the kind,
so the grammar can mention them directly (``"if"``, ``"+"``).  Variable
tokens use capitalised class names: ``Identifier``, ``IntLit``,
``DoubleLit``, ``CharLit``, ``StringLit``.

Tree tokens (built by the stream lexer, never by the scanner) are:

``ParenTree``
    a ``( ... )`` group with at least one inner token that is not a cast
    shape (see ``CastParen``),
``BraceTree``
    a ``{ ... }`` group,
``BracketTree``
    a non-empty ``[ ... ]`` group,
``Dims``
    an *empty* bracket pair ``[]`` (array dimensions),
``EmptyParen``
    an *empty* paren pair ``()`` (empty argument or formal list),
``CastParen``
    a paren group whose content is lexically a type: a primitive type
    keyword followed by zero or more ``Dims``, or a dotted name followed
    by one or more ``Dims``.  Classifying these in the stream lexer keeps
    the Java cast productions LALR(1) even though paren groups are single
    terminals.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

from repro.lexer.source import Location

KEYWORDS = frozenset(
    """
    abstract boolean break byte case catch char class const continue
    default do double else extends final finally float for goto if
    implements import instanceof int interface long native new package
    private protected public return short static strictfp super switch
    synchronized this throw throws transient try void volatile while
    null true false use syntax
    """.split()
)

PRIMITIVE_TYPE_KEYWORDS = frozenset(
    "boolean byte short int long char float double".split()
)

# Longest-match first ordering is established by the scanner.
OPERATORS = (
    ">>>=",
    "<<=",
    ">>=",
    ">>>",
    "==",
    "<=",
    ">=",
    "!=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "&=",
    "|=",
    "^=",
    "%=",
    "<<",
    ">>",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    ".",
    "=",
    ">",
    "<",
    "!",
    "~",
    "?",
    ":",
    "+",
    "-",
    "*",
    "/",
    "&",
    "|",
    "^",
    "%",
    "@",
    "\\",
    "$",
)

TREE_KINDS = frozenset(
    ["ParenTree", "BraceTree", "BracketTree", "Dims", "EmptyParen", "CastParen"]
)

VARIABLE_KINDS = frozenset(
    ["Identifier", "IntLit", "LongLit", "DoubleLit", "CharLit", "StringLit"]
)

EOF_KIND = "$eof"

OPEN_DELIMS = {"(": ")", "{": "}", "[": "]"}
CLOSE_DELIMS = {v: k for k, v in OPEN_DELIMS.items()}

_TREE_DELIMS = {
    "ParenTree": ("(", ")"),
    "CastParen": ("(", ")"),
    "EmptyParen": ("(", ")"),
    "BraceTree": ("{", "}"),
    "BracketTree": ("[", "]"),
    "Dims": ("[", "]"),
}


def is_tree_kind(kind: str) -> bool:
    return kind in TREE_KINDS


class Token:
    """A single token, possibly a matched-delimiter subtree.

    ``kind`` is the terminal symbol name; ``text`` is the source spelling
    (for tree tokens, just the open delimiter); ``children`` is the tuple
    of inner tokens for tree tokens and ``None`` otherwise.
    """

    __slots__ = ("kind", "text", "location", "children", "value")

    def __init__(
        self,
        kind: str,
        text: str,
        location: Location = Location.UNKNOWN,
        children: Optional[Tuple["Token", ...]] = None,
        value: object = None,
    ):
        self.kind = kind
        self.text = text
        self.location = location
        self.children = children
        self.value = value

    @property
    def is_tree(self) -> bool:
        return self.children is not None

    def delimiters(self) -> Tuple[str, str]:
        """The open/close delimiter pair of a tree token."""
        return _TREE_DELIMS[self.kind]

    def iter_flat(self) -> Iterator["Token"]:
        """Yield this token's full flat token sequence, delimiters included."""
        if not self.is_tree:
            yield self
            return
        open_text, close_text = self.delimiters()
        yield Token(open_text, open_text, self.location)
        for child in self.children:
            yield from child.iter_flat()
        yield Token(close_text, close_text, self.location)

    def source_text(self) -> str:
        """Reconstruct (approximately) the source spelling of this token."""
        if not self.is_tree:
            if self.kind == "StringLit":
                return '"%s"' % _escape(self.text)
            if self.kind == "CharLit":
                return "'%s'" % _escape(self.text)
            return self.text
        open_text, close_text = self.delimiters()
        inner = " ".join(child.source_text() for child in self.children)
        return f"{open_text}{inner}{close_text}"

    def __repr__(self) -> str:
        if self.is_tree:
            return f"Token({self.kind}, {len(self.children)} children)"
        return f"Token({self.kind}, {self.text!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.text == other.text
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.text))


def _escape(text: str) -> str:
    out = []
    escapes = {"\n": "\\n", "\t": "\\t", "\r": "\\r", '"': '\\"', "'": "\\'", "\\": "\\\\"}
    for ch in text:
        out.append(escapes.get(ch, ch))
    return "".join(out)


def flatten(tokens: Sequence[Token]) -> Iterator[Token]:
    """Flatten a token-tree sequence back into a delimiter token stream."""
    for token in tokens:
        yield from token.iter_flat()
