"""Grammar model: symbols, productions, and the extensible grammar.

Maya treats grammar productions as generic functions.  This package
holds the production/grammar data model; the LALR(1) machinery lives in
repro.lalr and the dispatcher (the multimethod half) in repro.dispatch.
"""

from repro.grammar.symbols import (
    LazySym,
    ListSym,
    Nonterminal,
    OptSym,
    Symbol,
    Terminal,
    TreeSym,
    nonterminal,
    terminal,
)
from repro.grammar.grammar import (
    Assoc,
    Grammar,
    GrammarError,
    GrammarFingerprint,
    Precedence,
    Production,
)

__all__ = [
    "Assoc",
    "Grammar",
    "GrammarError",
    "GrammarFingerprint",
    "LazySym",
    "ListSym",
    "Nonterminal",
    "OptSym",
    "Precedence",
    "Production",
    "Symbol",
    "Terminal",
    "TreeSym",
    "nonterminal",
    "terminal",
]
