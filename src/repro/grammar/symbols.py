"""Grammar symbols.

Symbols are interned: two symbols with the same name are the same
object, which lets the LALR machinery use identity comparisons.

Beyond plain terminals and nonterminals, Maya's metagrammar has
*parameterized* symbols (section 4.1): ``list(X, sep)`` for repetition,
``lazy(Tree, NT)`` for lazily parsed subtrees, and tree symbols for
eagerly (recursively) parsed subtrees.  A parameterized symbol is itself
a nonterminal; when one is first used, the grammar synthesizes its
helper productions (the ``G0``/``G1`` productions of the paper).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class Symbol:
    """A grammar symbol, interned by name."""

    _registry: Dict[str, "Symbol"] = {}

    def __new__(cls, name: str):
        existing = Symbol._registry.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"symbol {name!r} already defined as {type(existing).__name__}"
                )
            return existing
        instance = object.__new__(cls)
        instance.name = name
        Symbol._registry[name] = instance
        return instance

    name: str

    @property
    def is_terminal(self) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name

    @staticmethod
    def lookup(name: str) -> Optional["Symbol"]:
        return Symbol._registry.get(name)


class Terminal(Symbol):
    """A terminal symbol: a token kind."""

    @property
    def is_terminal(self) -> bool:
        return True


class Nonterminal(Symbol):
    """A nonterminal symbol.

    ``node_class`` links node-type nonterminals to their AST class; it is
    what makes dispatch-by-node-type work (the paper's "node-type
    symbols").  Helper nonterminals synthesized for parameterized
    symbols have no node class.
    """

    def __init__(self, name: str):
        if not hasattr(self, "node_class"):
            self.node_class = None

    @property
    def is_terminal(self) -> bool:
        return False


def terminal(name: str) -> Terminal:
    return Terminal(name)


def nonterminal(name: str, node_class: type = None) -> Nonterminal:
    sym = Nonterminal(name)
    if node_class is not None:
        if sym.node_class is not None and sym.node_class is not node_class:
            raise ValueError(f"nonterminal {name} already has a node class")
        sym.node_class = node_class
    return sym


# ---------------------------------------------------------------------------
# Parameterized symbols.
#
# These are *descriptions*; Grammar.resolve() turns each into a concrete
# helper Nonterminal plus generated productions.  Using frozen dataclass
# semantics by hand keeps them hashable and comparable by content.
# ---------------------------------------------------------------------------


class ParameterizedSym:
    """Base class for parameterized grammar symbols."""

    def helper_name(self) -> str:
        raise NotImplementedError


class ListSym(ParameterizedSym):
    """``list(Element, 'separator')``: separated elements.

    With an empty separator this is plain repetition.  ``min1`` requires
    at least one element (``list1``).  The semantic value is a Python
    list of element values.
    """

    def __init__(self, element: Symbol, separator: str = "", min1: bool = False):
        self.element = element
        self.separator = separator
        self.min1 = min1

    def helper_name(self) -> str:
        sep = self.separator or ""
        plus = "1" if self.min1 else ""
        return f"list{plus}({self.element.name},{sep!r})"

    def __eq__(self, other):
        return (
            isinstance(other, ListSym)
            and self.element is other.element
            and self.separator == other.separator
            and self.min1 == other.min1
        )

    def __hash__(self):
        return hash(("list", self.element.name, self.separator, self.min1))

    def __repr__(self):
        return self.helper_name()


class OptSym(ParameterizedSym):
    """``opt(X)``: X or nothing; value is the X value or None."""

    def __init__(self, element: Symbol):
        self.element = element

    def helper_name(self) -> str:
        return f"opt({self.element.name})"

    def __eq__(self, other):
        return isinstance(other, OptSym) and self.element is other.element

    def __hash__(self):
        return hash(("opt", self.element.name))

    def __repr__(self):
        return self.helper_name()


class TreeSym(ParameterizedSym):
    """``tree(TreeKind, NT)``: eagerly parse a subtree's content as NT.

    ``tree_kinds`` may list alternative token kinds that are acceptable
    carriers (e.g. ParenTree or EmptyParen for argument lists).
    """

    def __init__(self, tree_kinds: Tuple[str, ...], content: Symbol):
        if isinstance(tree_kinds, str):
            tree_kinds = (tree_kinds,)
        self.tree_kinds = tuple(tree_kinds)
        self.content = content

    def helper_name(self) -> str:
        kinds = "|".join(self.tree_kinds)
        return f"tree({kinds},{self.content.name})"

    def __eq__(self, other):
        return (
            isinstance(other, TreeSym)
            and self.tree_kinds == other.tree_kinds
            and self.content is other.content
        )

    def __hash__(self):
        return hash(("tree", self.tree_kinds, self.content.name))

    def __repr__(self):
        return self.helper_name()


class LazySym(ParameterizedSym):
    """``lazy(TreeKind, NT)``: lazily parse a subtree's content as NT.

    The semantic value is a LazyNode thunk; parsing happens on demand,
    which is what lets Mayans be imported mid-program and lets bindings
    created by one Mayan argument be visible while type checking another
    (paper section 1, implementation technique 1).
    """

    def __init__(self, tree_kinds: Tuple[str, ...], content: Symbol):
        if isinstance(tree_kinds, str):
            tree_kinds = (tree_kinds,)
        self.tree_kinds = tuple(tree_kinds)
        self.content = content

    def helper_name(self) -> str:
        kinds = "|".join(self.tree_kinds)
        return f"lazy({kinds},{self.content.name})"

    def __eq__(self, other):
        return (
            isinstance(other, LazySym)
            and self.tree_kinds == other.tree_kinds
            and self.content is other.content
        )

    def __hash__(self):
        return hash(("lazy", self.tree_kinds, self.content.name))

    def __repr__(self):
        return self.helper_name()
