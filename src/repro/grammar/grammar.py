"""Productions and the extensible grammar.

A Grammar is a *mutable* set of productions: the whole point of Maya is
that importing a metaprogram may add productions at application compile
time.  Parse tables are derived data, cached by fingerprint in
repro.lalr.tables; any mutation bumps the grammar version so stale
tables are never reused.

Productions are immutable and globally unique for a given
(lhs, rhs, tag): cloning a grammar shares Production objects, so Mayans
registered on a production remain valid across compilation environments.
"""

from __future__ import annotations

import enum
import itertools
import weakref
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.grammar.symbols import (
    LazySym,
    ListSym,
    Nonterminal,
    OptSym,
    ParameterizedSym,
    Symbol,
    Terminal,
    TreeSym,
    nonterminal,
    terminal,
)


class GrammarError(Exception):
    """An error in a grammar definition or extension."""


class Assoc(enum.Enum):
    LEFT = "left"
    RIGHT = "right"
    NONASSOC = "nonassoc"


class Precedence:
    """A precedence table: terminal name -> (level, associativity)."""

    def __init__(self):
        self._levels: Dict[str, Tuple[int, Assoc]] = {}
        self._next_level = 0

    def declare(self, assoc: Assoc, *terminal_names: str) -> None:
        self._next_level += 1
        for name in terminal_names:
            self._levels[name] = (self._next_level, assoc)

    def lookup(self, terminal_name: str) -> Optional[Tuple[int, Assoc]]:
        return self._levels.get(terminal_name)

    def snapshot(self) -> Tuple:
        return tuple(sorted((k, v[0], v[1].value) for k, v in self._levels.items()))

    def copy(self) -> "Precedence":
        dup = Precedence()
        dup._levels = dict(self._levels)
        dup._next_level = self._next_level
        return dup


_production_counter = itertools.count()
_production_registry: Dict[Tuple, "Production"] = {}


class GrammarFingerprint:
    """A grammar-content digest with O(1) hashing and equality.

    The key is built from production *content* (lhs/rhs names and tags),
    not process-local production indices, so equal grammar content in
    different processes produces equal fingerprints — that is what makes
    the on-disk parse-table cache sound.  The hash is computed once, and
    instances are interned by key (see :meth:`of`), so two grammars with
    equal content share one fingerprint object and cache lookups keyed
    on fingerprints compare by identity — O(1) however large the
    grammar is.
    """

    __slots__ = ("key", "_hash", "__weakref__")

    def __init__(self, key: Tuple):
        self.key = key
        self._hash = hash(key)

    @staticmethod
    def of(key: Tuple) -> "GrammarFingerprint":
        """The canonical fingerprint for a key (interned, weakly held)."""
        fingerprint = _fingerprint_intern.get(key)
        if fingerprint is None:
            fingerprint = GrammarFingerprint(key)
            _fingerprint_intern[key] = fingerprint
        return fingerprint

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, GrammarFingerprint)
            and self._hash == other._hash
            and self.key == other.key
        )

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def __repr__(self) -> str:
        return f"GrammarFingerprint({self._hash:#x})"


#: Weak intern table: entries disappear once no grammar or cache holds
#: the fingerprint, so a long-lived process growing many grammar
#: versions does not leak digests.
_fingerprint_intern: "weakref.WeakValueDictionary[Tuple, GrammarFingerprint]" \
    = weakref.WeakValueDictionary()


class Production:
    """A grammar production (a generic function, in Maya's model).

    ``action`` is the *internal* semantic action used for helper
    productions (lists, subtree recursion); node-type productions get
    their base semantics from built-in Mayans registered with the
    dispatcher instead.
    """

    __slots__ = (
        "lhs",
        "rhs",
        "tag",
        "prec",
        "index",
        "action",
        "internal",
        "tree_contents",
        "passthrough",
    )

    def __init__(
        self,
        lhs: Nonterminal,
        rhs: Tuple[Symbol, ...],
        tag: str,
        prec: Optional[str],
        action: Optional[Callable],
        internal: bool,
    ):
        self.lhs = lhs
        self.rhs = rhs
        self.tag = tag
        self.prec = prec
        self.index = next(_production_counter)
        self.action = action
        self.internal = internal
        # rhs position -> (content symbol, lazy?) for positions holding
        # tree tokens whose contents the action parses recursively.
        # Pattern parsing uses this to statically check template groups.
        self.tree_contents: Dict[int, Tuple[object, bool]] = {}
        # Single-nonterminal identity productions (expression levels);
        # pattern matching and param extraction collapse these.
        self.passthrough = False

    def key(self) -> Tuple:
        return (self.lhs.name, tuple(s.name for s in self.rhs), self.tag)

    def __repr__(self) -> str:
        rhs = " ".join(s.name for s in self.rhs) or "<empty>"
        return f"{self.lhs.name} -> {rhs}"

    def last_terminal(self) -> Optional[Terminal]:
        for sym in reversed(self.rhs):
            if sym.is_terminal:
                return sym
        return None


def _intern_production(
    lhs: Nonterminal,
    rhs: Tuple[Symbol, ...],
    tag: str,
    prec: Optional[str],
    action: Optional[Callable],
    internal: bool,
) -> Production:
    key = (lhs.name, tuple(s.name for s in rhs), tag)
    existing = _production_registry.get(key)
    if existing is not None:
        return existing
    production = Production(lhs, rhs, tag, prec, action, internal)
    _production_registry[key] = production
    return production


RhsItem = Union[str, Symbol, ParameterizedSym]

# Helper-nonterminal registry: parameterized symbol -> (nonterminal, productions)
_helper_registry: Dict[str, Tuple[Nonterminal, Tuple[Production, ...]]] = {}


class Grammar:
    """A mutable, extensible grammar."""

    def __init__(self, name: str = "grammar"):
        self.name = name
        self.productions: List[Production] = []
        self._production_set: set = set()
        self.by_lhs: Dict[Nonterminal, List[Production]] = {}
        self.precedence = Precedence()
        self.start_symbols: List[Nonterminal] = []
        self.version = 0
        self._fingerprint: Optional[GrammarFingerprint] = None
        self._fingerprint_version = -1

    # -- construction ----------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Grammar":
        dup = Grammar(name or self.name)
        dup.productions = list(self.productions)
        dup._production_set = set(self._production_set)
        dup.by_lhs = {lhs: list(prods) for lhs, prods in self.by_lhs.items()}
        dup.precedence = self.precedence.copy()
        dup.start_symbols = list(self.start_symbols)
        dup.version = self.version
        dup._fingerprint = self._fingerprint
        dup._fingerprint_version = self._fingerprint_version
        return dup

    def declare_start(self, *symbols: Union[str, Nonterminal]) -> None:
        """Mark nonterminals as valid parse entry points.

        Node-type symbols must be starts so that subtrees, patterns, and
        templates can be parsed beginning at any of them.
        """
        for symbol in symbols:
            if isinstance(symbol, str):
                symbol = nonterminal(symbol)
            if symbol not in self.start_symbols:
                self.start_symbols.append(symbol)
                self.version += 1

    def add_production(
        self,
        lhs: Union[str, Nonterminal],
        rhs: Sequence[RhsItem],
        tag: Optional[str] = None,
        prec: Optional[str] = None,
        action: Optional[Callable] = None,
        internal: bool = False,
    ) -> Production:
        """Add a production, resolving parameterized symbols.

        Re-adding an identical production is a no-op returning the
        existing object (the paper: "If the productions and actions
        already exist in the grammar, they are not added again").
        """
        if isinstance(lhs, str):
            lhs_sym = Symbol.lookup(lhs)
            if lhs_sym is None:
                lhs_sym = nonterminal(lhs)
            lhs = lhs_sym
        if not isinstance(lhs, Nonterminal):
            raise GrammarError(f"production left-hand side {lhs!r} is not a nonterminal")
        resolved = tuple(self._resolve(item) for item in rhs)
        if tag is None:
            # Content-derived so re-adding an identical production finds
            # the interned original.
            tag = f"{lhs.name}<-{' '.join(s.name for s in resolved)}"
        production = _intern_production(lhs, resolved, tag, prec, action, internal)
        self._install(production)
        return production

    def _install(self, production: Production) -> None:
        if production in self._production_set:
            return
        self._production_set.add(production)
        self.productions.append(production)
        self.by_lhs.setdefault(production.lhs, []).append(production)
        self.version += 1

    def has_production(self, production: Production) -> bool:
        return production in self._production_set

    def _resolve(self, item: RhsItem) -> Symbol:
        if isinstance(item, str):
            symbol = Symbol.lookup(item)
            if symbol is None:
                # Unknown names default to terminals: grammar authors
                # declare nonterminals explicitly (node-type symbols).
                symbol = terminal(item)
            return symbol
        if isinstance(item, Symbol):
            return item
        if isinstance(item, ParameterizedSym):
            return self._resolve_parameterized(item)
        raise GrammarError(f"bad right-hand-side item: {item!r}")

    def _resolve_parameterized(self, param: ParameterizedSym) -> Nonterminal:
        name = param.helper_name()
        cached = _helper_registry.get(name)
        if cached is None:
            cached = _build_helper(param)
            _helper_registry[name] = cached
        helper, productions = cached
        for production in productions:
            self._install(production)
        if isinstance(param, (TreeSym, LazySym)):
            # Subtree contents are parsed recursively, so their symbol
            # must be a valid parse entry point.
            self.declare_start(param.content)
        return helper

    def declare_precedence(self, assoc: Assoc, *terminal_names: str) -> None:
        """Declare a precedence level, bumping the grammar version so
        cached parse tables built under the old table are invalidated."""
        self.precedence.declare(assoc, *terminal_names)
        self.version += 1

    # -- queries -----------------------------------------------------------

    def fingerprint(self) -> GrammarFingerprint:
        """A content digest of the grammar's current state.

        O(1) after the first computation: the digest is cached and only
        recomputed when the version counter has moved (add_production,
        declare_start, declare_precedence).
        """
        if self._fingerprint is None or self._fingerprint_version != self.version:
            self._fingerprint = GrammarFingerprint.of((
                tuple(p.key() for p in self.productions),
                tuple(s.name for s in self.start_symbols),
                self.precedence.snapshot(),
            ))
            self._fingerprint_version = self.version
        return self._fingerprint

    def terminals(self) -> List[Terminal]:
        seen: Dict[str, Terminal] = {}
        for production in self.productions:
            for symbol in production.rhs:
                if symbol.is_terminal:
                    seen[symbol.name] = symbol
        return list(seen.values())

    def nonterminals(self) -> List[Nonterminal]:
        seen: Dict[str, Nonterminal] = {}
        for production in self.productions:
            seen.setdefault(production.lhs.name, production.lhs)
            for symbol in production.rhs:
                if not symbol.is_terminal:
                    seen.setdefault(symbol.name, symbol)
        return list(seen.values())

    def production_prec(self, production: Production) -> Optional[Tuple[int, Assoc]]:
        name = production.prec
        if name is None:
            last = production.last_terminal()
            name = last.name if last else None
        if name is None:
            return None
        return self.precedence.lookup(name)


# ---------------------------------------------------------------------------
# Helper production synthesis (the paper's G0/G1 productions).
# ---------------------------------------------------------------------------


def _build_helper(param: ParameterizedSym) -> Tuple[Nonterminal, Tuple[Production, ...]]:
    helper = nonterminal(param.helper_name())
    if isinstance(param, ListSym):
        return helper, _list_productions(helper, param)
    if isinstance(param, OptSym):
        return helper, _opt_productions(helper, param)
    if isinstance(param, TreeSym):
        return helper, _tree_productions(helper, param)
    if isinstance(param, LazySym):
        return helper, _lazy_productions(helper, param)
    raise GrammarError(f"unknown parameterized symbol {param!r}")


def _list_productions(helper: Nonterminal, param: ListSym) -> Tuple[Production, ...]:
    if param.min1:
        inner = helper
        productions: Tuple[Production, ...] = ()
    else:
        inner = nonterminal(param.helper_name() + "+")
        empty = _intern_production(
            helper, (), f"{helper.name}:empty", None, lambda ctx, values: [], True
        )
        some = _intern_production(
            helper, (inner,), f"{helper.name}:some", None,
            lambda ctx, values: values[0], True,
        )
        productions = (empty, some)
    single = _intern_production(
        inner,
        (param.element,),
        f"{inner.name}:single",
        None,
        lambda ctx, values: [values[0]],
        True,
    )
    if param.separator:
        sep = terminal(param.separator)
        more_rhs = (inner, sep, param.element)
        more_action = lambda ctx, values: values[0] + [values[2]]
    else:
        more_rhs = (inner, param.element)
        more_action = lambda ctx, values: values[0] + [values[1]]
    more = _intern_production(
        inner, more_rhs, f"{inner.name}:more", None, more_action, True
    )
    return productions + (single, more)


def _opt_productions(helper: Nonterminal, param: OptSym) -> Tuple[Production, ...]:
    absent = _intern_production(
        helper, (), f"{helper.name}:absent", None, lambda ctx, values: None, True
    )
    present = _intern_production(
        helper,
        (param.element,),
        f"{helper.name}:present",
        None,
        lambda ctx, values: values[0],
        True,
    )
    return (absent, present)


def _tree_productions(helper: Nonterminal, param: TreeSym) -> Tuple[Production, ...]:
    productions = []
    for kind in param.tree_kinds:
        tree_terminal = terminal(kind)

        def action(ctx, values, _content=param.content):
            return ctx.parse_subtree(values[0], _content)

        production = _intern_production(
            helper, (tree_terminal,), f"{helper.name}:{kind}", None, action, True
        )
        if kind not in ("EmptyParen", "Dims"):
            production.tree_contents[0] = (param.content, False)
        productions.append(production)
    return tuple(productions)


def _lazy_productions(helper: Nonterminal, param: LazySym) -> Tuple[Production, ...]:
    productions = []
    for kind in param.tree_kinds:
        tree_terminal = terminal(kind)

        def action(ctx, values, _content=param.content):
            return ctx.lazy_subtree(values[0], _content)

        production = _intern_production(
            helper, (tree_terminal,), f"{helper.name}:{kind}", None, action, True
        )
        if kind not in ("EmptyParen", "Dims"):
            production.tree_contents[0] = (param.content, True)
        productions.append(production)
    return tuple(productions)
