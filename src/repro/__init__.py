"""repro: a reproduction of *Maya: Multiple-Dispatch Syntax Extension
in Java* (Baker & Hsieh, PLDI 2002) as a Python library.

Quickstart::

    from repro import MayaCompiler, run_program
    from repro.macros import install_macro_library

    compiler = MayaCompiler()
    install_macro_library(compiler)
    program = compiler.compile('''
        import java.util.*;
        class Demo {
            static void main() {
                use maya.util.ForEach;
                Hashtable h = new Hashtable();
                h.put("one", new Integer(1));
                h.keys().foreach(String st) {
                    System.out.println(st + " = " + h.get(st));
                }
            }
        }
    ''')
    run_program(program, "Demo")
"""

from repro.core import (
    CompileContext,
    CompileEnv,
    CompiledProgram,
    MayaCompiler,
    MayaError,
)
from repro.dispatch import (
    AmbiguousDispatchError,
    Mayan,
    MetaProgram,
    MetaProgramGroup,
)
from repro.patterns import Template, syntax_case
from repro.hygiene import Environment, HygieneError

__all__ = [
    "AmbiguousDispatchError",
    "CompileContext",
    "CompileEnv",
    "CompiledProgram",
    "Environment",
    "HygieneError",
    "Mayan",
    "MayaCompiler",
    "MayaError",
    "MetaProgram",
    "MetaProgramGroup",
    "Template",
    "run_program",
    "syntax_case",
]


def run_program(program, class_name: str, method: str = "main", args=()):
    """Interpret a compiled program's static method (default: main)."""
    from repro.interp import Interpreter

    return Interpreter(program).run_static(class_name, method, list(args))


__version__ = "1.0.0"
