"""Runtime values.

Primitives map to Python values (int/float/bool/1-char str); ``null``
is None; strings are Python str; objects are JavaObject (built-in
classes keep their state in ``peer``); arrays are JavaArray.
"""

from __future__ import annotations

from typing import List, Optional

from repro.types import ArrayType, ClassType, PrimitiveType, Type

JavaNull = None


class JavaObject:
    """An instance of a class; built-ins carry a Python peer."""

    __slots__ = ("class_type", "fields", "peer")

    def __init__(self, class_type: ClassType, peer=None):
        self.class_type = class_type
        self.fields = {}
        self.peer = peer

    def __repr__(self):
        return f"<{self.class_type.name} instance>"


class JavaArray:
    """A Java array: fixed length, default-initialized."""

    __slots__ = ("element_type", "values")

    def __init__(self, element_type: Type, values: List[object]):
        self.element_type = element_type
        self.values = values

    @classmethod
    def new(cls, element_type: Type, length: int) -> "JavaArray":
        return cls(element_type, [default_value(element_type)] * length)

    def __len__(self):
        return len(self.values)

    def __repr__(self):
        return f"<array {self.element_type}[{len(self.values)}]>"


class JavaThrow(Exception):
    """A thrown Java exception carrying its JavaObject."""

    def __init__(self, value: JavaObject):
        self.value = value
        message = value.fields.get("message") if isinstance(value, JavaObject) else None
        super().__init__(f"{value.class_type.name}: {message}")


def default_value(type_: Type):
    if isinstance(type_, PrimitiveType):
        if type_.name == "boolean":
            return False
        if type_.name in ("float", "double"):
            return 0.0
        if type_.name == "char":
            return "\0"
        return 0
    return None


def java_str(value) -> str:
    """Java's string conversion."""
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        return value
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{value:.1f}"
        return repr(value)
    if isinstance(value, JavaObject):
        peer = value.peer
        if isinstance(peer, (str, bool, int, float)):
            return java_str(peer)
        if isinstance(peer, list) and value.class_type.name.endswith("Vector"):
            return "[" + ", ".join(java_str(v) for v in peer) + "]"
        if peer is not None and hasattr(peer, "java_str"):
            return peer.java_str()
        return f"{value.class_type.name}@{id(value) & 0xFFFF:x}"
    if isinstance(value, JavaArray):
        return f"[{value.element_type}@{id(value) & 0xFFFF:x}"
    return str(value)
