"""Interpreters for compiled (fully expanded) programs.

Stands in for the paper's bytecode backend: every expansion the macro
library or MultiJava produces can be *run*, and the interpreter's
operation counters (allocations, method calls, field reads) let the
benchmarks measure what the paper's optimized expansions save.

Three execution backends share one observable semantics: the seed
tree-walker (``backend="walk"``, the default), the closure compiler
with slot frames and inline caches (``backend="closure"``, in
``repro.interp.closures``), and the Python code generator with
profile-guided specialization — guarded direct calls, native
operators, an on-disk source cache — (``backend="pycode"``, in
``repro.interp.pycodegen``).  The pycode tier falls back to closures,
and closures to the walker, whenever a construct is out of scope for
the faster tier.
"""

from repro.interp.values import JavaArray, JavaNull, JavaObject, JavaThrow, java_str
from repro.interp.interp import (
    Counters,
    Interpreter,
    JavaStackOverflow,
    StepLimitExceeded,
)

__all__ = [
    "Counters",
    "Interpreter",
    "JavaArray",
    "JavaNull",
    "JavaObject",
    "JavaStackOverflow",
    "JavaThrow",
    "StepLimitExceeded",
    "java_str",
]
