"""A tree-walking interpreter for compiled (fully expanded) programs.

Stands in for the paper's bytecode backend: every expansion the macro
library or MultiJava produces can be *run*, and the interpreter's
operation counters (allocations, method calls, field reads) let the
benchmarks measure what the paper's optimized expansions save.
"""

from repro.interp.values import JavaArray, JavaNull, JavaObject, JavaThrow, java_str
from repro.interp.interp import (
    Counters,
    Interpreter,
    JavaStackOverflow,
    StepLimitExceeded,
)

__all__ = [
    "Counters",
    "Interpreter",
    "JavaArray",
    "JavaNull",
    "JavaObject",
    "JavaStackOverflow",
    "JavaThrow",
    "StepLimitExceeded",
    "java_str",
]
