"""The ahead-of-time Python-codegen execution backend.

The third rung of the backend ladder (``walk`` -> ``closure`` ->
``pycode``): a per-method compiler from the *typed* AST to Python
source, ``compile()``d once and executed as a real Python function.
Where the closure backend pays one Python call per AST node, this
backend pays native bytecode: Java locals become Python locals, loops
become Python loops, ``try``/``finally`` becomes Python's, and the
static-type fast paths the closure backend selects per node are emitted
as bare operators.

Profile-guided specialization happens at the call sites:

* **Self-patching monomorphic call sites** — every virtual call emits a
  class guard plus a direct call through three plan-namespace cells
  (``_sN_k`` guard class, ``_sN_f`` entry function, ``_sN_m`` resolved
  method).  The first receiver class observed patches the site to call
  the callee's generated entry *directly* (no ``invoke_exact``, no
  dict lookup); a guard failure deopts to the generic inline-cache
  dispatcher (counted in ``maya_interp_codegen_deopts_total``), and
  after ``MEGAMORPHIC`` deopts the site unpatches itself for good.
* **Caller-side depth guards** — direct calls bump the interpreter's
  call depth inline (the same ``JavaStackOverflow`` contract as
  ``invoke_exact``) so a patched call chain observes exactly one depth
  increment per Java frame.

Generated source is cached on disk (``MAYA_CODEGEN_CACHE`` or
:func:`enable_codegen_cache`) keyed by a content fingerprint of the
method's unparsed declaration — the same content-addressed discipline
as the LALR table cache in ``repro.lalr.tables``, including the
quarantine-on-corrupt ladder (``maya_interp_codegen_cache_corrupt_total``)
and the ``cache.codegen.load`` fault site.  Daemon workers point this
cache at a shared directory so one worker's codegen warms the others.

Observable behaviour is bit-for-bit the walker's: the same operation
counters bump at the same points, the same Java exceptions carry the
same messages, and any shape this compiler cannot prove it reproduces
raises :class:`CodegenError`, caching a ``FALLBACK`` sentinel so the
method transparently drops to the closure backend (and from there, to
the walker).  Plans are invalidated by ``MEMBER_EPOCH``; because
patched sites bypass ``plan_for`` entirely, this module registers an
epoch listener (``repro.types.types.on_member_epoch_bump``) that
unpatches every live plan's sites the moment intercession changes any
class's member table.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import sys
import weakref
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro import faults, perf
from repro.ast import nodes as n
from repro.ast import unparse
from repro.core import MayaError
from repro.interp.interp import (
    _C_ALLOCATIONS,
    _C_ARRAY_READS,
    _C_ARRAY_WRITES,
    _C_FIELD_READS,
    _C_FIELD_WRITES,
    _C_METHOD_CALLS,
    _C_STATEMENTS,
    JavaStackOverflow,
    _binary_op,
    _java_equal,
    _num,
    _primitive_cast,
)
from repro.interp.closures import (
    MEGAMORPHIC,
    _IC_CALL_HIT,
    _IC_CALL_MEGA,
    _IC_CALL_MISS,
    _IC_FIELD_HIT,
    _IC_FIELD_MEGA,
    _IC_FIELD_MISS,
    _IC_TYPE_HIT,
    _IC_TYPE_MISS,
    _is_int_type,
    _is_numeric_type,
    _is_string_type,
    _FOLDABLE,
)
from repro.interp import closures as _closures
from repro.interp.values import (
    JavaArray,
    JavaObject,
    JavaThrow,
    default_value,
    java_str,
)
from repro.obs import lazy as obs_lazy
from repro.obs.metrics import REGISTRY
from repro.typecheck import resolve_name, resolve_type_name, static_type_of
from repro.types import ArrayType, BOOLEAN, PrimitiveType, array_of
from repro.types import types as _types

#: Method-body codegen outcomes (compiled / fallback / disk_hit /
#: link_error) — the pycode analogue of
#: ``maya_interp_closure_compiles_total``.
_CODEGEN = REGISTRY.counter(
    "maya_interp_codegen_total",
    "Pycode-backend method compilations, by outcome.",
    ("outcome",))
_CG_COMPILED = _CODEGEN.labels("compiled")
_CG_FALLBACK = _CODEGEN.labels("fallback")
_CG_DISK_HIT = _CODEGEN.labels("disk_hit")
_CG_LINK_ERROR = _CODEGEN.labels("link_error")

#: Guard failures at specialized sites: the call deopts to the generic
#: inline-cache dispatcher (observable behaviour unchanged).
_DEOPTS = REGISTRY.counter(
    "maya_interp_codegen_deopts_total",
    "Pycode specialized-site guard failures (deopt to generic dispatch).",
    ("site",))
_DEOPT_CALL = _DEOPTS.labels("call")

#: Corrupt on-disk codegen cache entries detected (then quarantined).
_CG_CORRUPT = REGISTRY.counter(
    "maya_interp_codegen_cache_corrupt_total",
    "On-disk codegen cache entries found corrupt, quarantined, and "
    "regenerated.")

#: Artifact schema version; stale formats are plain misses.
PYCODE_FORMAT = 1

#: Opt-in on-disk source cache directory (``MAYA_CODEGEN_CACHE`` or the
#: daemon's ``codegen_cache_dir``).
_DISK_DIR: Optional[str] = os.environ.get("MAYA_CODEGEN_CACHE") or None

#: Plan sentinel: this method always executes on a lower-tier backend.
FALLBACK = object()

#: Missing-value sentinel shared with the closure backend's semantics.
_MISSING = _closures._MISSING

#: Every live compiled plan, so the member-epoch listener can unpatch
#: specialized sites the moment intercession changes a member table.
_LIVE_PLANS: "weakref.WeakSet" = weakref.WeakSet()


class CodegenError(Exception):
    """A node shape the Python codegen does not reproduce exactly; the
    method falls back to the closure backend (then the walker)."""


class _LinkError(Exception):
    """A disk artifact whose symbol descriptors no longer resolve."""


def enable_codegen_cache(path: Optional[str]) -> None:
    """Point the persistent codegen cache at ``path`` (None disables)."""
    global _DISK_DIR
    _DISK_DIR = path


@contextmanager
def codegen_cache_at(path: Optional[str]):
    """Scope the persistent codegen cache to ``path``, restoring the
    previous directory on exit (tests and the daemon)."""
    previous = _DISK_DIR
    enable_codegen_cache(path)
    try:
        yield
    finally:
        enable_codegen_cache(previous)


def disable_codegen_cache() -> None:
    enable_codegen_cache(None)


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


class PyPlan:
    """A compiled method: the generated entry function plus its
    namespace (for site patching) and source (for ``--dump-codegen``)."""

    __slots__ = ("entry", "ns", "source", "resets", "label", "__weakref__")

    def __init__(self, entry, ns, source, resets, label):
        self.entry = entry
        self.ns = ns
        self.source = source
        self.resets = resets
        self.label = label

    def invalidate_sites(self) -> None:
        """Unpatch every specialized site (member epoch bumped)."""
        for reset in self.resets:
            reset()


def _on_member_epoch_bump(_epoch: int) -> None:
    for plan in list(_LIVE_PLANS):
        plan.invalidate_sites()


_types.on_member_epoch_bump(_on_member_epoch_bump)


#: Bounded registry for ``Method._pycode_plan`` attributes, mirroring
#: the closure backend's plan registry (evictions land in the
#: ``maya_cache_events_total{cache="interp.pycode.plans"}`` family).
_PLAN_REGISTRY = _closures.PlanRegistry(
    "_pycode_plan", _closures.PLAN_CACHE_SIZE,
    perf.cache_stats("interp.pycode.plans"))


def plan_for(method, interp):
    """The cached compiled plan for a method (or ``FALLBACK``).

    ``interp`` supplies the class registry used to link disk-cached
    artifacts; the plan itself never captures the interpreter, so plans
    are shared across Interpreter instances (like closure plans).
    """
    cached = getattr(method, "_pycode_plan", None)
    epoch = _types.MEMBER_EPOCH
    if cached is not None and cached[0] == epoch:
        return cached[1]
    plan = _build_plan(method, interp)
    method._pycode_plan = (epoch, plan)
    _PLAN_REGISTRY.note(method)
    return plan


def run_plan(interp, plan: PyPlan, receiver, args):
    """Execute a compiled plan (called under invoke_exact's depth
    guard, exactly like the walker's dict-frame execution)."""
    return plan.entry(interp, receiver, *args)


def _build_plan(method, interp):
    decl = method.decl
    if method.impl is not None or decl is None or decl.body is None:
        # A builtin or an intercession-attached Python impl: never
        # codegen's job, so not counted as a fallback.
        return FALLBACK
    try:
        gen = _MethodGen(method)
    except CodegenError:
        _CG_FALLBACK.value += 1
        return FALLBACK
    key = _cache_key(method) if _DISK_DIR is not None else None
    if key is not None:
        plan = _disk_load(interp, method, key)
        if plan is not None:
            _CG_DISK_HIT.value += 1
            _LIVE_PLANS.add(plan)
            return plan
    try:
        source, consts, sites = gen.generate()
        plan = _link(interp, method, source, _live_consts(consts),
                     _live_sites(sites))
    except (CodegenError, SyntaxError):
        _CG_FALLBACK.value += 1
        return FALLBACK
    _CG_COMPILED.value += 1
    if key is not None:
        _disk_store(method, key, source, consts, sites)
    _LIVE_PLANS.add(plan)
    return plan


def _entry_for(method, interp):
    """The direct-call entry for a resolved method: its generated
    function when it compiles, otherwise a shim through
    ``_invoke_exact`` (guard-free — the *caller's* inline depth guard
    supplies the one increment ``invoke_exact`` would have)."""
    plan = plan_for(method, interp)
    if plan is FALLBACK:
        def shim(interp, receiver, *args):
            return interp._invoke_exact(method, receiver, list(args))
        return shim
    return plan.entry


def _overflow(interp, method):
    raise JavaStackOverflow(
        f"Java stack overflow: call depth exceeded "
        f"{interp.max_call_depth} invoking {method}"
    )


def _raise_unbound(exc, mapping):
    """Map a generated-local UnboundLocalError/NameError back to the
    walker's ``MayaError("unbound local x")`` contract."""
    name = getattr(exc, "name", None)
    if name is None:
        match = re.search(r"'([^']+)'", str(exc))
        name = match.group(1) if match else None
    message = mapping.get(name)
    if message is None:
        raise exc
    raise MayaError(message) from None


# ---------------------------------------------------------------------------
# Site builders (created at link time; never capture the interpreter)
# ---------------------------------------------------------------------------


def _make_call_site(ns, index, method):
    """A self-patching virtual call site.

    The generated guard is ``if _k is _sN_k: <direct call>``;  this
    dispatcher is the slow path.  While unpatched it behaves like the
    closure backend's inline cache, and the first receiver class it
    sees specializes the site.  Reached with a *patched* guard it is a
    deopt: counted, and past ``MEGAMORPHIC`` misses the site unpatches
    itself permanently (generic dict-IC mode)."""
    k_name, f_name, m_name = (f"_s{index}_k", f"_s{index}_f",
                              f"_s{index}_m")
    cache: Dict[object, object] = {}
    state = [0, False]  # deopt misses, permanently-polymorphic

    def dispatch(interp, receiver, klass, args):
        resolved = cache.get(klass)
        if resolved is None:
            if len(cache) >= MEGAMORPHIC:
                _IC_CALL_MEGA.value += 1
                resolved = interp._virtual_lookup(klass, method)
            else:
                _IC_CALL_MISS.value += 1
                resolved = cache[klass] = \
                    interp._virtual_lookup(klass, method)
        else:
            _IC_CALL_HIT.value += 1
        if ns[k_name] is not None:
            # The fast-path guard was patched and still missed: deopt.
            _DEOPT_CALL.value += 1
            state[0] += 1
            if state[0] >= MEGAMORPHIC:
                ns[k_name] = None
                ns[f_name] = None
                state[1] = True
        elif not state[1]:
            # First receiver class observed: specialize the site.
            ns[m_name] = resolved
            ns[f_name] = _entry_for(resolved, interp)
            ns[k_name] = klass
        return interp.invoke_exact(resolved, receiver, list(args))

    def reset():
        cache.clear()
        state[0] = 0
        state[1] = False
        ns[k_name] = None
        ns[f_name] = None
        ns[m_name] = method

    ns[k_name] = None
    ns[f_name] = None
    ns[m_name] = method
    ns[f"_s{index}_d"] = dispatch
    return reset


def _make_static_site(ns, index, method):
    """A static/super/instance-qualified-static call site: the target
    is a codegen-time constant, so the only laziness is building the
    callee's entry on first call (which also dodges infinite recursion
    while compiling self-recursive methods)."""
    f_name = f"_s{index}_f"

    def call_generic(interp, receiver, args):
        if ns[f_name] is None:
            ns[f_name] = _entry_for(method, interp)
        return interp.invoke_exact(method, receiver, list(args))

    def reset():
        ns[f_name] = None

    ns[f_name] = None
    ns[f"_s{index}_m"] = method
    ns[f"_s{index}_g"] = call_generic
    return reset


def _make_ifield_site(ns, index, name):
    """Unchecked runtime field *read* — the closure backend's field
    inline cache, verbatim (including the array-length probe)."""
    cache: Dict[object, object] = {}

    def read(interp, receiver):
        if isinstance(receiver, JavaArray) and name == "length":
            return len(receiver)
        klass = receiver.class_type if type(receiver) is JavaObject \
            else interp._class_of_value(receiver)
        found = cache.get(klass, _MISSING)
        if found is _MISSING:
            if len(cache) >= MEGAMORPHIC:
                _IC_FIELD_MEGA.value += 1
                found = klass.find_field(name)
            else:
                _IC_FIELD_MISS.value += 1
                found = cache[klass] = klass.find_field(name)
        else:
            _IC_FIELD_HIT.value += 1
        return interp._read_field(receiver, found)

    ns[f"_s{index}"] = read
    return cache.clear


def _make_sfield_site(ns, index, name):
    """Unchecked runtime field *store* inline cache."""
    cache: Dict[object, object] = {}

    def store(interp, receiver, value):
        klass = receiver.class_type if type(receiver) is JavaObject \
            else interp._class_of_value(receiver)
        found = cache.get(klass, _MISSING)
        if found is _MISSING:
            if len(cache) >= MEGAMORPHIC:
                _IC_FIELD_MEGA.value += 1
                found = klass.find_field(name)
            else:
                _IC_FIELD_MISS.value += 1
                found = cache[klass] = klass.find_field(name)
        else:
            _IC_FIELD_HIT.value += 1
        interp._write_field(receiver, found, value)

    ns[f"_s{index}"] = store
    return cache.clear


def _make_instanceof_site(ns, index, target):
    """``instanceof`` with a per-runtime-type verdict cache."""
    cache: Dict[object, object] = {}

    def test(interp, value):
        if value is None:
            return False
        runtime = interp._runtime_type(value)
        verdict = cache.get(runtime, _MISSING)
        if verdict is _MISSING:
            _IC_TYPE_MISS.value += 1
            verdict = cache[runtime] = runtime.is_subtype_of(target)
        else:
            _IC_TYPE_HIT.value += 1
        return verdict

    ns[f"_s{index}"] = test
    return cache.clear


def _make_cast_site(ns, index, target):
    """A reference cast with a per-runtime-type verdict cache."""
    cache: Dict[object, object] = {}

    def cast(interp, value):
        if value is None:
            return None
        runtime = interp._runtime_type(value)
        verdict = cache.get(runtime, _MISSING)
        if verdict is _MISSING:
            _IC_TYPE_MISS.value += 1
            verdict = cache[runtime] = runtime.is_subtype_of(target)
        else:
            _IC_TYPE_HIT.value += 1
        if not verdict:
            raise interp.throw("java.lang.ClassCastException",
                               f"{interp._runtime_type(value)} to {target}")
        return value

    ns[f"_s{index}"] = cast
    return cache.clear


_SITE_BUILDERS = {
    "call": _make_call_site,
    "scall": _make_static_site,
    "ifield": _make_ifield_site,
    "sfield": _make_sfield_site,
    "instanceof": _make_instanceof_site,
    "cast": _make_cast_site,
}


# ---------------------------------------------------------------------------
# Linking: (source, consts, sites) -> PyPlan
# ---------------------------------------------------------------------------


def _runtime_ns() -> dict:
    return {
        "_ST": _C_STATEMENTS, "_MC": _C_METHOD_CALLS,
        "_FR": _C_FIELD_READS, "_FW": _C_FIELD_WRITES,
        "_AR": _C_ARRAY_READS, "_AW": _C_ARRAY_WRITES,
        "_AL": _C_ALLOCATIONS,
        "_JO": JavaObject, "_JA": JavaArray, "_JT": JavaThrow,
        "_MI": _MISSING, "_ME": MayaError,
        "_num": _num, "_bop": _binary_op, "_jeq": _java_equal,
        "_jstr": java_str, "_pcast": _primitive_cast,
        "_ovf": _overflow, "_unb": _raise_unbound,
    }


def _live_consts(consts):
    return [(name, value) for name, value, _descr in consts]


def _live_sites(sites):
    return [(index, kind, payload) for index, kind, payload, _d in sites]


def _link(interp, method, source, consts, sites) -> PyPlan:
    label = method_label(method)
    ns = _runtime_ns()
    for name, value in consts:
        ns[name] = value
    resets = []
    for index, kind, payload in sites:
        resets.append(_SITE_BUILDERS[kind](ns, index, payload))
    code = compile(source, f"<pycode {label}>", "exec")
    exec(code, ns)
    return PyPlan(ns["_m"], ns, source, resets, label)


def method_label(method) -> str:
    owner = method.declaring_class.name if method.declaring_class else "?"
    params = ", ".join(str(p) for p in method.param_types)
    return f"{owner}.{method.name}({params})"


# ---------------------------------------------------------------------------
# Symbol descriptors (persisting consts/sites across processes)
# ---------------------------------------------------------------------------


def _descr_of_type(t):
    if isinstance(t, PrimitiveType):
        return ["prim", t.name]
    if isinstance(t, ArrayType):
        dims = 0
        while isinstance(t, ArrayType):
            t = t.element
            dims += 1
        base = _descr_of_type(t)
        return ["arr", base, dims] if base is not None else None
    name = getattr(t, "name", None)
    if isinstance(name, str):
        return ["cls", name]
    return None


def _descr_of_method(m):
    if m is None or m.declaring_class is None:
        return None
    params = [str(p) for p in m.param_types]
    if m.name == "<init>":
        return ["ctor", m.declaring_class.name, params]
    return ["mth", m.declaring_class.name, m.name, params]


def _descr_of_field(f):
    if f is None or f.declaring_class is None:
        return None
    return ["fld", f.declaring_class.name, f.name]


def _resolve_class(interp, qname):
    try:
        klass = interp.registry.require(qname)
    except Exception:
        raise _LinkError(qname) from None
    if klass is None:
        raise _LinkError(qname)
    return klass


def _resolve_descr(interp, descr):
    kind = descr[0]
    if kind == "prim":
        t = _types.PRIMITIVES.get(descr[1])
        if t is None:
            raise _LinkError(descr[1])
        return t
    if kind == "cls":
        return _resolve_class(interp, descr[1])
    if kind == "arr":
        return array_of(_resolve_descr(interp, descr[1]), descr[2])
    if kind == "fld":
        field = _resolve_class(interp, descr[1]).fields.get(descr[2])
        if field is None:
            raise _LinkError(f"{descr[1]}.{descr[2]}")
        return field
    if kind == "mth":
        klass = _resolve_class(interp, descr[1])
        for m in klass.methods.get(descr[2], ()):
            if [str(p) for p in m.param_types] == descr[3]:
                return m
        raise _LinkError(f"{descr[1]}.{descr[2]}")
    if kind == "ctor":
        klass = _resolve_class(interp, descr[1])
        for ctor in klass.constructors:
            if [str(p) for p in ctor.param_types] == descr[2]:
                return ctor
        if not descr[2]:
            return _types.Method("<init>", (), _types.VOID, (), klass)
        raise _LinkError(f"{descr[1]}.<init>")
    if kind == "lit":
        return descr[1]
    raise _LinkError(f"descriptor kind {kind!r}")


def _resolve_site_payload(interp, kind, descr):
    if kind in ("call", "scall"):
        return _resolve_descr(interp, descr)
    if kind in ("ifield", "sfield"):
        return descr  # a plain field name
    return _resolve_descr(interp, descr)  # instanceof / cast target type


# ---------------------------------------------------------------------------
# The on-disk source cache (same ladder as repro.lalr.tables)
# ---------------------------------------------------------------------------


def _cache_key(method) -> Optional[str]:
    try:
        body_src = unparse.to_source(method.decl)
    except Exception:
        return None
    owner = method.declaring_class.name if method.declaring_class else "?"
    digest = hashlib.sha256()
    digest.update(repr((PYCODE_FORMAT, sys.version_info[:2], owner,
                        method.name,
                        [str(p) for p in method.param_types])).encode())
    digest.update(body_src.encode())
    return digest.hexdigest()[:32]


def _disk_path(key: str) -> str:
    return os.path.join(_DISK_DIR, f"pycode-{key}.json")


def _quarantine(path: str) -> None:
    try:
        os.replace(path, path + ".quarantine")
    except OSError:
        pass


def _disk_load(interp, method, key: str) -> Optional[PyPlan]:
    stats = perf.cache_stats("interp.pycode.disk")
    path = _disk_path(key)
    try:
        faults.check(faults.SITE_CODEGEN_CACHE_LOAD)
        with open(path, "rb") as handle:
            payload = handle.read()
        if faults.corrupting(faults.SITE_CODEGEN_CACHE_LOAD):
            payload = b"\x00 injected corrupt codegen entry"
        artifact = json.loads(payload.decode("utf-8"))
        if (not isinstance(artifact, dict)
                or artifact.get("format") != PYCODE_FORMAT
                or artifact.get("key") != key):
            # Stale (old format / different method): a plain miss.
            stats.miss()
            return None
        consts = [(name, _resolve_descr(interp, descr))
                  for name, descr in artifact["consts"]]
        sites = [(index, kind,
                  _resolve_site_payload(interp, kind, descr))
                 for index, kind, descr in artifact["sites"]]
        plan = _link(interp, method, artifact["source"], consts, sites)
    except (FileNotFoundError, faults.InjectedFault):
        stats.miss()
        return None
    except _LinkError:
        # Well-formed artifact whose symbols no longer resolve here:
        # not corruption — regenerate (and overwrite) without
        # quarantining.
        _CG_LINK_ERROR.value += 1
        stats.miss()
        return None
    except Exception:
        # Garbage bytes, truncated JSON, unparsable source: quarantine
        # the entry, count it, and regenerate — a bad cache file must
        # never take the backend down.
        _quarantine(path)
        _CG_CORRUPT.inc()
        stats.miss()
        return None
    stats.hit()
    return plan


def _disk_store(method, key: str, source, consts, sites) -> None:
    if _DISK_DIR is None:
        return
    const_descrs = []
    for name, _value, descr in consts:
        if descr is None:
            return  # a non-portable constant: keep this plan in-memory
        const_descrs.append([name, descr])
    site_descrs = []
    for index, kind, _payload, descr in sites:
        if descr is None:
            return
        site_descrs.append([index, kind, descr])
    artifact = {
        "format": PYCODE_FORMAT,
        "key": key,
        "method": method_label(method),
        "source": source,
        "consts": const_descrs,
        "sites": site_descrs,
    }
    path = _disk_path(key)
    try:
        os.makedirs(_DISK_DIR, exist_ok=True)
        scratch = f"{path}.{os.getpid()}.tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle)
        os.replace(scratch, path)  # atomic: readers never see partials
    except OSError:
        pass


# ---------------------------------------------------------------------------
# The code generator
# ---------------------------------------------------------------------------

#: Literal types whose ``repr`` round-trips as Python source.
_INLINE_LITERALS = (bool, int, float, str, type(None))


def _stmts_of(block):
    return block.stmts if isinstance(block, n.BlockStmts) else block


def _binds_continue(stmt) -> bool:
    """Does ``stmt`` contain a ``continue`` that would bind to the
    *enclosing* loop (i.e. not nested inside an inner loop)?"""
    kind = getattr(stmt, "node_kind", None)
    if kind == "continue_stmt":
        return True
    if kind in ("while_stmt", "do_stmt", "for_stmt"):
        return False
    if kind == "lazy_node":
        return stmt.is_forced() and _binds_continue(stmt.force())
    if kind in ("block", "use_stmt"):
        return any(_binds_continue(s) for s in _stmts_of(stmt.body))
    if kind == "if_stmt":
        if _binds_continue(stmt.then_stmt):
            return True
        return stmt.else_stmt is not None and \
            _binds_continue(stmt.else_stmt)
    if kind == "try_stmt":
        if any(_binds_continue(s) for s in _stmts_of(stmt.body)):
            return True
        for clause in stmt.catches:
            if any(_binds_continue(s) for s in _stmts_of(clause.body)):
                return True
        if stmt.finally_body is not None:
            return any(_binds_continue(s)
                       for s in _stmts_of(stmt.finally_body))
    return False


class _MethodGen:
    """Generates one method body as Python source.

    ``self.expr`` returns an *atom*: a string that is pure at its
    sequence point (all side effects already emitted as lines).  Atoms
    in ``self._atomic`` (temps, consts, literals, ``v_this``) are also
    *stable* — immutable until the statement ends; anything else (a
    local, a compound over locals) is retroactively spilled into a temp
    whenever a later operand emits side-effecting lines, which is what
    preserves Java's left-to-right evaluation order.
    """

    def __init__(self, method):
        decl = method.decl
        if method.impl is not None:
            raise CodegenError("attached Python impl")
        if decl is None or decl.body is None:
            raise CodegenError("no body")
        body = decl.body
        if isinstance(body, n.LazyNode):
            if not body.is_forced():
                raise CodegenError("unforced lazy body")
            body = body.force()
        if not isinstance(body, n.BlockStmts):
            raise CodegenError("body is not a checked block")
        self.method = method
        self.body = body
        self.formals = decl.formals
        self.lines: List[str] = []
        self.indent = 2
        self.ntemp = 0
        self.nsite = 0
        self.names: Dict[str, str] = {}
        self.unbound: Dict[str, str] = {}
        self._atomic = {"v_this", "interp"}
        self.consts: List[Tuple[str, object, object]] = []
        self.sites: List[Tuple[int, str, object, object]] = []
        self.formal_names = [self.pyname(f.name.name) for f in self.formals]

    # -- emission helpers ------------------------------------------------

    def put(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def temp(self) -> str:
        self.ntemp += 1
        name = f"_t{self.ntemp}"
        self._atomic.add(name)
        return name

    def flag(self) -> str:
        # Flags are reassigned (loop bookkeeping), so never atomic.
        self.ntemp += 1
        return f"_g{self.ntemp}"

    def pyname(self, name: str) -> str:
        pname = self.names.get(name)
        if pname is None:
            pname = f"v{len(self.names)}_" + \
                re.sub(r"[^0-9a-zA-Z_]", "_", name)
            self.names[name] = pname
        return pname

    def const(self, value, descr) -> str:
        name = f"_k{len(self.consts)}"
        self.consts.append((name, value, descr))
        self._atomic.add(name)
        return name

    def literal_atom(self, value) -> str:
        if type(value) in _INLINE_LITERALS:
            atom = repr(value)
            self._atomic.add(atom)
            return atom
        descr = None
        try:
            json.dumps(value)
            descr = ["lit", value]
        except (TypeError, ValueError):
            pass
        return self.const(value, descr)

    def spill(self, atom: str) -> str:
        """Force a (pure) atom into a stable temp."""
        if atom in self._atomic:
            return atom
        t = self.temp()
        self.put(f"{t} = {atom}")
        return t

    def seq(self, thunks) -> List[str]:
        """Evaluate operands left to right, retroactively spilling any
        earlier unstable atom once a later operand emits lines."""
        entries = []
        for thunk in thunks:
            atom = thunk()
            entries.append([len(self.lines), self.indent, atom])
        for entry in reversed(entries):
            mark, ind, atom = entry
            if len(self.lines) > mark and atom not in self._atomic:
                t = self.temp()
                self.lines.insert(mark, "    " * ind + f"{t} = {atom}")
                entry[2] = t
        return [entry[2] for entry in entries]

    def operands(self, *exprs) -> List[str]:
        return self.seq([lambda e=e: self.expr(e) for e in exprs])

    def subcompile(self, expr, indent_delta: int):
        """Compile ``expr`` into a detached buffer (for conditionally
        executed operands).  Returns (atom, lines)."""
        saved_lines, saved_indent = self.lines, self.indent
        self.lines, self.indent = [], self.indent + indent_delta
        try:
            atom = self.expr(expr)
            return atom, self.lines
        finally:
            self.lines, self.indent = saved_lines, saved_indent

    def splice(self, lines: List[str]) -> None:
        self.lines.extend(lines)

    def suite(self, emit) -> None:
        """Emit an indented suite, padding with ``pass`` if empty."""
        self.indent += 1
        mark = len(self.lines)
        try:
            emit()
            if len(self.lines) == mark:
                self.put("pass")
        finally:
            self.indent -= 1

    def site(self, kind: str, payload, descr) -> int:
        index = self.nsite
        self.nsite += 1
        self.sites.append((index, kind, payload, descr))
        return index

    def tick(self) -> None:
        """The per-statement op count + step budget check (identical
        observable points to the walker and closure backends)."""
        self.put("_ST.value += 1")
        self.put("if _ms is not None and _cnt.statements > _ms: "
                 "interp._raise_step_limit()")

    # -- top level -------------------------------------------------------

    def generate(self):
        for stmt in self.body.stmts:
            self.stmt(stmt)
        header = [
            f"# pycode: {method_label(self.method)}",
            "def _m(interp, v_this"
            + "".join(f", {p}" for p in self.formal_names) + "):",
            "    _ms = interp.max_steps",
            "    _cnt = interp.counters",
            "    try:",
        ]
        body = self.lines or ["        pass"]
        unb = self.const(dict(self.unbound),
                         ["lit", dict(self.unbound)])
        footer = [
            "    except (UnboundLocalError, NameError) as _exc:",
            f"        _unb(_exc, {unb})",
        ]
        source = "\n".join(header + body + footer) + "\n"
        return source, self.consts, self.sites

    # -- statements ------------------------------------------------------

    def block(self, block) -> None:
        for stmt in _stmts_of(block):
            self.stmt(stmt)

    def stmt(self, stmt) -> None:
        handler = _STMT_HANDLERS.get(stmt.node_kind)
        if handler is None:
            raise CodegenError(f"statement {stmt.node_kind}")
        handler(self, stmt)

    def _stmt_lazy(self, stmt) -> None:
        # The walker counts a lazy statement twice per execution (the
        # wrapper and the forced statement); mirror that.
        if not stmt.is_forced():
            raise CodegenError("unforced lazy statement")
        obs_lazy.thunk_forcing(stmt)
        self.tick()
        self.stmt(stmt.force())

    def _stmt_empty(self, stmt) -> None:
        self.tick()

    def _stmt_block(self, stmt) -> None:
        self.tick()
        self.block(stmt.body)

    def _stmt_use(self, stmt) -> None:
        self.tick()
        self.block(stmt.body)

    def _stmt_expr(self, stmt) -> None:
        self.tick()
        atom = self.expr(stmt.expr)
        if atom not in self._atomic:
            # Force evaluation (a bare local read can raise "unbound").
            self.put(atom)

    def _stmt_local_var(self, stmt) -> None:
        self.tick()
        scope = stmt.scope
        declared = resolve_type_name(stmt.type_name, scope) \
            if scope is not None else None
        for ident, dims, init in stmt.bindings():
            var_type = array_of(declared, dims) if declared and dims \
                else declared
            pname = self.pyname(ident.name)
            if init is None:
                value = default_value(var_type) if var_type else None
                self.put(f"{pname} = {self.literal_atom(value)}")
            elif isinstance(init, n.ArrayInitializer):
                if not isinstance(var_type, ArrayType):
                    raise CodegenError("array init on non-array")
                atom = self.array_init(init, var_type)
                self.put(f"{pname} = {atom}")
            else:
                atom = self.expr(init)
                self.put(f"{pname} = {atom}")

    def _stmt_if(self, stmt) -> None:
        self.tick()
        cond = self.expr(stmt.cond)
        self.put(f"if {cond}:")
        self.suite(lambda: self.stmt(stmt.then_stmt))
        if stmt.else_stmt is not None:
            self.put("else:")
            self.suite(lambda: self.stmt(stmt.else_stmt))

    def _stmt_while(self, stmt) -> None:
        self.tick()
        cond, cond_lines = self.subcompile(stmt.cond, 1)
        if not cond_lines:
            self.put(f"while {cond}:")
            self.suite(lambda: self.stmt(stmt.body))
            return
        self.put("while True:")
        self.splice(cond_lines)
        self.indent += 1
        self.put(f"if not ({cond}): break")
        self.indent -= 1
        self.suite(lambda: self.stmt(stmt.body))

    def _stmt_do(self, stmt) -> None:
        self.tick()
        if _binds_continue(stmt.body):
            # ``continue`` must re-check the condition: route the
            # backedge through a first-iteration flag.
            flag = self.flag()
            cond, cond_lines = self.subcompile(stmt.cond, 2)
            self.put(f"{flag} = True")
            self.put("while True:")
            self.indent += 1
            self.put(f"if {flag}:")
            self.put(f"    {flag} = False")
            self.put("else:")
            self.splice(cond_lines)
            self.indent += 1
            self.put(f"if not ({cond}): break")
            self.indent -= 2
            self.suite(lambda: self.stmt(stmt.body))
            return
        cond, cond_lines = self.subcompile(stmt.cond, 1)
        self.put("while True:")
        self.suite(lambda: self.stmt(stmt.body))
        self.splice(cond_lines)
        self.indent += 1
        self.put(f"if not ({cond}): break")
        self.indent -= 1

    def _stmt_for(self, stmt) -> None:
        self.tick()
        if isinstance(stmt.init, n.LocalVarDecl):
            self.stmt(stmt.init)
        elif isinstance(stmt.init, list):
            for init in stmt.init:
                self._discard(self.expr(init))
        elif stmt.init is not None:
            raise CodegenError("for-init shape")
        has_cond = stmt.cond is not None
        if _binds_continue(stmt.body):
            # ``continue`` must run the updates, then the condition.
            flag = self.flag()
            self.put(f"{flag} = True")
            self.put("while True:")
            self.indent += 1
            self.put(f"if {flag}:")
            self.put(f"    {flag} = False")
            self.put("else:")
            self.indent += 1
            mark = len(self.lines)
            for update in stmt.update:
                self._discard(self.expr(update))
            if len(self.lines) == mark:
                self.put("pass")
            self.indent -= 1
            if has_cond:
                cond = self.expr(stmt.cond)
                self.put(f"if not ({cond}): break")
            self.indent -= 1
            self.suite(lambda: self.stmt(stmt.body))
            return
        cond_atom = cond_lines = None
        if has_cond:
            cond_atom, cond_lines = self.subcompile(stmt.cond, 1)
        if has_cond and not cond_lines and not stmt.update:
            self.put(f"while {cond_atom}:")
            self.suite(lambda: self.stmt(stmt.body))
            return
        self.put("while True:")
        if has_cond:
            self.splice(cond_lines)
            self.indent += 1
            self.put(f"if not ({cond_atom}): break")
            self.indent -= 1
        self.suite(lambda: self.stmt(stmt.body))
        # Native ``break`` exits the loop entirely, skipping these —
        # exactly the walker's "break skips the updates".
        self.indent += 1
        for update in stmt.update:
            self._discard(self.expr(update))
        self.indent -= 1

    def _discard(self, atom: str) -> None:
        """Evaluate-and-discard an expression-statement atom (temps and
        constants have no effects left to run)."""
        if atom not in self._atomic:
            self.put(atom)

    def _stmt_return(self, stmt) -> None:
        self.tick()
        if stmt.expr is None:
            self.put("return None")
            return
        atom = self.expr(stmt.expr)
        self.put(f"return {atom}")

    def _stmt_throw(self, stmt) -> None:
        self.tick()
        atom = self.expr(stmt.expr)
        self.put(f"raise _JT({atom})")

    def _stmt_break(self, stmt) -> None:
        self.tick()
        self.put("break")

    def _stmt_continue(self, stmt) -> None:
        self.tick()
        self.put("continue")

    def _stmt_try(self, stmt) -> None:
        self.tick()
        clauses = []
        for clause in stmt.catches:
            caught = getattr(clause, "caught_type", None)
            if caught is None:
                formal_scope = clause.formal.scope
                if formal_scope is None:
                    raise CodegenError("unchecked catch clause")
                caught = resolve_type_name(clause.formal.type_name,
                                           formal_scope)
            pname = self.pyname(clause.formal.name.name)
            kc = self.const(caught, _descr_of_type(caught))
            clauses.append((kc, pname, clause.body))
        self.put("try:")
        self.suite(lambda: self.block(stmt.body))
        if clauses:
            exc = self.temp()
            val = self.temp()
            self.put(f"except _JT as {exc}:")
            self.indent += 1
            self.put(f"{val} = {exc}.value")
            branch = "if"
            for kc, pname, body in clauses:
                self.put(f"{branch} {val}.class_type"
                         f".is_subtype_of({kc}):")
                self.indent += 1
                self.put(f"{pname} = {val}")
                self.indent -= 1
                self.suite(lambda b=body: self.block(b))
                branch = "elif"
            self.put("else:")
            self.put("    raise")
            self.indent -= 1
        if stmt.finally_body is not None:
            # Native semantics match the walker: a return/break/
            # continue inside finally swallows any in-flight exception
            # and overrides the pending signal.
            self.put("finally:")
            self.suite(lambda: self.block(stmt.finally_body))

    # -- array initializers ---------------------------------------------

    def array_init(self, init, array_type: ArrayType) -> str:
        element = array_type.element
        self.put("_AL.value += 1")  # walker: allocation counted first
        thunks = []
        for item in init.elements:
            if isinstance(item, n.ArrayInitializer):
                if not isinstance(element, ArrayType):
                    raise CodegenError("nested array init shape")
                thunks.append(
                    lambda item=item: self.array_init(item, element))
            else:
                thunks.append(lambda item=item: self.expr(item))
        parts = self.seq(thunks)
        ke = self.const(element, _descr_of_type(element))
        t = self.temp()
        self.put(f"{t} = _JA({ke}, [{', '.join(parts)}])")
        return t

    # -- expressions -----------------------------------------------------

    def expr(self, expr) -> str:
        handler = _EXPR_HANDLERS.get(expr.node_kind)
        if handler is None:
            raise CodegenError(f"expression {expr.node_kind}")
        return handler(self, expr)

    def _expr_literal(self, expr) -> str:
        return self.literal_atom(expr.value)

    def _local_read(self, name: str) -> str:
        pname = self.pyname(name)
        self.unbound.setdefault(pname, f"unbound local {name}")
        return pname

    def _expr_name(self, expr) -> str:
        kind, payload, fields = self._resolve(expr)
        if kind == "local":
            base = self._local_read(payload.name)
        elif kind == "this_field":
            base = self.field_read("v_this", fields[0])
            fields = fields[1:]
        elif kind == "static":
            kp = self.const(payload, _descr_of_type(payload))
            kf = self.const(fields[0], _descr_of_field(fields[0]))
            t = self.temp()
            self.put(f"{t} = interp._read_static({kp}, {kf})")
            base = t
            fields = fields[1:]
        else:
            raise CodegenError(f"{expr} is a class, not a value")
        for field in fields:
            base = self.field_read(base, field)
        return base

    def _resolve(self, expr):
        try:
            return resolve_name(expr, expr.scope)
        except Exception as error:
            raise CodegenError(str(error)) from None

    def field_read(self, base: str, field) -> str:
        """The closure backend's ``_wrap_field_read``, inlined."""
        if field is None:  # the checker's array-length sentinel
            t = self.temp()
            self.put(f"{t} = len({base})")
            return t
        if field.is_static:
            kf = self.const(field, _descr_of_field(field))
            t = self.temp()
            self.put(f"{t} = interp._read_field({base}, {kf})")
            return t
        b = self.spill(base)
        fname = field.name
        t = self.temp()
        self.put("_FR.value += 1")
        self.put(f"if {b} is None: raise interp.throw("
                 f"'java.lang.NullPointerException', {fname!r})")
        self.put(f"{t} = {b}.fields.get({fname!r}, _MI)")
        self.put(f"if {t} is _MI: {t} = {b}.fields[{fname!r}] = "
                 f"{self.literal_atom(default_value(field.type))}")
        return t

    def _expr_reference(self, expr) -> str:
        binding = expr.binding
        name = getattr(binding, "name", binding)
        if isinstance(name, n.Ident):
            name = name.name
        if not isinstance(name, str):
            raise CodegenError("reference binding shape")
        pname = self.pyname(name)
        t = self.temp()
        self.put("try:")
        self.put(f"    {t} = {pname}")
        self.put("except (UnboundLocalError, NameError):")
        message = f"unbound reference {name}"
        self.put(f"    raise _ME({message!r}) from None")
        return t

    def _expr_this(self, expr) -> str:
        return "v_this"

    def _expr_paren(self, expr) -> str:
        return self.expr(expr.inner)

    def _expr_field_access(self, expr) -> str:
        name = expr.name
        if isinstance(expr.receiver, n.SuperExpr):
            recv = "v_this"
        else:
            recv = self.expr(expr.receiver)
        field = getattr(expr, "field", _MISSING)
        if field is _MISSING:
            # Unchecked access: runtime field lookup, inline-cached.
            index = self.site("ifield", name, name)
            r = self.spill(recv)
            t = self.temp()
            self.put(f"{t} = _s{index}(interp, {r})")
            return t
        if field is None:  # array length, statically known
            r = self.spill(recv)
            t = self.temp()
            self.put(f"{t} = len({r}) if isinstance({r}, _JA) else "
                     f"interp._read_field({r}, "
                     f"interp._class_of_value({r}).find_field({name!r}))")
            return t
        if name == "length" or field.is_static:
            kf = self.const(field, _descr_of_field(field))
            r = self.spill(recv)
            t = self.temp()
            if name == "length":
                self.put(f"{t} = len({r}) if isinstance({r}, _JA) "
                         f"else interp._read_field({r}, {kf})")
            else:
                self.put(f"{t} = interp._read_field({r}, {kf})")
            return t
        return self.field_read(recv, field)

    def _expr_array_access(self, expr) -> str:
        arr, idx = self.operands(expr.array, expr.index)
        a = self.spill(arr)
        i = self.spill(idx)
        t = self.temp()
        self.put("_AR.value += 1")
        self.put(f"if {a} is None: raise interp.throw("
                 f"'java.lang.NullPointerException', None)")
        self.put(f"{t} = {a}.values")
        self.put(f"if {i} < 0 or {i} >= len({t}): raise interp.throw("
                 f"'java.lang.IndexOutOfBoundsException', str({i}))")
        t2 = self.temp()
        self.put(f"{t2} = {t}[{i}]")
        return t2

    # -- invocations -----------------------------------------------------

    def _target_of(self, expr):
        if not hasattr(expr, "target"):
            try:
                static_type_of(expr)
            except Exception as error:
                raise CodegenError(str(error)) from None
        return expr.target

    def _expr_invocation(self, expr) -> str:
        kind, payload, method = self._target_of(expr)
        if kind == "instance":
            if method.is_static:
                # Instance-qualified static call: no dispatch.
                return self._static_call(method, expr.args,
                                         recv_expr=payload,
                                         null_check=True)
            return self._virtual_call(method, expr.args,
                                      recv_expr=payload, null_check=True)
        if kind == "this":
            if method.is_static:
                return self._static_call(method, expr.args,
                                         recv_atom="v_this")
            return self._virtual_call(method, expr.args,
                                      recv_atom="v_this",
                                      null_check=False)
        if kind == "static":
            return self._static_call(method, expr.args, recv_atom="None")
        if kind == "super":
            return self._static_call(method, expr.args,
                                     recv_atom="v_this")
        # ctor_call (<this>/<super>) only occurs in constructor bodies,
        # which always run on the walker.
        raise CodegenError(f"invocation target {kind}")

    def _call_operands(self, args, recv_expr, recv_atom):
        """Evaluate args then receiver (the walker's order), returning
        (arg atoms, receiver atom)."""
        thunks = [lambda a=a: self.expr(a) for a in args]
        if recv_expr is not None:
            thunks.append(lambda: self.expr(recv_expr))
            atoms = self.seq(thunks)
            return atoms[:-1], self.spill(atoms[-1])
        atoms = self.seq(thunks)
        return atoms, recv_atom

    def _emit_direct_call(self, out, f_cell, m_cell, recv, arg_atoms):
        """The caller-side depth guard + direct call (one depth
        increment, like ``invoke_exact``)."""
        d = self.temp()
        self.put(f"{d} = interp._call_depth")
        self.put(f"if {d} >= interp.max_call_depth: "
                 f"_ovf(interp, {m_cell})")
        self.put(f"interp._call_depth = {d} + 1")
        self.put("try:")
        call_args = ", ".join(["interp", recv] + list(arg_atoms))
        self.put(f"    {out} = {f_cell}({call_args})")
        self.put("finally:")
        self.put(f"    interp._call_depth = {d}")

    def _virtual_call(self, method, args, recv_expr=None, recv_atom=None,
                      null_check=True) -> str:
        arg_atoms, recv = self._call_operands(args, recv_expr, recv_atom)
        index = self.site("call", method, _descr_of_method(method))
        mname = method.name
        r = self.spill(recv)
        t = self.temp()
        tup = ", ".join(arg_atoms) + ("," if len(arg_atoms) == 1 else "")
        if null_check:
            self.put(f"if {r} is None: raise interp.throw("
                     f"'java.lang.NullPointerException', {mname!r})")
            self.put("_MC.value += 1")
        else:
            # A this-call may legally see a None receiver (static
            # contexts): the walker skips dispatch and calls exactly.
            self.put(f"if {r} is None:")
            self.indent += 1
            self.put("_MC.value += 1")
            self.put(f"{t} = interp.invoke_exact(_s{index}_m0, {r}, "
                     f"[{', '.join(arg_atoms)}])")
            self.indent -= 1
            self.put("else:")
            self.indent += 1
            self.put("_MC.value += 1")
        k = self.temp()
        self.put(f"{k} = {r}.class_type if type({r}) is _JO "
                 f"else interp._class_of_value({r})")
        self.put(f"if {k} is _s{index}_k:")
        self.indent += 1
        self._emit_direct_call(t, f"_s{index}_f", f"_s{index}_m",
                               r, arg_atoms)
        self.indent -= 1
        self.put("else:")
        self.put(f"    {t} = _s{index}_d(interp, {r}, {k}, ({tup}))")
        if not null_check:
            self.indent -= 1
            # The static target constant for the None-receiver branch.
            km = self.const(method, _descr_of_method(method))
            # Alias it under the name the branch above used.
            self._alias_const(km, f"_s{index}_m0")
        return t

    def _alias_const(self, existing: str, alias: str) -> None:
        for i, (name, value, descr) in enumerate(self.consts):
            if name == existing:
                self.consts[i] = (alias, value, descr)
                self._atomic.add(alias)
                return
        raise CodegenError("alias target missing")

    def _static_call(self, method, args, recv_expr=None, recv_atom=None,
                     null_check=False) -> str:
        arg_atoms, recv = self._call_operands(args, recv_expr, recv_atom)
        index = self.site("scall", method, _descr_of_method(method))
        if null_check:
            r = self.spill(recv)
            self.put(f"if {r} is None: raise interp.throw("
                     f"'java.lang.NullPointerException', {method.name!r})")
            recv = r
        self.put("_MC.value += 1")
        t = self.temp()
        tup = ", ".join(arg_atoms) + ("," if len(arg_atoms) == 1 else "")
        self.put(f"if _s{index}_f is not None:")
        self.indent += 1
        self._emit_direct_call(t, f"_s{index}_f", f"_s{index}_m",
                               recv, arg_atoms)
        self.indent -= 1
        self.put("else:")
        self.put(f"    {t} = _s{index}_g(interp, {recv}, ({tup}))")
        return t

    def _expr_new_object(self, expr) -> str:
        _, klass, ctor = self._target_of(expr)
        arg_atoms = self.seq(
            [lambda a=a: self.expr(a) for a in expr.args])
        kk = self.const(klass, _descr_of_type(klass))
        kc = self.const(ctor, _descr_of_method(ctor))
        t = self.temp()
        self.put(f"{t} = interp.construct({kk}, {kc}, "
                 f"[{', '.join(arg_atoms)}])")
        return t

    def _expr_new_array(self, expr) -> str:
        if expr.scope is None:
            raise CodegenError("unscoped new array")
        element = resolve_type_name(expr.element_type, expr.scope)
        if expr.initializer is not None:
            total_dims = max(len(expr.dim_exprs) + expr.extra_dims, 1)
            return self.array_init(expr.initializer,
                                   array_of(element, total_dims))
        dim_atoms = self.seq(
            [lambda d=d: self.expr(d) for d in expr.dim_exprs])
        ke = self.const(element, _descr_of_type(element))
        t = self.temp()
        self.put(f"{t} = interp._allocate({ke}, "
                 f"[{', '.join(dim_atoms)}], {expr.extra_dims})")
        return t

    # -- operators -------------------------------------------------------

    def _expr_unary(self, expr) -> str:
        op = expr.op
        if op in ("++", "--"):
            return self._compile_incr(expr.operand, op, prefix=True)
        operand = self.expr(expr.operand)
        stype = getattr(expr.operand, "_static_type", None)
        numeric = _is_numeric_type(stype)
        if op == "!":
            return f"(not {operand})"
        if op == "-":
            if numeric:
                return f"(-{operand})"
            t = self.temp()
            self.put(f"{t} = -_num({operand})")
            return t
        if op == "+":
            if numeric:
                return operand
            t = self.temp()
            self.put(f"{t} = _num({operand})")
            return t
        if op == "~":
            if numeric:
                return f"(~{operand})"
            t = self.temp()
            self.put(f"{t} = ~_num({operand})")
            return t
        raise CodegenError(f"unary {op}")

    def _expr_postfix(self, expr) -> str:
        return self._compile_incr(expr.operand, expr.op, prefix=False)

    def _compile_incr(self, lvalue, op, prefix: bool) -> str:
        store = self.store(lvalue)
        delta = "+ 1" if op == "++" else "- 1"
        stype = getattr(lvalue, "_static_type", None)
        old = self.spill(self.expr(lvalue))
        if not _is_numeric_type(stype):
            t = self.temp()
            self.put(f"{t} = _num({old})")
            old = t
        new = self.temp()
        self.put(f"{new} = {old} {delta}")
        store(new)
        return new if prefix else old

    def _expr_binary(self, expr) -> str:
        op = expr.op
        lt = getattr(expr.left, "_static_type", None)
        rt = getattr(expr.right, "_static_type", None)
        both_int = _is_int_type(lt) and _is_int_type(rt)
        both_numeric = _is_numeric_type(lt) and _is_numeric_type(rt)
        both_boolean = lt is BOOLEAN and rt is BOOLEAN

        # Literal folding: int-literal operands with direct semantics.
        if isinstance(expr.left, n.Literal) and \
                isinstance(expr.right, n.Literal) and \
                expr.left.kind in ("int", "long") and \
                expr.right.kind in ("int", "long"):
            folded = _FOLDABLE.get(op)
            if folded is not None:
                return self.literal_atom(
                    folded(expr.left.value, expr.right.value))

        if op in ("&&", "||"):
            return self._short_circuit(expr, op, both_boolean)

        left, right = self.operands(expr.left, expr.right)

        if op == "+":
            stype = getattr(expr, "_static_type", None)
            if _is_string_type(stype):
                t = self.temp()
                self.put(f"{t} = _jstr({left}) + _jstr({right})")
                return t
            if stype is not None:
                if both_numeric:
                    return f"({left} + {right})"
                t = self.temp()
                self.put(f"{t} = _num({left}) + _num({right})")
                return t
            t = self.temp()
            self.put(f"{t} = _bop(interp, '+', {left}, {right})")
            return t

        if op in ("==", "!="):
            if both_numeric:
                return f"({left} {op} {right})"
            t = self.temp()
            invert = "" if op == "==" else "not "
            self.put(f"{t} = {invert}_jeq({left}, {right})")
            return t

        if both_numeric and op in ("<", ">", "<=", ">=", "-", "*"):
            return f"({left} {op} {right})"

        if both_int and op in ("/", "%"):
            a = self.spill(left)
            b = self.spill(right)
            t = self.temp()
            self.put(f"if {b} == 0: raise interp.throw("
                     f"'java.lang.ArithmeticException', '{op} by zero')")
            self.put(f"{t} = abs({a}) // abs({b})")
            if op == "/":
                self.put(f"if ({a} >= 0) != ({b} >= 0): {t} = -{t}")
                return t
            self.put(f"if ({a} >= 0) != ({b} >= 0): {t} = -{t}")
            t2 = self.temp()
            self.put(f"{t2} = {a} - {t} * {b}")
            return t2

        if both_boolean and op in ("&", "|", "^"):
            if op == "&":
                return f"({left} and {right})"
            if op == "|":
                return f"({left} or {right})"
            return f"({left} != {right})"

        t = self.temp()
        self.put(f"{t} = _bop(interp, {op!r}, {left}, {right})")
        return t

    def _short_circuit(self, expr, op, both_boolean) -> str:
        left = self.expr(expr.left)
        right, right_lines = self.subcompile(expr.right, 1)
        if not right_lines:
            if both_boolean:
                word = "and" if op == "&&" else "or"
                return f"({left} {word} {right})"
            word = "and" if op == "&&" else "or"
            return f"(bool({left}) {word} bool({right}))"
        t = self.temp()
        if both_boolean:
            self.put(f"{t} = {left}")
            self.put(f"if {t}:" if op == "&&" else f"if not {t}:")
        else:
            self.put(f"{t} = bool({left})")
            self.put(f"if {t}:" if op == "&&" else f"if not {t}:")
        self.splice(right_lines)
        self.indent += 1
        if both_boolean:
            self.put(f"{t} = {right}")
        else:
            self.put(f"{t} = bool({right})")
        self.indent -= 1
        return t

    def _expr_instanceof(self, expr) -> str:
        if expr.scope is None:
            raise CodegenError("unscoped instanceof")
        target = resolve_type_name(expr.type_name, expr.scope)
        value = self.expr(expr.expr)
        index = self.site("instanceof", target, _descr_of_type(target))
        t = self.temp()
        self.put(f"{t} = _s{index}(interp, {value})")
        return t

    def _expr_cast(self, expr) -> str:
        if expr.scope is None:
            raise CodegenError("unscoped cast")
        target = resolve_type_name(expr.type_name, expr.scope)
        value = self.expr(expr.expr)
        if isinstance(target, PrimitiveType):
            kt = self.const(target, _descr_of_type(target))
            t = self.temp()
            self.put(f"{t} = _pcast({value}, {kt})")
            return t
        index = self.site("cast", target, _descr_of_type(target))
        t = self.temp()
        self.put(f"{t} = _s{index}(interp, {value})")
        return t

    def _expr_assignment(self, expr) -> str:
        store = self.store(expr.lhs)
        if expr.op == "=":
            value = self.spill(self.expr(expr.value))
            store(value)
            return value
        op = expr.op[:-1]
        # Compound assignment mirrors the walker exactly: the lhs is
        # read once, the combine always goes through the generic
        # operator, and the store re-evaluates the receiver.
        current, value = self.seq([
            lambda: self.expr(expr.lhs),
            lambda: self.expr(expr.value),
        ])
        t = self.temp()
        self.put(f"{t} = _bop(interp, {op!r}, {current}, {value})")
        store(t)
        return t

    def _expr_conditional(self, expr) -> str:
        cond = self.expr(expr.cond)
        then_atom, then_lines = self.subcompile(expr.then_expr, 1)
        else_atom, else_lines = self.subcompile(expr.else_expr, 1)
        if not then_lines and not else_lines:
            return f"(({then_atom}) if ({cond}) else ({else_atom}))"
        t = self.temp()
        self.put(f"if {cond}:")
        self.splice(then_lines)
        self.indent += 1
        self.put(f"{t} = {then_atom}")
        self.indent -= 1
        self.put("else:")
        self.splice(else_lines)
        self.indent += 1
        self.put(f"{t} = {else_atom}")
        self.indent -= 1
        return t

    # -- lvalue stores ---------------------------------------------------

    def store(self, lhs):
        """Compile an lvalue into ``emit(value_atom)`` — called *after*
        the value is evaluated, so receiver evaluation order matches
        the walker's store closures."""
        if isinstance(lhs, n.ParenExpr):
            return self.store(lhs.inner)
        if isinstance(lhs, n.NameExpr):
            return self._store_name(lhs)
        if isinstance(lhs, n.FieldAccess):
            return self._store_field_access(lhs)
        if isinstance(lhs, n.ArrayAccess):
            return self._store_array_access(lhs)
        if isinstance(lhs, n.Reference):
            binding = lhs.binding
            name = getattr(binding, "name", binding)
            if isinstance(name, n.Ident):
                name = name.name
            if not isinstance(name, str):
                raise CodegenError("reference binding shape")
            pname = self.pyname(name)
            return lambda value: self.put(f"{pname} = {value}")
        raise CodegenError(f"assignment target {type(lhs).__name__}")

    def _store_name(self, lhs):
        kind, payload, fields = self._resolve(lhs)
        if kind == "local" and not fields:
            pname = self.pyname(payload.name)
            return lambda value: self.put(f"{pname} = {value}")
        if kind == "local":
            pname = self.pyname(payload.name)
            name = payload.name
            mids, last = fields[:-1], fields[-1]

            def emit(value):
                t = self.temp()
                self.put("try:")
                self.put(f"    {t} = {pname}")
                self.put("except (UnboundLocalError, NameError):")
                self.put(f"    raise KeyError({name!r}) from None")
                self._store_chain(t, mids, last, value)
            return emit
        if kind == "this_field":
            mids, last = fields[:-1], fields[-1]
            return lambda value: self._store_chain("v_this", mids, last,
                                                   value)
        if kind == "static":
            if len(fields) == 1:
                field = fields[0]
                key = (field.declaring_class.name, field.name)

                def emit(value):
                    self.put("_FW.value += 1")
                    self.put(f"interp.statics[{key!r}] = {value}")
                return emit
            first, mids, last = fields[0], fields[1:-1], fields[-1]
            kp = self.const(payload, _descr_of_type(payload))
            kf = self.const(first, _descr_of_field(first))

            def emit(value):
                t = self.temp()
                self.put(f"{t} = interp._read_static({kp}, {kf})")
                self._store_chain(t, mids, last, value)
            return emit
        raise CodegenError(f"cannot assign to {lhs}")

    def _store_chain(self, target: str, mids, last, value: str) -> None:
        for field in mids:
            kf = self.const(field, _descr_of_field(field))
            t = self.temp()
            self.put(f"{t} = interp._read_field({target}, {kf})")
            target = t
        kl = self.const(last, _descr_of_field(last))
        self.put(f"interp._write_field({target}, {kl}, {value})")

    def _store_field_access(self, lhs):
        field = getattr(lhs, "field", None)
        if field is not None:
            kf = self.const(field, _descr_of_field(field))

            def emit(value):
                recv = self.expr(lhs.receiver)
                self.put(f"interp._write_field({recv}, {kf}, {value})")
            return emit
        index = self.site("sfield", lhs.name, lhs.name)

        def emit(value):
            recv = self.expr(lhs.receiver)
            self.put(f"_s{index}(interp, {recv}, {value})")
        return emit

    def _store_array_access(self, lhs):
        def emit(value):
            arr, idx = self.operands(lhs.array, lhs.index)
            a = self.spill(arr)
            i = self.spill(idx)
            self.put("_AW.value += 1")
            self.put(f"if {a} is None: raise interp.throw("
                     f"'java.lang.NullPointerException', None)")
            t = self.temp()
            self.put(f"{t} = {a}.values")
            self.put(f"if {i} < 0 or {i} >= len({t}): "
                     f"raise interp.throw("
                     f"'java.lang.IndexOutOfBoundsException', str({i}))")
            self.put(f"{t}[{i}] = {value}")
        return emit


_STMT_HANDLERS = {
    "lazy_node": _MethodGen._stmt_lazy,
    "empty_stmt": _MethodGen._stmt_empty,
    "block": _MethodGen._stmt_block,
    "use_stmt": _MethodGen._stmt_use,
    "expr_stmt": _MethodGen._stmt_expr,
    "local_var_decl": _MethodGen._stmt_local_var,
    "if_stmt": _MethodGen._stmt_if,
    "while_stmt": _MethodGen._stmt_while,
    "do_stmt": _MethodGen._stmt_do,
    "for_stmt": _MethodGen._stmt_for,
    "return_stmt": _MethodGen._stmt_return,
    "throw_stmt": _MethodGen._stmt_throw,
    "break_stmt": _MethodGen._stmt_break,
    "continue_stmt": _MethodGen._stmt_continue,
    "try_stmt": _MethodGen._stmt_try,
}

_EXPR_HANDLERS = {
    "literal": _MethodGen._expr_literal,
    "name_expr": _MethodGen._expr_name,
    "reference": _MethodGen._expr_reference,
    "this_expr": _MethodGen._expr_this,
    "paren_expr": _MethodGen._expr_paren,
    "field_access": _MethodGen._expr_field_access,
    "array_access": _MethodGen._expr_array_access,
    "method_invocation": _MethodGen._expr_invocation,
    "new_object": _MethodGen._expr_new_object,
    "new_array": _MethodGen._expr_new_array,
    "unary_expr": _MethodGen._expr_unary,
    "postfix_expr": _MethodGen._expr_postfix,
    "binary_expr": _MethodGen._expr_binary,
    "instanceof_expr": _MethodGen._expr_instanceof,
    "cast_expr": _MethodGen._expr_cast,
    "assignment": _MethodGen._expr_assignment,
    "conditional_expr": _MethodGen._expr_conditional,
}
