"""The tree-walking interpreter (and the seam to the closure backend)."""

from __future__ import annotations

import os
import sys
from typing import Dict, List, Optional, Tuple

from repro.ast import nodes as n
from repro.core import CompiledProgram, MayaError
from repro.diag import DiagnosticError
from repro.obs import lazy as obs_lazy
from repro.obs.metrics import REGISTRY
from repro.interp.builtins import StreamPeer, build_table
from repro.interp.values import (
    JavaArray,
    JavaObject,
    JavaThrow,
    default_value,
    java_str,
)
from repro.typecheck import resolve_type_name
from repro.types import (
    ArrayType,
    ClassType,
    Method,
    PrimitiveType,
    Type,
    array_of,
)

#: Operation counts, by kind — bumped by both execution backends at the
#: same observable points, exported via --metrics-out like every other
#: registry family.  Children are bound once here so the hot paths pay
#: a single integer add.
_OPS = REGISTRY.counter(
    "maya_interp_ops_total",
    "Interpreter operations executed, by kind.",
    ("op",))
_C_ALLOCATIONS = _OPS.labels("allocations")
_C_METHOD_CALLS = _OPS.labels("method_calls")
_C_FIELD_READS = _OPS.labels("field_reads")
_C_FIELD_WRITES = _OPS.labels("field_writes")
_C_ARRAY_READS = _OPS.labels("array_reads")
_C_ARRAY_WRITES = _OPS.labels("array_writes")
_C_STATEMENTS = _OPS.labels("statements")

_OP_CHILDREN = {
    "allocations": _C_ALLOCATIONS,
    "method_calls": _C_METHOD_CALLS,
    "field_reads": _C_FIELD_READS,
    "field_writes": _C_FIELD_WRITES,
    "array_reads": _C_ARRAY_READS,
    "array_writes": _C_ARRAY_WRITES,
    "statements": _C_STATEMENTS,
}

#: Lazily imported closure backend (repro.interp.closures); deferred so
#: walk-only embedders never pay the import and to break the module
#: cycle (closures imports this module's helpers).
_closures = None
_pycodegen = None


class Counters:
    """Operation counters (used by the benchmarks to measure what the
    paper's optimized expansions save).

    Since the telemetry unification this is a per-interpreter *view*
    over the process-wide ``maya_interp_ops_total{op}`` registry family
    — the same port PR 4 did for ``perf.CacheStats``.  Both backends
    bump the registry children directly; each view subtracts the
    baseline captured at construction / ``reset()``, so the historical
    per-interpreter semantics and ``snapshot()`` shape are unchanged
    while ``--metrics-out`` exports the same numbers.
    """

    __slots__ = ("_base",)

    _fields = ("allocations", "method_calls", "field_reads", "field_writes",
               "array_reads", "array_writes", "statements")

    def __init__(self):
        self._base: Dict[str, int] = {}
        self.reset()

    def reset(self):
        for name, child in _OP_CHILDREN.items():
            self._base[name] = child.value

    def _get(self, name: str) -> int:
        return max(0, _OP_CHILDREN[name].value - self._base[name])

    @property
    def allocations(self) -> int:
        return self._get("allocations")

    @property
    def method_calls(self) -> int:
        return self._get("method_calls")

    @property
    def field_reads(self) -> int:
        return self._get("field_reads")

    @property
    def field_writes(self) -> int:
        return self._get("field_writes")

    @property
    def array_reads(self) -> int:
        return self._get("array_reads")

    @property
    def array_writes(self) -> int:
        return self._get("array_writes")

    @property
    def statements(self) -> int:
        return self._get("statements")

    def snapshot(self) -> Dict[str, int]:
        return {name: self._get(name) for name in self._fields}


#: Default Java-level call-depth budget.  Each interpreted call burns a
#: handful of Python frames, so the budget plus the recursion-limit bump
#: below guarantees JavaStackOverflow fires before Python's own
#: RecursionError would.
DEFAULT_MAX_CALL_DEPTH = 256

_RECURSION_LIMIT = 10_000


class JavaStackOverflow(DiagnosticError):
    """Interpreted Java recursion exceeded the call-depth budget.

    The Java program's runaway recursion, not the host's: catchable by
    embedders and reported as a clean diagnostic by mayac --run."""

    phase = "interp"


class StepLimitExceeded(DiagnosticError):
    """The interpreter's statement budget ran out (infinite-loop guard
    for embedders that set ``max_steps``)."""

    phase = "interp"


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class Interpreter:
    """Executes a CompiledProgram.

    ``backend`` selects the execution strategy: ``"walk"`` (the seed
    tree-walker, the default), ``"closure"`` (slot frames + inline
    caches; see ``repro.interp.closures``) or ``"pycode"`` (generated
    Python source with specialized call sites; see
    ``repro.interp.pycodegen`` — methods its codegen cannot reproduce
    fall back to the closure backend, and from there to the walker).
    When None, the ``MAYA_BACKEND`` environment variable decides,
    defaulting to walk.
    """

    def __init__(self, program: CompiledProgram, echo: bool = False,
                 max_call_depth: int = DEFAULT_MAX_CALL_DEPTH,
                 max_steps: Optional[int] = None,
                 backend: Optional[str] = None):
        if backend is None:
            backend = os.environ.get("MAYA_BACKEND", "") or "walk"
        if backend not in ("walk", "closure", "pycode"):
            raise MayaError(
                f"unknown interpreter backend {backend!r} "
                f"(expected 'walk', 'closure' or 'pycode')"
            )
        self.backend = backend
        if backend in ("closure", "pycode"):
            global _closures
            if _closures is None:
                from repro.interp import closures

                _closures = closures
        if backend == "pycode":
            global _pycodegen
            if _pycodegen is None:
                from repro.interp import pycodegen

                _pycodegen = pycodegen
        self.program = program
        self.registry = program.env.registry
        self.builtins = build_table()
        self.counters = Counters()
        self.statics: Dict[Tuple[str, str], object] = {}
        self.out = self._make_stream(echo)
        self.err = self._make_stream(echo)
        self._statics_initialized = False
        self.max_call_depth = max_call_depth
        self.max_steps = max_steps
        self._call_depth = 0
        if sys.getrecursionlimit() < _RECURSION_LIMIT:
            sys.setrecursionlimit(_RECURSION_LIMIT)

    # -- setup -----------------------------------------------------------

    def _make_stream(self, echo: bool) -> JavaObject:
        stream = JavaObject(self.registry.require("java.io.PrintStream"))
        stream.peer = StreamPeer(echo)
        return stream

    @property
    def output(self) -> List[str]:
        """Lines printed to System.out so far."""
        return self.out.peer.lines

    @property
    def error_output(self) -> List[str]:
        return self.err.peer.lines

    def _init_statics(self) -> None:
        if self._statics_initialized:
            return
        self._statics_initialized = True
        for compiled in self.program.classes.values():
            for member in compiled.decl.members:
                if not isinstance(member, n.FieldDecl):
                    continue
                if "static" not in member.modifiers:
                    continue
                field_scope = None
                for declarator in member.declarators:
                    field = compiled.type.fields[declarator.name.name]
                    key = (compiled.type.name, field.name)
                    if declarator.init is not None:
                        value = self._eval_initializer(
                            declarator.init, field.type, {"this": None}
                        )
                    else:
                        value = default_value(field.type)
                    self.statics[key] = value

    # -- entry points ----------------------------------------------------------

    def run_static(self, class_name: str, method_name: str = "main", args=()):
        """Invoke a static method of a compiled class."""
        self._init_statics()
        compiled = self.program.class_named(class_name)
        arg_values = list(args)
        method = None
        for candidate in compiled.type.all_methods(method_name):
            if candidate.is_static and len(candidate.param_types) == len(arg_values):
                method = candidate
                break
        if method is None:
            raise MayaError(f"no static method {class_name}.{method_name}")
        return self.invoke(method, None, arg_values)

    def new_instance(self, class_name: str, args=()):
        """Instantiate a compiled or built-in class by name."""
        self._init_statics()
        klass = self.registry.require(class_name)
        arg_types = [self._runtime_type(a) for a in args]
        ctor = klass.find_constructor(arg_types)
        return self.construct(klass, ctor, list(args))

    def call(self, receiver, method_name: str, args=()):
        """Invoke a method on a runtime object (virtual dispatch)."""
        klass = self._class_of_value(receiver)
        arg_types = [self._runtime_type(a) for a in args]
        method = klass.find_method(method_name, arg_types)
        return self.invoke(method, receiver, list(args))

    # -- exceptions -----------------------------------------------------------

    def throw(self, class_name: str, message: Optional[str]) -> JavaThrow:
        exception = JavaObject(self.registry.require(class_name))
        exception.fields["message"] = message
        return JavaThrow(exception)

    # -- allocation -------------------------------------------------------------

    def new_builtin(self, class_name: str, peer=None) -> JavaObject:
        _C_ALLOCATIONS.value += 1
        obj = JavaObject(self.registry.require(class_name), peer)
        return obj

    def construct(self, klass: ClassType, ctor: Method, args) -> JavaObject:
        _C_ALLOCATIONS.value += 1
        obj = JavaObject(klass)
        self._run_field_inits(obj, klass)
        self._run_ctor(obj, klass, ctor, args)
        return obj

    def _run_field_inits(self, obj: JavaObject, klass: ClassType) -> None:
        chain = [k for k in klass.ancestors() if not k.is_interface]
        for current in reversed(chain):
            decl = getattr(current, "decl", None)
            if decl is None:
                continue
            for member in decl.members:
                if not isinstance(member, n.FieldDecl):
                    continue
                if "static" in member.modifiers:
                    continue
                for declarator in member.declarators:
                    field = current.fields[declarator.name.name]
                    if declarator.init is not None:
                        value = self._eval_initializer(
                            declarator.init, field.type, {"this": obj}
                        )
                    else:
                        value = default_value(field.type)
                    obj.fields[field.name] = value

    def _run_ctor(self, obj: JavaObject, klass: ClassType, ctor: Method, args):
        builtin = self.builtins.find_constructor(klass.name)
        if builtin is not None:
            builtin(self, obj, args)
            return
        if ctor.decl is None:
            # Implicit no-arg constructor: chain to the superclass.
            if klass.superclass is not None:
                parent = klass.superclass
                self._run_ctor(obj, parent, parent.find_constructor(()), [])
            return
        decl = ctor.decl
        frame = {"this": obj, "__class__": klass}
        for formal, value in zip(decl.formals, args):
            frame[formal.name.name] = value
        body = decl.body
        explicit_chain = _starts_with_ctor_call(body)
        if not explicit_chain and klass.superclass is not None:
            parent = klass.superclass
            if self.builtins.find_constructor(parent.name) is not None:
                self.builtins.find_constructor(parent.name)(self, obj, [])
            else:
                self._run_ctor(obj, parent, parent.find_constructor(()), [])
        try:
            self.exec_block(body, frame)
        except _Return:
            pass

    # -- invocation ---------------------------------------------------------------

    def invoke(self, method: Method, receiver, args):
        """Invoke with virtual dispatch on the receiver's runtime class."""
        _C_METHOD_CALLS.value += 1
        if receiver is not None and not method.is_static:
            runtime_class = self._class_of_value(receiver)
            method = self._virtual_lookup(runtime_class, method)
        return self.invoke_exact(method, receiver, args)

    def invoke_exact(self, method: Method, receiver, args):
        """Invoke without virtual lookup (super sends)."""
        if self._call_depth >= self.max_call_depth:
            raise JavaStackOverflow(
                f"Java stack overflow: call depth exceeded "
                f"{self.max_call_depth} invoking {method}"
            )
        self._call_depth += 1
        try:
            return self._invoke_exact(method, receiver, args)
        finally:
            self._call_depth -= 1

    def _invoke_exact(self, method: Method, receiver, args):
        if method.impl is not None:
            # A Python implementation attached directly to the Method
            # (intercession-added members).
            return method.impl(self, receiver, args)
        if self.backend == "pycode" and method.decl is not None \
                and method.decl.body is not None:
            plan = _pycodegen.plan_for(method, self)
            if plan is not _pycodegen.FALLBACK:
                return _pycodegen.run_plan(self, plan, receiver, args)
            # Codegen declined this method: drop to the closure tier.
            plan = _closures.plan_for(method)
            if plan is not _closures.WALK:
                return _closures.run_plan(self, plan, receiver, args)
        elif self.backend == "closure" and method.decl is not None \
                and method.decl.body is not None:
            plan = _closures.plan_for(method)
            if plan is not _closures.WALK:
                return _closures.run_plan(self, plan, receiver, args)
        impl = None
        if method.decl is None:
            # Built-in implementation: search the receiver's runtime
            # class chain first (so StringBuffer.toString beats
            # Object.toString), then the declaring class chain.
            search: List[ClassType] = []
            if receiver is not None and isinstance(receiver, (JavaObject, str)):
                search.extend(self._class_of_value(receiver).ancestors())
            if method.declaring_class is not None:
                search.extend(method.declaring_class.ancestors())
            for ancestor in search:
                impl = self.builtins.find_method(ancestor.name, method.name)
                if impl is not None:
                    break
        if impl is not None:
            return impl(self, receiver, args)
        decl = method.decl
        if decl is None or decl.body is None:
            raise MayaError(f"method {method} has no implementation")
        frame = {"this": receiver, "__class__": method.declaring_class}
        for formal, value in zip(decl.formals, args):
            frame[formal.name.name] = value
        try:
            self.exec_block(decl.body, frame)
        except _Return as ret:
            return ret.value
        return None

    def _virtual_lookup(self, runtime_class: ClassType, method: Method) -> Method:
        for candidate in runtime_class.all_methods(method.name):
            if candidate.same_signature(method):
                return candidate
        return method

    def _class_of_value(self, value) -> ClassType:
        if isinstance(value, JavaObject):
            return value.class_type
        if isinstance(value, str):
            return self.registry.require("java.lang.String")
        if value is None:
            raise self.throw("java.lang.NullPointerException", None)
        if isinstance(value, JavaArray):
            return self.registry.require("java.lang.Object")
        raise MayaError(f"no class for value {value!r}")

    def _runtime_type(self, value) -> Type:
        from repro.types import BOOLEAN, DOUBLE, INT, NULL

        if isinstance(value, bool):
            return BOOLEAN
        if isinstance(value, int):
            return INT
        if isinstance(value, float):
            return DOUBLE
        if value is None:
            return NULL
        if isinstance(value, JavaArray):
            return array_of(value.element_type)
        return self._class_of_value(value)

    # -- statements ----------------------------------------------------------------

    def _raise_step_limit(self):
        raise StepLimitExceeded(
            f"step budget exhausted: executed more than "
            f"{self.max_steps} statements"
        )

    def exec_block(self, block, frame) -> None:
        stmts = block.stmts if isinstance(block, n.BlockStmts) else block
        for stmt in stmts:
            self.exec_stmt(stmt, frame)

    def exec_stmt(self, stmt, frame) -> None:
        _C_STATEMENTS.value += 1
        if self.max_steps is not None and \
                self.counters.statements > self.max_steps:
            self._raise_step_limit()
        if isinstance(stmt, n.LazyNode):
            obs_lazy.thunk_forcing(stmt)
            self.exec_stmt(stmt.force(), frame)
        elif isinstance(stmt, n.Block):
            self.exec_block(stmt.body, frame)
        elif isinstance(stmt, n.ExprStmt):
            self.eval(stmt.expr, frame)
        elif isinstance(stmt, n.LocalVarDecl):
            scope = stmt.scope
            declared = resolve_type_name(stmt.type_name, scope) \
                if scope is not None else None
            for ident, dims, init in stmt.bindings():
                var_type = array_of(declared, dims) if declared and dims else declared
                if init is None:
                    frame[ident.name] = default_value(var_type) if var_type else None
                else:
                    frame[ident.name] = self._eval_initializer(init, var_type, frame)
        elif isinstance(stmt, n.IfStmt):
            if self.eval(stmt.cond, frame):
                self.exec_stmt(stmt.then_stmt, frame)
            elif stmt.else_stmt is not None:
                self.exec_stmt(stmt.else_stmt, frame)
        elif isinstance(stmt, n.WhileStmt):
            while self.eval(stmt.cond, frame):
                try:
                    self.exec_stmt(stmt.body, frame)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, n.DoStmt):
            while True:
                try:
                    self.exec_stmt(stmt.body, frame)
                except _Break:
                    break
                except _Continue:
                    pass
                if not self.eval(stmt.cond, frame):
                    break
        elif isinstance(stmt, n.ForStmt):
            self._exec_for(stmt, frame)
        elif isinstance(stmt, n.ReturnStmt):
            raise _Return(self.eval(stmt.expr, frame) if stmt.expr else None)
        elif isinstance(stmt, n.ThrowStmt):
            value = self.eval(stmt.expr, frame)
            raise JavaThrow(value)
        elif isinstance(stmt, n.TryStmt):
            self._exec_try(stmt, frame)
        elif isinstance(stmt, n.BreakStmt):
            raise _Break()
        elif isinstance(stmt, n.ContinueStmt):
            raise _Continue()
        elif isinstance(stmt, n.UseStmt):
            self.exec_block(stmt.body, frame)
        elif isinstance(stmt, n.EmptyStmt):
            pass
        else:
            raise MayaError(f"cannot execute {type(stmt).__name__}")

    def _exec_try(self, stmt: n.TryStmt, frame) -> None:
        try:
            try:
                self.exec_block(stmt.body, frame)
            except JavaThrow as thrown:
                for clause in stmt.catches:
                    caught_type = getattr(clause, "caught_type", None)
                    if caught_type is None:
                        from repro.typecheck import resolve_type_name

                        caught_type = resolve_type_name(
                            clause.formal.type_name, clause.formal.scope
                        )
                    if thrown.value.class_type.is_subtype_of(caught_type):
                        frame[clause.formal.name.name] = thrown.value
                        self.exec_block(clause.body, frame)
                        return
                raise
        finally:
            if stmt.finally_body is not None:
                self.exec_block(stmt.finally_body, frame)

    def _exec_for(self, stmt: n.ForStmt, frame) -> None:
        if isinstance(stmt.init, n.LocalVarDecl):
            self.exec_stmt(stmt.init, frame)
        elif isinstance(stmt.init, list):
            for expr in stmt.init:
                self.eval(expr, frame)
        while stmt.cond is None or self.eval(stmt.cond, frame):
            try:
                self.exec_stmt(stmt.body, frame)
            except _Break:
                return
            except _Continue:
                pass
            for update in stmt.update:
                self.eval(update, frame)

    def _eval_initializer(self, init, var_type, frame):
        if isinstance(init, n.ArrayInitializer):
            if not isinstance(var_type, ArrayType):
                raise MayaError("array initializer for non-array variable")
            return self._build_array(init, var_type, frame)
        return self.eval(init, frame)

    def _build_array(self, init: n.ArrayInitializer, array_type: ArrayType, frame):
        _C_ALLOCATIONS.value += 1
        element = array_type.element
        values = []
        for item in init.elements:
            if isinstance(item, n.ArrayInitializer):
                values.append(self._build_array(item, element, frame))
            else:
                values.append(self.eval(item, frame))
        return JavaArray(element, values)

    # -- expressions ---------------------------------------------------------------

    def eval(self, expr, frame):
        kind = type(expr)
        handler = _HANDLERS.get(kind)
        if handler is None:
            for klass in kind.__mro__:
                handler = _HANDLERS.get(klass)
                if handler is not None:
                    break
        if handler is None:
            raise MayaError(f"cannot evaluate {kind.__name__}")
        return handler(self, expr, frame)

    # individual handlers ------------------------------------------------

    def _eval_literal(self, expr: n.Literal, frame):
        return expr.value

    def _eval_name(self, expr: n.NameExpr, frame):
        from repro.typecheck import resolve_name

        kind, payload, fields = resolve_name(expr, expr.scope)
        if kind == "local":
            name = payload.name
            if name not in frame:
                raise MayaError(f"unbound local {name}")
            value = frame[name]
        elif kind == "this_field":
            this = frame.get("this")
            value = self._read_field(this, fields[0])
            fields = fields[1:]
        elif kind == "static":
            value = self._read_static(payload, fields[0])
            fields = fields[1:]
        else:
            raise MayaError(f"{expr} is a class, not a value")
        for field in fields:
            if field is None:  # the array-length sentinel
                value = len(value)
            else:
                value = self._read_field(value, field)
        return value

    def _eval_reference(self, expr: n.Reference, frame):
        binding = expr.binding
        name = getattr(binding, "name", binding)
        if isinstance(name, n.Ident):
            name = name.name
        if name in frame:
            return frame[name]
        raise MayaError(f"unbound reference {name}")

    def _eval_this(self, expr, frame):
        return frame.get("this")

    def _eval_paren(self, expr: n.ParenExpr, frame):
        return self.eval(expr.inner, frame)

    def _eval_field_access(self, expr: n.FieldAccess, frame):
        if isinstance(expr.receiver, n.SuperExpr):
            receiver = frame.get("this")
        else:
            receiver = self.eval(expr.receiver, frame)
        if isinstance(receiver, JavaArray) and expr.name == "length":
            return len(receiver)
        field = getattr(expr, "field", None)
        if field is None:
            klass = self._class_of_value(receiver)
            field = klass.find_field(expr.name)
        return self._read_field(receiver, field)

    def _read_field(self, receiver, field):
        _C_FIELD_READS.value += 1
        if field.is_static:
            return self._read_static(field.declaring_class, field)
        if receiver is None:
            raise self.throw("java.lang.NullPointerException", field.name)
        if field.name not in receiver.fields:
            receiver.fields[field.name] = default_value(field.type)
        return receiver.fields[field.name]

    def _read_static(self, klass: ClassType, field):
        if klass.name == "java.lang.System":
            return self.out if field.name == "out" else self.err
        if klass.name == "java.lang.Integer":
            return {"MAX_VALUE": 2**31 - 1, "MIN_VALUE": -(2**31)}[field.name]
        key = (field.declaring_class.name, field.name)
        if key not in self.statics:
            self.statics[key] = default_value(field.type)
        return self.statics[key]

    def _eval_array_access(self, expr: n.ArrayAccess, frame):
        array = self.eval(expr.array, frame)
        index = self.eval(expr.index, frame)
        return self._array_read(array, index)

    def _array_read(self, array, index):
        _C_ARRAY_READS.value += 1
        if array is None:
            raise self.throw("java.lang.NullPointerException", None)
        if index < 0 or index >= len(array.values):
            raise self.throw("java.lang.IndexOutOfBoundsException", str(index))
        return array.values[index]

    def _eval_invocation(self, expr: n.MethodInvocation, frame):
        from repro.typecheck import static_type_of

        if not hasattr(expr, "target"):
            static_type_of(expr)  # computes and caches the target
        kind, payload, method = expr.target
        args = [self.eval(a, frame) for a in expr.args]
        if kind == "instance":
            receiver = self.eval(payload, frame)
            if receiver is None:
                raise self.throw("java.lang.NullPointerException", method.name)
            return self.invoke(method, receiver, args)
        if kind == "static":
            _C_METHOD_CALLS.value += 1
            return self.invoke_exact(method, None, args)
        if kind == "this":
            return self.invoke(method, frame.get("this"), args)
        if kind == "super":
            _C_METHOD_CALLS.value += 1
            return self.invoke_exact(method, frame.get("this"), args)
        if kind == "ctor_call":
            obj = frame.get("this")
            self._run_ctor(obj, payload, method, args)
            return None
        raise MayaError(f"bad invocation target {kind}")

    def _eval_new_object(self, expr: n.NewObject, frame):
        from repro.typecheck import static_type_of

        if not hasattr(expr, "target"):
            static_type_of(expr)
        _, klass, ctor = expr.target
        args = [self.eval(a, frame) for a in expr.args]
        return self.construct(klass, ctor, args)

    def _eval_new_array(self, expr: n.NewArray, frame):
        element = resolve_type_name(expr.element_type, expr.scope)
        if expr.initializer is not None:
            total_dims = max(len(expr.dim_exprs) + expr.extra_dims, 1)
            return self._build_array(expr.initializer,
                                     array_of(element, total_dims), frame)
        dims = [self.eval(d, frame) for d in expr.dim_exprs]
        return self._allocate(element, dims, expr.extra_dims)

    def _allocate(self, element: Type, dims: List[int], extra: int):
        _C_ALLOCATIONS.value += 1
        inner = array_of(element, extra + len(dims) - 1) if (extra or len(dims) > 1) \
            else element
        if len(dims) == 1:
            return JavaArray.new(inner, dims[0])
        return JavaArray(
            inner,
            [self._allocate(element, dims[1:], extra) for _ in range(dims[0])],
        )

    def _eval_unary(self, expr: n.UnaryExpr, frame):
        if expr.op in ("++", "--"):
            return self._incr(expr.operand, frame, expr.op, prefix=True)
        value = self.eval(expr.operand, frame)
        if expr.op == "!":
            return not value
        if expr.op == "-":
            return -_num(value)
        if expr.op == "+":
            return _num(value)
        if expr.op == "~":
            return ~_num(value)
        raise MayaError(f"bad unary {expr.op}")

    def _eval_postfix(self, expr: n.PostfixExpr, frame):
        return self._incr(expr.operand, frame, expr.op, prefix=False)

    def _incr(self, lvalue, frame, op, prefix):
        old = _num(self.eval(lvalue, frame))
        new = old + 1 if op == "++" else old - 1
        self._assign(lvalue, new, frame)
        return new if prefix else old

    def _eval_binary(self, expr: n.BinaryExpr, frame):
        op = expr.op
        if op == "&&":
            return bool(self.eval(expr.left, frame)) and \
                bool(self.eval(expr.right, frame))
        if op == "||":
            return bool(self.eval(expr.left, frame)) or \
                bool(self.eval(expr.right, frame))
        left = self.eval(expr.left, frame)
        right = self.eval(expr.right, frame)
        if op == "+":
            # Compile-time overloading: + is concatenation exactly when
            # the expression's static type is String (chars stay numeric).
            static = getattr(expr, "_static_type", None)
            if static is not None and getattr(static, "name", "") == \
                    "java.lang.String":
                return java_str(left) + java_str(right)
            if static is not None:
                return _binary_op(self, "+num", left, right)
        return _binary_op(self, op, left, right)

    def _eval_instanceof(self, expr: n.InstanceofExpr, frame):
        value = self.eval(expr.expr, frame)
        if value is None:
            return False
        target = resolve_type_name(expr.type_name, expr.scope)
        return self._runtime_type(value).is_subtype_of(target)

    def _eval_cast(self, expr: n.CastExpr, frame):
        value = self.eval(expr.expr, frame)
        target = resolve_type_name(expr.type_name, expr.scope)
        if isinstance(target, PrimitiveType):
            return _primitive_cast(value, target)
        if value is None:
            return None
        if not self._runtime_type(value).is_subtype_of(target):
            raise self.throw(
                "java.lang.ClassCastException",
                f"{self._runtime_type(value)} to {target}",
            )
        return value

    def _eval_assignment(self, expr: n.Assignment, frame):
        if expr.op == "=":
            value = self.eval(expr.value, frame)
        else:
            op = expr.op[:-1]
            current = self.eval(expr.lhs, frame)
            value = _binary_op(self, op, current, self.eval(expr.value, frame))
        self._assign(expr.lhs, value, frame)
        return value

    def _assign(self, lhs, value, frame) -> None:
        from repro.typecheck import resolve_name

        if isinstance(lhs, n.ParenExpr):
            self._assign(lhs.inner, value, frame)
            return
        if isinstance(lhs, n.NameExpr):
            kind, payload, fields = resolve_name(lhs, lhs.scope)
            if kind == "local" and not fields:
                frame[payload.name] = value
                return
            if kind == "local":
                target = frame[payload.name]
                for field in fields[:-1]:
                    target = self._read_field(target, field)
                self._write_field(target, fields[-1], value)
                return
            if kind == "this_field":
                target = frame.get("this")
                for field in fields[:-1]:
                    target = self._read_field(target, field)
                self._write_field(target, fields[-1], value)
                return
            if kind == "static":
                if len(fields) == 1:
                    _C_FIELD_WRITES.value += 1
                    key = (fields[0].declaring_class.name, fields[0].name)
                    self.statics[key] = value
                    return
                target = self._read_static(payload, fields[0])
                for field in fields[1:-1]:
                    target = self._read_field(target, field)
                self._write_field(target, fields[-1], value)
                return
            raise MayaError(f"cannot assign to {lhs}")
        if isinstance(lhs, n.FieldAccess):
            receiver = self.eval(lhs.receiver, frame)
            field = getattr(lhs, "field", None)
            if field is None:
                field = self._class_of_value(receiver).find_field(lhs.name)
            self._write_field(receiver, field, value)
            return
        if isinstance(lhs, n.ArrayAccess):
            array = self.eval(lhs.array, frame)
            index = self.eval(lhs.index, frame)
            _C_ARRAY_WRITES.value += 1
            if array is None:
                raise self.throw("java.lang.NullPointerException", None)
            if index < 0 or index >= len(array.values):
                raise self.throw("java.lang.IndexOutOfBoundsException", str(index))
            array.values[index] = value
            return
        if isinstance(lhs, n.Reference):
            name = getattr(lhs.binding, "name", lhs.binding)
            if isinstance(name, n.Ident):
                name = name.name
            frame[name] = value
            return
        raise MayaError(f"bad assignment target {type(lhs).__name__}")

    def _write_field(self, receiver, field, value) -> None:
        _C_FIELD_WRITES.value += 1
        if field.is_static:
            self.statics[(field.declaring_class.name, field.name)] = value
            return
        if receiver is None:
            raise self.throw("java.lang.NullPointerException", field.name)
        receiver.fields[field.name] = value

    def _eval_conditional(self, expr: n.ConditionalExpr, frame):
        if self.eval(expr.cond, frame):
            return self.eval(expr.then_expr, frame)
        return self.eval(expr.else_expr, frame)


def _starts_with_ctor_call(body) -> bool:
    stmts = body.stmts if isinstance(body, n.BlockStmts) else body
    if not stmts:
        return False
    first = stmts[0]
    return (
        isinstance(first, n.ExprStmt)
        and isinstance(first.expr, n.MethodInvocation)
        and first.expr.method.simple_name in ("<this>", "<super>")
    )


def _num(value):
    if isinstance(value, str) and len(value) == 1:
        return ord(value)
    return value


def _binary_op(interp, op, left, right):
    if op == "+" and (isinstance(left, str) and len(left) != 1
                      or isinstance(right, str) and len(right) != 1
                      or isinstance(left, (JavaObject, JavaArray))
                      or isinstance(right, (JavaObject, JavaArray))
                      or left is None or right is None):
        return java_str(left) + java_str(right)
    if op in ("==", "!="):
        equal = _java_equal(left, right)
        return equal if op == "==" else not equal
    a, b = _num(left), _num(right)
    if op == "+":
        # Without static info, single-char strings are ambiguous between
        # char and String; prefer concatenation when either is a string.
        if isinstance(left, str) or isinstance(right, str):
            return java_str(left) + java_str(right)
        return a + b
    if op == "+num":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0 and isinstance(a, int) and isinstance(b, int):
            raise interp.throw("java.lang.ArithmeticException", "/ by zero")
        if isinstance(a, int) and isinstance(b, int):
            quotient = abs(a) // abs(b)
            return quotient if (a >= 0) == (b >= 0) else -quotient
        return a / b
    if op == "%":
        if b == 0 and isinstance(a, int) and isinstance(b, int):
            raise interp.throw("java.lang.ArithmeticException", "% by zero")
        if isinstance(a, int) and isinstance(b, int):
            return a - _binary_op(interp, "/", a, b) * b
        import math

        return math.fmod(a, b)
    if op == "<":
        return a < b
    if op == ">":
        return a > b
    if op == "<=":
        return a <= b
    if op == ">=":
        return a >= b
    if op == "&":
        return a & b if not isinstance(a, bool) else (a and b)
    if op == "|":
        return a | b if not isinstance(a, bool) else (a or b)
    if op == "^":
        return a ^ b if not isinstance(a, bool) else (a != b)
    if op == "<<":
        return _int32(a << b)
    if op == ">>":
        return a >> b
    if op == ">>>":
        return (a & 0xFFFFFFFF) >> b
    raise MayaError(f"bad operator {op}")


def _java_equal(left, right) -> bool:
    if isinstance(left, (JavaObject, JavaArray)) or \
            isinstance(right, (JavaObject, JavaArray)):
        return left is right
    if left is None or right is None:
        return left is right
    return _num(left) == _num(right)


def _int32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


def _primitive_cast(value, target: PrimitiveType):
    name = target.name
    if name == "boolean":
        return bool(value)
    if name == "char":
        return chr(_num(value) & 0xFFFF)
    if name in ("float", "double"):
        return float(_num(value))
    number = _num(value)
    truncated = int(number)
    if name == "int":
        return _int32(truncated)
    if name == "long":
        return truncated
    if name == "short":
        short = truncated & 0xFFFF
        return short - 0x10000 if short >= 0x8000 else short
    if name == "byte":
        byte = truncated & 0xFF
        return byte - 0x100 if byte >= 0x80 else byte
    return truncated


_HANDLERS = {
    n.Literal: Interpreter._eval_literal,
    n.NameExpr: Interpreter._eval_name,
    n.Reference: Interpreter._eval_reference,
    n.ThisExpr: Interpreter._eval_this,
    n.ParenExpr: Interpreter._eval_paren,
    n.FieldAccess: Interpreter._eval_field_access,
    n.ArrayAccess: Interpreter._eval_array_access,
    n.MethodInvocation: Interpreter._eval_invocation,
    n.NewObject: Interpreter._eval_new_object,
    n.NewArray: Interpreter._eval_new_array,
    n.UnaryExpr: Interpreter._eval_unary,
    n.PostfixExpr: Interpreter._eval_postfix,
    n.BinaryExpr: Interpreter._eval_binary,
    n.InstanceofExpr: Interpreter._eval_instanceof,
    n.CastExpr: Interpreter._eval_cast,
    n.Assignment: Interpreter._eval_assignment,
    n.ConditionalExpr: Interpreter._eval_conditional,
}
