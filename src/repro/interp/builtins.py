"""Implementations of the built-in runtime classes."""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.interp.values import JavaArray, JavaObject, java_str


class StreamPeer:
    """Backing state for a PrintStream: captured lines + optional echo."""

    def __init__(self, echo: bool = False):
        self.lines: List[str] = []
        self.current = ""
        self.echo = echo

    def write(self, text: str) -> None:
        while "\n" in text:
            head, text = text.split("\n", 1)
            self.current += head
            self.newline()
        self.current += text

    def newline(self) -> None:
        self.lines.append(self.current)
        if self.echo:
            print(self.current)
        self.current = ""


class EnumerationPeer:
    """A snapshot enumeration over a Python list."""

    def __init__(self, values: List[object]):
        self.values = values
        self.index = 0


class BuiltinTable:
    """(class name, method name) -> implementation."""

    def __init__(self):
        self.methods: Dict[Tuple[str, str], Callable] = {}
        self.constructors: Dict[str, Callable] = {}

    def method(self, class_name: str, method_name: str):
        def register(fn):
            self.methods[(class_name, method_name)] = fn
            return fn

        return register

    def constructor(self, class_name: str):
        def register(fn):
            self.constructors[class_name] = fn
            return fn

        return register

    def find_method(self, class_name: str, method_name: str):
        return self.methods.get((class_name, method_name))

    def find_constructor(self, class_name: str):
        return self.constructors.get(class_name)


def build_table() -> BuiltinTable:
    table = BuiltinTable()

    # -- Object ----------------------------------------------------------

    @table.method("java.lang.Object", "equals")
    def object_equals(interp, obj, args):
        other = args[0]
        if isinstance(obj, JavaObject) and obj.peer is not None:
            peer_other = other.peer if isinstance(other, JavaObject) else other
            return obj.peer == peer_other
        return obj is other

    @table.method("java.lang.Object", "hashCode")
    def object_hash(interp, obj, args):
        peer = obj.peer if isinstance(obj, JavaObject) else obj
        try:
            return hash(peer) & 0x7FFFFFFF
        except TypeError:
            return id(obj) & 0x7FFFFFFF

    @table.method("java.lang.Object", "toString")
    def object_to_string(interp, obj, args):
        return java_str(obj)

    @table.constructor("java.lang.Object")
    def object_ctor(interp, obj, args):
        return None

    # -- String ------------------------------------------------------------

    def string_of(value):
        return value if isinstance(value, str) else value.peer

    @table.method("java.lang.String", "length")
    def string_length(interp, obj, args):
        return len(string_of(obj))

    @table.method("java.lang.String", "charAt")
    def string_char_at(interp, obj, args):
        text = string_of(obj)
        index = args[0]
        if index < 0 or index >= len(text):
            raise interp.throw("java.lang.IndexOutOfBoundsException",
                               f"index {index}")
        return text[index]

    @table.method("java.lang.String", "substring")
    def string_substring(interp, obj, args):
        text = string_of(obj)
        if len(args) == 1:
            return text[args[0]:]
        return text[args[0]:args[1]]

    @table.method("java.lang.String", "indexOf")
    def string_index_of(interp, obj, args):
        return string_of(obj).find(string_of(args[0]))

    @table.method("java.lang.String", "concat")
    def string_concat(interp, obj, args):
        return string_of(obj) + string_of(args[0])

    @table.method("java.lang.String", "toUpperCase")
    def string_upper(interp, obj, args):
        return string_of(obj).upper()

    @table.method("java.lang.String", "toLowerCase")
    def string_lower(interp, obj, args):
        return string_of(obj).lower()

    @table.method("java.lang.String", "equals")
    def string_equals(interp, obj, args):
        other = args[0]
        return isinstance(other, str) and string_of(obj) == other

    @table.method("java.lang.String", "valueOf")
    def string_value_of(interp, obj, args):
        return java_str(args[0])

    # -- StringBuffer -----------------------------------------------------------

    @table.constructor("java.lang.StringBuffer")
    def sb_ctor(interp, obj, args):
        obj.peer = [string_of(args[0])] if args else []

    @table.method("java.lang.StringBuffer", "append")
    def sb_append(interp, obj, args):
        obj.peer.append(java_str(args[0]))
        return obj

    @table.method("java.lang.StringBuffer", "toString")
    def sb_to_string(interp, obj, args):
        return "".join(obj.peer)

    @table.method("java.lang.StringBuffer", "length")
    def sb_length(interp, obj, args):
        return sum(len(part) for part in obj.peer)

    # -- boxed numbers ------------------------------------------------------------

    for box, prim_method in (
        ("java.lang.Integer", "intValue"),
        ("java.lang.Long", "longValue"),
        ("java.lang.Double", "doubleValue"),
        ("java.lang.Boolean", "booleanValue"),
        ("java.lang.Character", "charValue"),
    ):
        @table.constructor(box)
        def box_ctor(interp, obj, args):
            obj.peer = args[0]

        @table.method(box, prim_method)
        def box_value(interp, obj, args):
            return obj.peer

        @table.method(box, "toString")
        def box_to_string(interp, obj, args):
            return java_str(obj.peer)

    @table.method("java.lang.Integer", "parseInt")
    def integer_parse(interp, obj, args):
        try:
            return int(string_of(args[0]))
        except ValueError:
            raise interp.throw("java.lang.IllegalArgumentException",
                               f"bad int {args[0]!r}")

    @table.method("java.lang.Integer", "valueOf")
    def integer_value_of(interp, obj, args):
        return interp.new_builtin("java.lang.Integer", args[0])

    @table.method("java.lang.Double", "parseDouble")
    def double_parse(interp, obj, args):
        return float(string_of(args[0]))

    # -- Math -------------------------------------------------------------------

    @table.method("java.lang.Math", "abs")
    def math_abs(interp, obj, args):
        return abs(args[0])

    @table.method("java.lang.Math", "max")
    def math_max(interp, obj, args):
        return max(args)

    @table.method("java.lang.Math", "min")
    def math_min(interp, obj, args):
        return min(args)

    @table.method("java.lang.Math", "sqrt")
    def math_sqrt(interp, obj, args):
        return float(args[0]) ** 0.5

    # -- System / PrintStream ------------------------------------------------------

    @table.method("java.lang.System", "currentTimeMillis")
    def system_time(interp, obj, args):
        import time

        return int(time.time() * 1000)

    @table.method("java.io.PrintStream", "println")
    def println(interp, obj, args):
        if args:
            obj.peer.write(java_str(args[0]))
        obj.peer.newline()

    @table.method("java.io.PrintStream", "print")
    def print_(interp, obj, args):
        obj.peer.write(java_str(args[0]))

    # -- Throwables ------------------------------------------------------------------

    for klass in ("java.lang.Throwable", "java.lang.Exception",
                  "java.lang.RuntimeException",
                  "java.lang.NullPointerException",
                  "java.lang.ClassCastException",
                  "java.lang.ArithmeticException",
                  "java.lang.IndexOutOfBoundsException",
                  "java.lang.IllegalArgumentException",
                  "java.lang.Error",
                  "java.lang.AssertionError",
                  "java.util.NoSuchElementException"):
        @table.constructor(klass)
        def throwable_ctor(interp, obj, args):
            obj.fields["message"] = args[0] if args else None

    @table.method("java.lang.Throwable", "getMessage")
    def get_message(interp, obj, args):
        return obj.fields.get("message")

    # -- java.util.Vector ----------------------------------------------------------------

    @table.constructor("java.util.Vector")
    def vector_ctor(interp, obj, args):
        obj.peer = []

    @table.method("java.util.Vector", "size")
    def vector_size(interp, obj, args):
        return len(obj.peer)

    @table.method("java.util.Vector", "isEmpty")
    def vector_is_empty(interp, obj, args):
        return not obj.peer

    @table.method("java.util.Vector", "elementAt")
    def vector_element_at(interp, obj, args):
        index = args[0]
        if index < 0 or index >= len(obj.peer):
            raise interp.throw("java.lang.IndexOutOfBoundsException",
                               f"index {index}")
        return obj.peer[index]

    table.methods[("java.util.Vector", "get")] = vector_element_at

    @table.method("java.util.Vector", "addElement")
    def vector_add_element(interp, obj, args):
        obj.peer.append(args[0])

    @table.method("java.util.Vector", "add")
    def vector_add(interp, obj, args):
        obj.peer.append(args[0])
        return True

    @table.method("java.util.Vector", "contains")
    def vector_contains(interp, obj, args):
        return args[0] in obj.peer

    @table.method("java.util.Vector", "elements")
    def vector_elements(interp, obj, args):
        enum = interp.new_builtin("java.util.Enumeration")
        enum.peer = EnumerationPeer(list(obj.peer))
        return enum

    # -- maya.util.Vector -------------------------------------------------------------

    @table.constructor("maya.util.Vector")
    def maya_vector_ctor(interp, obj, args):
        obj.peer = []

    @table.method("maya.util.Vector", "getElementData")
    def maya_vector_data(interp, obj, args):
        object_type = interp.registry.require("java.lang.Object")
        return JavaArray(object_type, obj.peer)

    # -- Enumeration --------------------------------------------------------------------

    @table.method("java.util.Enumeration", "hasMoreElements")
    def enum_has_more(interp, obj, args):
        return obj.peer.index < len(obj.peer.values)

    @table.method("java.util.Enumeration", "nextElement")
    def enum_next(interp, obj, args):
        peer = obj.peer
        if peer.index >= len(peer.values):
            raise interp.throw("java.util.NoSuchElementException", None)
        value = peer.values[peer.index]
        peer.index += 1
        return value

    # -- Hashtable ------------------------------------------------------------------------

    @table.constructor("java.util.Hashtable")
    def hashtable_ctor(interp, obj, args):
        obj.peer = {}

    @table.method("java.util.Hashtable", "put")
    def hashtable_put(interp, obj, args):
        key = _hash_key(args[0])
        previous = obj.peer.get(key, (None, None))
        obj.peer[key] = (args[0], args[1])
        return previous[1]

    @table.method("java.util.Hashtable", "get")
    def hashtable_get(interp, obj, args):
        entry = obj.peer.get(_hash_key(args[0]))
        return entry[1] if entry else None

    @table.method("java.util.Hashtable", "remove")
    def hashtable_remove(interp, obj, args):
        entry = obj.peer.pop(_hash_key(args[0]), None)
        return entry[1] if entry else None

    @table.method("java.util.Hashtable", "containsKey")
    def hashtable_contains(interp, obj, args):
        return _hash_key(args[0]) in obj.peer

    @table.method("java.util.Hashtable", "size")
    def hashtable_size(interp, obj, args):
        return len(obj.peer)

    @table.method("java.util.Hashtable", "keys")
    def hashtable_keys(interp, obj, args):
        enum = interp.new_builtin("java.util.Enumeration")
        enum.peer = EnumerationPeer([entry[0] for entry in obj.peer.values()])
        return enum

    return table


def _hash_key(value):
    if isinstance(value, JavaObject):
        if value.peer is not None and isinstance(value.peer, (str, int, float, bool)):
            return value.peer
        return id(value)
    return value
