"""The closure-compiled execution backend.

A one-pass compiler from the *typed* AST to Python closures, selected
with ``Interpreter(backend="closure")`` (or ``MAYA_BACKEND=closure``).
The tree-walker re-dispatches on node type, resolves every local
through a dict frame, and walks the class hierarchy on every virtual
call; this backend pays those costs once per method body instead:

* **Slot frames** — a per-method slot allocator assigns integer indices
  to ``this`` (slot 0), the formals (slots 1..n, declaration order) and
  every local (one slot per *name*, mirroring the walker's single flat
  dict per invocation), so frames are plain Python lists.  Slot
  ``1 + nformals`` carries the return value.
* **Inline caches** — virtual call sites and runtime field lookups
  cache their resolution per receiver ``ClassType`` (monomorphic dict,
  megamorphic past ``MEGAMORPHIC`` classes), with hit/miss/megamorphic
  counts in the ``maya_interp_ic_events_total{site,event}`` registry
  family.  Caches are rebuilt when a compiled plan is invalidated by
  the member epoch (``repro.types.types.MEMBER_EPOCH``), which bumps on
  every intercession (``declare_method``/``declare_field``/
  ``remove_method``); class members never change *during* execution.
* **Static-type-directed fast paths** — ``int``/``boolean`` binary ops
  compile to direct Python arithmetic, int literals fold to constants,
  and ``+`` pre-selects string concatenation / numeric addition from
  the checker's cached static type.
* **Per-method plan cache** — compiled bodies live on the ``Method``
  object (``_closure_plan``), keyed by the member epoch, so MultiJava's
  generated ``m$impl`` dispatchers compile once and replay.  A bounded
  :class:`PlanRegistry` (``MAYA_PLAN_CACHE_SIZE``, default 4096 methods)
  evicts the least-recently-compiled plans so daemon sessions cannot
  accumulate plans forever; evictions land in the
  ``maya_cache_events_total{cache="interp.closure.plans"}`` family.

Observable behaviour is kept bit-for-bit equal to the walker: the same
operation counters are bumped at the same points, the same Java
exceptions carry the same messages, and anything this compiler cannot
prove it can reproduce raises :class:`ClosureCompileError`, caching a
``WALK`` sentinel so the method transparently runs on the tree-walker.
Statement closures return control-flow *signals* (``_RETURN`` /
``_BREAK`` / ``_CONTINUE``) instead of raising exceptions; closures
never capture the interpreter, so plans are shared across Interpreter
instances.
"""

from __future__ import annotations

import os
import threading
import weakref
from collections import OrderedDict
from typing import Dict

from repro import perf
from repro.ast import nodes as n
from repro.core import MayaError
from repro.interp.interp import (
    _Break,
    _C_ALLOCATIONS,
    _C_ARRAY_READS,
    _C_ARRAY_WRITES,
    _C_FIELD_READS,
    _C_FIELD_WRITES,
    _C_METHOD_CALLS,
    _C_STATEMENTS,
    _Continue,
    _binary_op,
    _java_equal,
    _num,
    _primitive_cast,
)
from repro.interp.values import (
    JavaArray,
    JavaObject,
    JavaThrow,
    default_value,
    java_str,
)
from repro.obs import lazy as obs_lazy
from repro.obs.metrics import REGISTRY
from repro.typecheck import resolve_name, resolve_type_name, static_type_of
from repro.types import (
    ArrayType,
    BOOLEAN,
    BYTE,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    PrimitiveType,
    SHORT,
    array_of,
)
from repro.types import types as _types

#: Inline-cache events by site kind (call / field / type) — surfaced in
#: ``--profile`` and exported by ``--metrics-out``.
_IC_EVENTS = REGISTRY.counter(
    "maya_interp_ic_events_total",
    "Closure-backend inline-cache events, by site kind.",
    ("site", "event"))
_IC_CALL_HIT = _IC_EVENTS.labels("call", "hit")
_IC_CALL_MISS = _IC_EVENTS.labels("call", "miss")
_IC_CALL_MEGA = _IC_EVENTS.labels("call", "megamorphic")
_IC_FIELD_HIT = _IC_EVENTS.labels("field", "hit")
_IC_FIELD_MISS = _IC_EVENTS.labels("field", "miss")
_IC_FIELD_MEGA = _IC_EVENTS.labels("field", "megamorphic")
_IC_TYPE_HIT = _IC_EVENTS.labels("type", "hit")
_IC_TYPE_MISS = _IC_EVENTS.labels("type", "miss")

#: Method-body compilations by outcome (compiled vs walk fallback).
_COMPILES = REGISTRY.counter(
    "maya_interp_closure_compiles_total",
    "Closure-backend method compilations, by outcome.",
    ("outcome",))
_COMPILE_OK = _COMPILES.labels("compiled")
_COMPILE_FALLBACK = _COMPILES.labels("fallback")

#: Call-site cache size past which a site is megamorphic: new receiver
#: classes stop being cached (existing entries keep hitting).
MEGAMORPHIC = 8

#: Slot value for a local that was never assigned (the walker's
#: "name not in frame").
_UNBOUND = object()

#: Missing-key sentinel distinct from any storable value.
_MISSING = object()

#: Control-flow signals returned by statement closures.
_RETURN = object()
_BREAK = object()
_CONTINUE = object()

#: Plan sentinel: this method always executes on the tree-walker.
WALK = object()

_NUMERIC_TYPES = (INT, LONG, SHORT, BYTE, DOUBLE, FLOAT)

#: Bound on how many Methods may hold a cached plan attribute per
#: backend (long-lived daemon sessions otherwise accumulate plans for
#: every method of every program they ever compiled).
PLAN_CACHE_SIZE = int(os.environ.get("MAYA_PLAN_CACHE_SIZE") or 4096)


class PlanRegistry:
    """A bounded LRU registry of Methods carrying a cached plan.

    The plan itself stays directly on the Method (one ``getattr`` on
    the hit path — the registry is never consulted there); ``note()``
    is called only on compile misses, so eviction order is
    least-recently-*compiled*, and evicting a method just deletes its
    plan attribute — the next call recompiles.  Evictions are counted
    in the ``maya_cache_events_total`` registry family.
    """

    def __init__(self, attr: str, maxsize: int, stats) -> None:
        self.attr = attr
        self.maxsize = max(1, maxsize)
        self.stats = stats
        self._lock = threading.Lock()
        self._entries: "OrderedDict[int, weakref.ref]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def note(self, method) -> None:
        """Record that ``method`` just (re)compiled a plan, evicting the
        oldest plans past the bound."""
        victims = []
        with self._lock:
            key = id(method)
            existing = self._entries.pop(key, None)
            if existing is None or existing() is not method:
                existing = weakref.ref(method)
            self._entries[key] = existing
            while len(self._entries) > self.maxsize:
                _key, ref = self._entries.popitem(last=False)
                victims.append(ref)
        for ref in victims:
            victim = ref()
            if victim is None:
                continue  # the Method died; nothing left to evict
            try:
                delattr(victim, self.attr)
            except AttributeError:
                continue  # already invalidated some other way
            self.stats.evict()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: Bounded registry for ``Method._closure_plan`` attributes.
_PLAN_REGISTRY = PlanRegistry("_closure_plan", PLAN_CACHE_SIZE,
                              perf.cache_stats("interp.closure.plans"))


class ClosureCompileError(Exception):
    """A node shape the closure compiler does not reproduce exactly;
    the method falls back to the tree-walking backend."""


class Plan:
    """A compiled method body: frame layout plus the body runner."""

    __slots__ = ("body", "nslots", "formal_slots", "ret_slot")

    def __init__(self, body, nslots: int, formal_slots, ret_slot: int):
        self.body = body
        self.nslots = nslots
        self.formal_slots = formal_slots
        self.ret_slot = ret_slot


def plan_for(method):
    """The cached compiled plan for a method (or the WALK sentinel).

    Plans are invalidated by the member epoch, so intercession
    (adding/removing members) forces recompilation — inline caches
    inside the plan are rebuilt along with it.
    """
    cached = getattr(method, "_closure_plan", None)
    epoch = _types.MEMBER_EPOCH
    if cached is not None and cached[0] == epoch:
        return cached[1]
    try:
        plan = _MethodCompiler(method).compile()
        _COMPILE_OK.value += 1
    except ClosureCompileError:
        plan = WALK
        _COMPILE_FALLBACK.value += 1
    method._closure_plan = (epoch, plan)
    _PLAN_REGISTRY.note(method)
    return plan


def run_plan(interp, plan: Plan, receiver, args):
    """Execute a compiled plan (called under invoke_exact's depth
    guard, like the walker's dict-frame body execution)."""
    frame = [_UNBOUND] * plan.nslots
    frame[0] = receiver
    for slot, value in zip(plan.formal_slots, args):
        frame[slot] = value
    signal = plan.body(interp, frame)
    if signal is _RETURN:
        return frame[plan.ret_slot]
    if signal is _BREAK:
        raise _Break()  # walker parity: break escapes the frame
    if signal is _CONTINUE:
        raise _Continue()
    return None


# ---------------------------------------------------------------------------
# The one-pass compiler
# ---------------------------------------------------------------------------


def _is_int_type(t) -> bool:
    return t is INT or t is LONG or t is SHORT or t is BYTE


def _is_numeric_type(t) -> bool:
    return t in _NUMERIC_TYPES


def _is_string_type(t) -> bool:
    return getattr(t, "name", "") == "java.lang.String"


class _MethodCompiler:
    """Compiles one typed method body into a closure tree."""

    def __init__(self, method):
        decl = method.decl
        if decl is None or decl.body is None:
            raise ClosureCompileError("no body")
        body = decl.body
        if isinstance(body, n.LazyNode):
            if not body.is_forced():
                raise ClosureCompileError("unforced lazy body")
            body = body.force()
        if not isinstance(body, n.BlockStmts):
            raise ClosureCompileError("body is not a checked block")
        self.method = method
        self.body = body
        self.formals = decl.formals
        self.slots: Dict[str, int] = {}
        for index, formal in enumerate(self.formals):
            self.slots[formal.name.name] = 1 + index
        self.ret_slot = 1 + len(self.formals)
        self.next_slot = self.ret_slot + 1

    def compile(self) -> Plan:
        runner = self.compile_block(self.body)
        formal_slots = list(range(1, 1 + len(self.formals)))
        return Plan(runner, self.next_slot, formal_slots, self.ret_slot)

    def slot_of(self, name: str) -> int:
        slot = self.slots.get(name)
        if slot is None:
            slot = self.slots[name] = self.next_slot
            self.next_slot += 1
        return slot

    # -- statements ------------------------------------------------------

    def compile_block(self, block):
        stmts = block.stmts if isinstance(block, n.BlockStmts) else block
        steps = [self.compile_stmt(s) for s in stmts]
        if not steps:
            def run_empty(interp, frame):
                return None
            return run_empty
        if len(steps) == 1:
            return steps[0]

        def run(interp, frame):
            for step in steps:
                signal = step(interp, frame)
                if signal is not None:
                    return signal
            return None
        return run

    def compile_stmt(self, stmt):
        handler = _STMT_HANDLERS.get(stmt.node_kind)
        if handler is None:
            raise ClosureCompileError(f"statement {stmt.node_kind}")
        return handler(self, stmt)

    def _stmt_lazy_node(self, stmt: n.LazyNode):
        # The walker counts a lazy statement twice per execution (the
        # wrapper and the forced statement); mirror that.
        if not stmt.is_forced():
            raise ClosureCompileError("unforced lazy statement")
        obs_lazy.thunk_forcing(stmt)
        inner = self.compile_stmt(stmt.force())

        def run(interp, frame):
            _C_STATEMENTS.value += 1
            if interp.max_steps is not None and \
                    interp.counters.statements > interp.max_steps:
                interp._raise_step_limit()
            return inner(interp, frame)
        return run

    def _stmt_empty(self, stmt):
        def run(interp, frame):
            _C_STATEMENTS.value += 1
            if interp.max_steps is not None and \
                    interp.counters.statements > interp.max_steps:
                interp._raise_step_limit()
            return None
        return run

    def _stmt_block(self, stmt: n.Block):
        inner = self.compile_block(stmt.body)

        def run(interp, frame):
            _C_STATEMENTS.value += 1
            if interp.max_steps is not None and \
                    interp.counters.statements > interp.max_steps:
                interp._raise_step_limit()
            return inner(interp, frame)
        return run

    def _stmt_use(self, stmt: n.UseStmt):
        inner = self.compile_block(stmt.body)

        def run(interp, frame):
            _C_STATEMENTS.value += 1
            if interp.max_steps is not None and \
                    interp.counters.statements > interp.max_steps:
                interp._raise_step_limit()
            return inner(interp, frame)
        return run

    def _stmt_expr(self, stmt: n.ExprStmt):
        ev = self.compile_expr(stmt.expr)

        def run(interp, frame):
            _C_STATEMENTS.value += 1
            if interp.max_steps is not None and \
                    interp.counters.statements > interp.max_steps:
                interp._raise_step_limit()
            ev(interp, frame)
            return None
        return run

    def _stmt_local_var(self, stmt: n.LocalVarDecl):
        scope = stmt.scope
        declared = resolve_type_name(stmt.type_name, scope) \
            if scope is not None else None
        inits = []
        for ident, dims, init in stmt.bindings():
            var_type = array_of(declared, dims) if declared and dims \
                else declared
            slot = self.slot_of(ident.name)
            if init is None:
                value = default_value(var_type) if var_type else None
                inits.append((slot, None, value))
            elif isinstance(init, n.ArrayInitializer):
                if not isinstance(var_type, ArrayType):
                    raise ClosureCompileError("array init on non-array")
                inits.append((slot, self.compile_array_init(init, var_type),
                              None))
            else:
                inits.append((slot, self.compile_expr(init), None))

        if len(inits) == 1:
            slot, fn, const = inits[0]
            if fn is None:
                def run(interp, frame):
                    _C_STATEMENTS.value += 1
                    if interp.max_steps is not None and \
                            interp.counters.statements > interp.max_steps:
                        interp._raise_step_limit()
                    frame[slot] = const
                    return None
            else:
                def run(interp, frame):
                    _C_STATEMENTS.value += 1
                    if interp.max_steps is not None and \
                            interp.counters.statements > interp.max_steps:
                        interp._raise_step_limit()
                    frame[slot] = fn(interp, frame)
                    return None
            return run

        def run(interp, frame):
            _C_STATEMENTS.value += 1
            if interp.max_steps is not None and \
                    interp.counters.statements > interp.max_steps:
                interp._raise_step_limit()
            for slot, fn, const in inits:
                frame[slot] = const if fn is None else fn(interp, frame)
            return None
        return run

    def _stmt_if(self, stmt: n.IfStmt):
        cond = self.compile_expr(stmt.cond)
        then_run = self.compile_stmt(stmt.then_stmt)
        else_run = self.compile_stmt(stmt.else_stmt) \
            if stmt.else_stmt is not None else None

        def run(interp, frame):
            _C_STATEMENTS.value += 1
            if interp.max_steps is not None and \
                    interp.counters.statements > interp.max_steps:
                interp._raise_step_limit()
            if cond(interp, frame):
                return then_run(interp, frame)
            if else_run is not None:
                return else_run(interp, frame)
            return None
        return run

    def _stmt_while(self, stmt: n.WhileStmt):
        cond = self.compile_expr(stmt.cond)
        body = self.compile_stmt(stmt.body)

        def run(interp, frame):
            _C_STATEMENTS.value += 1
            if interp.max_steps is not None and \
                    interp.counters.statements > interp.max_steps:
                interp._raise_step_limit()
            while cond(interp, frame):
                signal = body(interp, frame)
                if signal is not None:
                    if signal is _BREAK:
                        break
                    if signal is _CONTINUE:
                        continue
                    return signal
            return None
        return run

    def _stmt_do(self, stmt: n.DoStmt):
        body = self.compile_stmt(stmt.body)
        cond = self.compile_expr(stmt.cond)

        def run(interp, frame):
            _C_STATEMENTS.value += 1
            if interp.max_steps is not None and \
                    interp.counters.statements > interp.max_steps:
                interp._raise_step_limit()
            while True:
                signal = body(interp, frame)
                if signal is not None:
                    if signal is _BREAK:
                        break
                    if signal is not _CONTINUE:
                        return signal
                if not cond(interp, frame):
                    break
            return None
        return run

    def _stmt_for(self, stmt: n.ForStmt):
        init_stmt = None
        init_exprs = []
        if isinstance(stmt.init, n.LocalVarDecl):
            init_stmt = self.compile_stmt(stmt.init)
        elif isinstance(stmt.init, list):
            init_exprs = [self.compile_expr(e) for e in stmt.init]
        elif stmt.init is not None:
            raise ClosureCompileError("for-init shape")
        cond = self.compile_expr(stmt.cond) if stmt.cond is not None else None
        updates = [self.compile_expr(u) for u in stmt.update]
        body = self.compile_stmt(stmt.body)

        def run(interp, frame):
            _C_STATEMENTS.value += 1
            if interp.max_steps is not None and \
                    interp.counters.statements > interp.max_steps:
                interp._raise_step_limit()
            if init_stmt is not None:
                init_stmt(interp, frame)
            else:
                for init in init_exprs:
                    init(interp, frame)
            while cond is None or cond(interp, frame):
                signal = body(interp, frame)
                if signal is not None:
                    if signal is _BREAK:
                        return None  # walker: break skips the updates
                    if signal is not _CONTINUE:
                        return signal
                for update in updates:
                    update(interp, frame)
            return None
        return run

    def _stmt_return(self, stmt: n.ReturnStmt):
        ret_slot = self.ret_slot
        if stmt.expr is None:
            def run(interp, frame):
                _C_STATEMENTS.value += 1
                if interp.max_steps is not None and \
                        interp.counters.statements > interp.max_steps:
                    interp._raise_step_limit()
                frame[ret_slot] = None
                return _RETURN
            return run
        ev = self.compile_expr(stmt.expr)

        def run(interp, frame):
            _C_STATEMENTS.value += 1
            if interp.max_steps is not None and \
                    interp.counters.statements > interp.max_steps:
                interp._raise_step_limit()
            frame[ret_slot] = ev(interp, frame)
            return _RETURN
        return run

    def _stmt_throw(self, stmt: n.ThrowStmt):
        ev = self.compile_expr(stmt.expr)

        def run(interp, frame):
            _C_STATEMENTS.value += 1
            if interp.max_steps is not None and \
                    interp.counters.statements > interp.max_steps:
                interp._raise_step_limit()
            raise JavaThrow(ev(interp, frame))
        return run

    def _stmt_break(self, stmt):
        def run(interp, frame):
            _C_STATEMENTS.value += 1
            if interp.max_steps is not None and \
                    interp.counters.statements > interp.max_steps:
                interp._raise_step_limit()
            return _BREAK
        return run

    def _stmt_continue(self, stmt):
        def run(interp, frame):
            _C_STATEMENTS.value += 1
            if interp.max_steps is not None and \
                    interp.counters.statements > interp.max_steps:
                interp._raise_step_limit()
            return _CONTINUE
        return run

    def _stmt_try(self, stmt: n.TryStmt):
        body = self.compile_block(stmt.body)
        clauses = []
        for clause in stmt.catches:
            caught = getattr(clause, "caught_type", None)
            if caught is None:
                formal_scope = clause.formal.scope
                if formal_scope is None:
                    raise ClosureCompileError("unchecked catch clause")
                caught = resolve_type_name(clause.formal.type_name,
                                           formal_scope)
            slot = self.slot_of(clause.formal.name.name)
            clauses.append((caught, slot, self.compile_block(clause.body)))
        fin = self.compile_block(stmt.finally_body) \
            if stmt.finally_body is not None else None

        def run(interp, frame):
            _C_STATEMENTS.value += 1
            if interp.max_steps is not None and \
                    interp.counters.statements > interp.max_steps:
                interp._raise_step_limit()
            signal = None
            try:
                try:
                    signal = body(interp, frame)
                except JavaThrow as thrown:
                    value = thrown.value
                    for caught, slot, catch_body in clauses:
                        if value.class_type.is_subtype_of(caught):
                            frame[slot] = value
                            signal = catch_body(interp, frame)
                            break
                    else:
                        raise
            finally:
                if fin is not None:
                    fin_signal = fin(interp, frame)
                    if fin_signal is not None:
                        # Mirrors the walker: a return/break/continue
                        # inside finally swallows any in-flight
                        # exception and overrides the pending signal.
                        return fin_signal
            return signal
        return run

    # -- array initializers ---------------------------------------------

    def compile_array_init(self, init: n.ArrayInitializer,
                           array_type: ArrayType):
        element = array_type.element
        parts = []
        for item in init.elements:
            if isinstance(item, n.ArrayInitializer):
                if not isinstance(element, ArrayType):
                    raise ClosureCompileError("nested array init shape")
                parts.append(self.compile_array_init(item, element))
            else:
                parts.append(self.compile_expr(item))

        def build(interp, frame):
            _C_ALLOCATIONS.value += 1
            return JavaArray(element, [p(interp, frame) for p in parts])
        return build

    # -- expressions -----------------------------------------------------

    def compile_expr(self, expr):
        handler = _EXPR_HANDLERS.get(expr.node_kind)
        if handler is None:
            raise ClosureCompileError(f"expression {expr.node_kind}")
        return handler(self, expr)

    def _expr_literal(self, expr: n.Literal):
        value = expr.value

        def ev(interp, frame):
            return value
        return ev

    def _local_read(self, name: str, unbound_what: str = "local"):
        slot = self.slot_of(name)
        message = f"unbound {unbound_what} {name}"

        def ev(interp, frame):
            value = frame[slot]
            if value is _UNBOUND:
                raise MayaError(message)
            return value
        return ev

    def _wrap_field_read(self, base, field):
        if field is None:  # the checker's array-length sentinel
            def ev(interp, frame):
                return len(base(interp, frame))
            return ev
        if field.is_static:
            def ev(interp, frame):
                return interp._read_field(base(interp, frame), field)
            return ev
        fname = field.name
        ftype = field.type

        def ev(interp, frame):
            obj = base(interp, frame)
            _C_FIELD_READS.value += 1
            if obj is None:
                raise interp.throw("java.lang.NullPointerException", fname)
            fields = obj.fields
            value = fields.get(fname, _MISSING)
            if value is _MISSING:
                value = fields[fname] = default_value(ftype)
            return value
        return ev

    def _resolve(self, expr):
        try:
            return resolve_name(expr, expr.scope)
        except Exception as error:
            raise ClosureCompileError(str(error)) from None

    def _expr_name(self, expr: n.NameExpr):
        kind, payload, fields = self._resolve(expr)
        if kind == "local":
            base = self._local_read(payload.name)
        elif kind == "this_field":
            first = fields[0]

            def this_base(interp, frame):
                return frame[0]
            base = self._wrap_field_read(this_base, first)
            fields = fields[1:]
        elif kind == "static":
            first = fields[0]

            def base(interp, frame):
                return interp._read_static(payload, first)
            fields = fields[1:]
        else:
            raise ClosureCompileError(f"{expr} is a class, not a value")
        for field in fields:
            base = self._wrap_field_read(base, field)
        return base

    def _expr_reference(self, expr: n.Reference):
        binding = expr.binding
        name = getattr(binding, "name", binding)
        if isinstance(name, n.Ident):
            name = name.name
        if not isinstance(name, str):
            raise ClosureCompileError("reference binding shape")
        return self._local_read(name, "reference")

    def _expr_this(self, expr):
        def ev(interp, frame):
            return frame[0]
        return ev

    def _expr_paren(self, expr: n.ParenExpr):
        return self.compile_expr(expr.inner)

    def _expr_field_access(self, expr: n.FieldAccess):
        name = expr.name
        if isinstance(expr.receiver, n.SuperExpr):
            def recv(interp, frame):
                return frame[0]
        else:
            recv = self.compile_expr(expr.receiver)
        field = getattr(expr, "field", _MISSING)
        if field is _MISSING:
            # Unchecked access: the walker resolves the field on the
            # receiver's runtime class per execution — inline-cache it.
            cache: Dict[object, object] = {}

            def ev(interp, frame):
                receiver = recv(interp, frame)
                if isinstance(receiver, JavaArray) and name == "length":
                    return len(receiver)
                klass = receiver.class_type if type(receiver) is JavaObject \
                    else interp._class_of_value(receiver)
                found = cache.get(klass, _MISSING)
                if found is _MISSING:
                    if len(cache) >= MEGAMORPHIC:
                        _IC_FIELD_MEGA.value += 1
                        found = klass.find_field(name)
                    else:
                        _IC_FIELD_MISS.value += 1
                        found = cache[klass] = klass.find_field(name)
                else:
                    _IC_FIELD_HIT.value += 1
                return interp._read_field(receiver, found)
            return ev
        if field is None:  # array length, statically known
            def ev(interp, frame):
                receiver = recv(interp, frame)
                if isinstance(receiver, JavaArray):
                    return len(receiver)
                klass = interp._class_of_value(receiver)
                return interp._read_field(receiver, klass.find_field(name))
            return ev
        if name == "length" or field.is_static:
            # Keep the walker's array-length probe / static handling.
            def ev(interp, frame):
                receiver = recv(interp, frame)
                if isinstance(receiver, JavaArray) and name == "length":
                    return len(receiver)
                return interp._read_field(receiver, field)
            return ev
        return self._wrap_field_read(recv, field)

    def _expr_array_access(self, expr: n.ArrayAccess):
        arr = self.compile_expr(expr.array)
        idx = self.compile_expr(expr.index)

        def ev(interp, frame):
            array = arr(interp, frame)
            index = idx(interp, frame)
            _C_ARRAY_READS.value += 1
            if array is None:
                raise interp.throw("java.lang.NullPointerException", None)
            values = array.values
            if index < 0 or index >= len(values):
                raise interp.throw("java.lang.IndexOutOfBoundsException",
                                   str(index))
            return values[index]
        return ev

    # -- invocations -----------------------------------------------------

    def _target_of(self, expr):
        if not hasattr(expr, "target"):
            try:
                static_type_of(expr)
            except Exception as error:
                raise ClosureCompileError(str(error)) from None
        return expr.target

    def _expr_invocation(self, expr: n.MethodInvocation):
        kind, payload, method = self._target_of(expr)
        arg_fns = [self.compile_expr(a) for a in expr.args]

        if kind == "instance":
            recv = self.compile_expr(payload)
            return self._virtual_call(method, recv, arg_fns,
                                      null_check=True)
        if kind == "this":
            def recv(interp, frame):
                return frame[0]
            return self._virtual_call(method, recv, arg_fns,
                                      null_check=False)
        if kind == "static":
            def ev(interp, frame):
                args = [fn(interp, frame) for fn in arg_fns]
                _C_METHOD_CALLS.value += 1
                return interp.invoke_exact(method, None, args)
            return ev
        if kind == "super":
            def ev(interp, frame):
                args = [fn(interp, frame) for fn in arg_fns]
                _C_METHOD_CALLS.value += 1
                return interp.invoke_exact(method, frame[0], args)
            return ev
        # ctor_call (<this>/<super>) only occurs in constructor bodies,
        # which always run on the walker.
        raise ClosureCompileError(f"invocation target {kind}")

    def _virtual_call(self, method, recv, arg_fns, null_check: bool):
        """A virtual call site with a per-receiver-class inline cache.

        The cache maps runtime ClassType -> resolved Method (what the
        walker's per-call ``_virtual_lookup`` walk computes); dispatch
        then goes through ``invoke_exact`` so depth guards, attached
        impls, builtin lookup, and compiled plans all behave exactly as
        on the walk backend.
        """
        mname = method.name
        cache: Dict[object, object] = {}
        if method.is_static:
            # An instance-qualified static call: no virtual dispatch.
            def ev(interp, frame):
                args = [fn(interp, frame) for fn in arg_fns]
                receiver = recv(interp, frame)
                if null_check and receiver is None:
                    raise interp.throw("java.lang.NullPointerException",
                                       mname)
                _C_METHOD_CALLS.value += 1
                return interp.invoke_exact(method, receiver, args)
            return ev

        def ev(interp, frame):
            args = [fn(interp, frame) for fn in arg_fns]
            receiver = recv(interp, frame)
            if receiver is None:
                if null_check:
                    raise interp.throw("java.lang.NullPointerException",
                                       mname)
                _C_METHOD_CALLS.value += 1
                return interp.invoke_exact(method, receiver, args)
            _C_METHOD_CALLS.value += 1
            klass = receiver.class_type if type(receiver) is JavaObject \
                else interp._class_of_value(receiver)
            resolved = cache.get(klass)
            if resolved is None:
                if len(cache) >= MEGAMORPHIC:
                    _IC_CALL_MEGA.value += 1
                    resolved = interp._virtual_lookup(klass, method)
                else:
                    _IC_CALL_MISS.value += 1
                    resolved = cache[klass] = \
                        interp._virtual_lookup(klass, method)
            else:
                _IC_CALL_HIT.value += 1
            return interp.invoke_exact(resolved, receiver, args)
        return ev

    def _expr_new_object(self, expr: n.NewObject):
        target = self._target_of(expr)
        _, klass, ctor = target
        arg_fns = [self.compile_expr(a) for a in expr.args]

        def ev(interp, frame):
            args = [fn(interp, frame) for fn in arg_fns]
            return interp.construct(klass, ctor, args)
        return ev

    def _expr_new_array(self, expr: n.NewArray):
        if expr.scope is None:
            raise ClosureCompileError("unscoped new array")
        element = resolve_type_name(expr.element_type, expr.scope)
        if expr.initializer is not None:
            total_dims = max(len(expr.dim_exprs) + expr.extra_dims, 1)
            return self.compile_array_init(expr.initializer,
                                           array_of(element, total_dims))
        dim_fns = [self.compile_expr(d) for d in expr.dim_exprs]
        extra = expr.extra_dims

        def ev(interp, frame):
            dims = [fn(interp, frame) for fn in dim_fns]
            return interp._allocate(element, dims, extra)
        return ev

    # -- operators -------------------------------------------------------

    def _expr_unary(self, expr: n.UnaryExpr):
        op = expr.op
        if op in ("++", "--"):
            return self._compile_incr(expr.operand, op, prefix=True)
        operand = self.compile_expr(expr.operand)
        stype = getattr(expr.operand, "_static_type", None)
        numeric = _is_numeric_type(stype)
        if op == "!":
            def ev(interp, frame):
                return not operand(interp, frame)
            return ev
        if op == "-":
            if numeric:
                def ev(interp, frame):
                    return -operand(interp, frame)
            else:
                def ev(interp, frame):
                    return -_num(operand(interp, frame))
            return ev
        if op == "+":
            if numeric:
                return operand
            def ev(interp, frame):
                return _num(operand(interp, frame))
            return ev
        if op == "~":
            if numeric:
                def ev(interp, frame):
                    return ~operand(interp, frame)
            else:
                def ev(interp, frame):
                    return ~_num(operand(interp, frame))
            return ev
        raise ClosureCompileError(f"unary {op}")

    def _expr_postfix(self, expr: n.PostfixExpr):
        return self._compile_incr(expr.operand, expr.op, prefix=False)

    def _compile_incr(self, lvalue, op, prefix: bool):
        read = self.compile_expr(lvalue)
        store = self.compile_store(lvalue)
        delta = 1 if op == "++" else -1
        stype = getattr(lvalue, "_static_type", None)
        direct = _is_numeric_type(stype)

        def ev(interp, frame):
            old = read(interp, frame)
            if not direct:
                old = _num(old)
            new = old + delta
            store(interp, frame, new)
            return new if prefix else old
        return ev

    def _expr_binary(self, expr: n.BinaryExpr):
        op = expr.op
        left = self.compile_expr(expr.left)
        right = self.compile_expr(expr.right)
        lt = getattr(expr.left, "_static_type", None)
        rt = getattr(expr.right, "_static_type", None)
        both_int = _is_int_type(lt) and _is_int_type(rt)
        both_numeric = _is_numeric_type(lt) and _is_numeric_type(rt)
        both_boolean = lt is BOOLEAN and rt is BOOLEAN

        # Literal folding: int-literal operands with direct semantics.
        if isinstance(expr.left, n.Literal) and \
                isinstance(expr.right, n.Literal) and \
                expr.left.kind in ("int", "long") and \
                expr.right.kind in ("int", "long"):
            folded = _FOLDABLE.get(op)
            if folded is not None:
                constant = folded(expr.left.value, expr.right.value)

                def ev(interp, frame):
                    return constant
                return ev

        if op == "&&":
            if both_boolean:
                def ev(interp, frame):
                    return left(interp, frame) and right(interp, frame)
            else:
                def ev(interp, frame):
                    return bool(left(interp, frame)) and \
                        bool(right(interp, frame))
            return ev
        if op == "||":
            if both_boolean:
                def ev(interp, frame):
                    return left(interp, frame) or right(interp, frame)
            else:
                def ev(interp, frame):
                    return bool(left(interp, frame)) or \
                        bool(right(interp, frame))
            return ev

        if op == "+":
            stype = getattr(expr, "_static_type", None)
            if _is_string_type(stype):
                def ev(interp, frame):
                    return java_str(left(interp, frame)) + \
                        java_str(right(interp, frame))
                return ev
            if stype is not None:
                if both_numeric:
                    def ev(interp, frame):
                        return left(interp, frame) + right(interp, frame)
                else:
                    def ev(interp, frame):
                        return _num(left(interp, frame)) + \
                            _num(right(interp, frame))
                return ev

            def ev(interp, frame):
                return _binary_op(interp, "+", left(interp, frame),
                                  right(interp, frame))
            return ev

        if op in ("==", "!="):
            if both_numeric:
                if op == "==":
                    def ev(interp, frame):
                        return left(interp, frame) == right(interp, frame)
                else:
                    def ev(interp, frame):
                        return left(interp, frame) != right(interp, frame)
                return ev
            want = (op == "==")

            def ev(interp, frame):
                return _java_equal(left(interp, frame),
                                   right(interp, frame)) is want
            return ev

        if both_numeric and op in ("<", ">", "<=", ">=", "-", "*"):
            direct = _DIRECT_OPS[op]

            def ev(interp, frame):
                return direct(left(interp, frame), right(interp, frame))
            return ev

        if both_int and op == "/":
            def ev(interp, frame):
                a = left(interp, frame)
                b = right(interp, frame)
                if b == 0:
                    raise interp.throw("java.lang.ArithmeticException",
                                       "/ by zero")
                quotient = abs(a) // abs(b)
                return quotient if (a >= 0) == (b >= 0) else -quotient
            return ev
        if both_int and op == "%":
            def ev(interp, frame):
                a = left(interp, frame)
                b = right(interp, frame)
                if b == 0:
                    raise interp.throw("java.lang.ArithmeticException",
                                       "% by zero")
                quotient = abs(a) // abs(b)
                if (a >= 0) != (b >= 0):
                    quotient = -quotient
                return a - quotient * b
            return ev

        if both_boolean and op in ("&", "|", "^"):
            if op == "&":
                def ev(interp, frame):
                    return left(interp, frame) and right(interp, frame)
            elif op == "|":
                def ev(interp, frame):
                    return left(interp, frame) or right(interp, frame)
            else:
                def ev(interp, frame):
                    return left(interp, frame) != right(interp, frame)
            return ev

        def ev(interp, frame):
            return _binary_op(interp, op, left(interp, frame),
                              right(interp, frame))
        return ev

    def _expr_instanceof(self, expr: n.InstanceofExpr):
        if expr.scope is None:
            raise ClosureCompileError("unscoped instanceof")
        target = resolve_type_name(expr.type_name, expr.scope)
        value_fn = self.compile_expr(expr.expr)
        cache: Dict[object, bool] = {}

        def ev(interp, frame):
            value = value_fn(interp, frame)
            if value is None:
                return False
            runtime = interp._runtime_type(value)
            verdict = cache.get(runtime, _MISSING)
            if verdict is _MISSING:
                _IC_TYPE_MISS.value += 1
                verdict = cache[runtime] = runtime.is_subtype_of(target)
            else:
                _IC_TYPE_HIT.value += 1
            return verdict
        return ev

    def _expr_cast(self, expr: n.CastExpr):
        if expr.scope is None:
            raise ClosureCompileError("unscoped cast")
        target = resolve_type_name(expr.type_name, expr.scope)
        value_fn = self.compile_expr(expr.expr)
        if isinstance(target, PrimitiveType):
            def ev(interp, frame):
                return _primitive_cast(value_fn(interp, frame), target)
            return ev
        cache: Dict[object, bool] = {}

        def ev(interp, frame):
            value = value_fn(interp, frame)
            if value is None:
                return None
            runtime = interp._runtime_type(value)
            verdict = cache.get(runtime, _MISSING)
            if verdict is _MISSING:
                _IC_TYPE_MISS.value += 1
                verdict = cache[runtime] = runtime.is_subtype_of(target)
            else:
                _IC_TYPE_HIT.value += 1
            if not verdict:
                raise interp.throw("java.lang.ClassCastException",
                                   f"{interp._runtime_type(value)} to "
                                   f"{target}")
            return value
        return ev

    def _expr_assignment(self, expr: n.Assignment):
        store = self.compile_store(expr.lhs)
        value_fn = self.compile_expr(expr.value)
        if expr.op == "=":
            def ev(interp, frame):
                value = value_fn(interp, frame)
                store(interp, frame, value)
                return value
            return ev
        op = expr.op[:-1]
        read = self.compile_expr(expr.lhs)

        def ev(interp, frame):
            # Compound assignment mirrors the walker exactly: the lhs
            # is read once and re-evaluated by the store, and the
            # combine always goes through the generic operator.
            current = read(interp, frame)
            value = _binary_op(interp, op, current, value_fn(interp, frame))
            store(interp, frame, value)
            return value
        return ev

    def _expr_conditional(self, expr: n.ConditionalExpr):
        cond = self.compile_expr(expr.cond)
        then_fn = self.compile_expr(expr.then_expr)
        else_fn = self.compile_expr(expr.else_expr)

        def ev(interp, frame):
            if cond(interp, frame):
                return then_fn(interp, frame)
            return else_fn(interp, frame)
        return ev

    # -- lvalue stores ---------------------------------------------------

    def compile_store(self, lhs):
        """Compile an lvalue into ``store(interp, frame, value)``."""
        if isinstance(lhs, n.ParenExpr):
            return self.compile_store(lhs.inner)
        if isinstance(lhs, n.NameExpr):
            return self._store_name(lhs)
        if isinstance(lhs, n.FieldAccess):
            return self._store_field_access(lhs)
        if isinstance(lhs, n.ArrayAccess):
            return self._store_array_access(lhs)
        if isinstance(lhs, n.Reference):
            binding = lhs.binding
            name = getattr(binding, "name", binding)
            if isinstance(name, n.Ident):
                name = name.name
            if not isinstance(name, str):
                raise ClosureCompileError("reference binding shape")
            slot = self.slot_of(name)

            def store(interp, frame, value):
                frame[slot] = value
            return store
        raise ClosureCompileError(
            f"assignment target {type(lhs).__name__}")

    def _store_name(self, lhs: n.NameExpr):
        kind, payload, fields = self._resolve(lhs)
        if kind == "local" and not fields:
            slot = self.slot_of(payload.name)

            def store(interp, frame, value):
                frame[slot] = value
            return store
        if kind == "local":
            slot = self.slot_of(payload.name)
            name = payload.name
            mids, last = fields[:-1], fields[-1]

            def store(interp, frame, value):
                target = frame[slot]
                if target is _UNBOUND:
                    raise KeyError(name)  # walker: frame[name] KeyError
                for field in mids:
                    target = interp._read_field(target, field)
                interp._write_field(target, last, value)
            return store
        if kind == "this_field":
            mids, last = fields[:-1], fields[-1]

            def store(interp, frame, value):
                target = frame[0]
                for field in mids:
                    target = interp._read_field(target, field)
                interp._write_field(target, last, value)
            return store
        if kind == "static":
            if len(fields) == 1:
                field = fields[0]
                key = (field.declaring_class.name, field.name)

                def store(interp, frame, value):
                    _C_FIELD_WRITES.value += 1
                    interp.statics[key] = value
                return store
            first = fields[0]
            mids, last = fields[1:-1], fields[-1]

            def store(interp, frame, value):
                target = interp._read_static(payload, first)
                for field in mids:
                    target = interp._read_field(target, field)
                interp._write_field(target, last, value)
            return store
        raise ClosureCompileError(f"cannot assign to {lhs}")

    def _store_field_access(self, lhs: n.FieldAccess):
        recv = self.compile_expr(lhs.receiver)
        field = getattr(lhs, "field", None)
        if field is not None:
            def store(interp, frame, value):
                interp._write_field(recv(interp, frame), field, value)
            return store
        name = lhs.name
        cache: Dict[object, object] = {}

        def store(interp, frame, value):
            receiver = recv(interp, frame)
            klass = receiver.class_type if type(receiver) is JavaObject \
                else interp._class_of_value(receiver)
            found = cache.get(klass, _MISSING)
            if found is _MISSING:
                if len(cache) >= MEGAMORPHIC:
                    _IC_FIELD_MEGA.value += 1
                    found = klass.find_field(name)
                else:
                    _IC_FIELD_MISS.value += 1
                    found = cache[klass] = klass.find_field(name)
            else:
                _IC_FIELD_HIT.value += 1
            interp._write_field(receiver, found, value)
        return store

    def _store_array_access(self, lhs: n.ArrayAccess):
        arr = self.compile_expr(lhs.array)
        idx = self.compile_expr(lhs.index)

        def store(interp, frame, value):
            array = arr(interp, frame)
            index = idx(interp, frame)
            _C_ARRAY_WRITES.value += 1
            if array is None:
                raise interp.throw("java.lang.NullPointerException", None)
            values = array.values
            if index < 0 or index >= len(values):
                raise interp.throw("java.lang.IndexOutOfBoundsException",
                                   str(index))
            values[index] = value
        return store


_FOLDABLE = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_DIRECT_OPS = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}

_STMT_HANDLERS = {
    "lazy_node": _MethodCompiler._stmt_lazy_node,
    "empty_stmt": _MethodCompiler._stmt_empty,
    "block": _MethodCompiler._stmt_block,
    "use_stmt": _MethodCompiler._stmt_use,
    "expr_stmt": _MethodCompiler._stmt_expr,
    "local_var_decl": _MethodCompiler._stmt_local_var,
    "if_stmt": _MethodCompiler._stmt_if,
    "while_stmt": _MethodCompiler._stmt_while,
    "do_stmt": _MethodCompiler._stmt_do,
    "for_stmt": _MethodCompiler._stmt_for,
    "return_stmt": _MethodCompiler._stmt_return,
    "throw_stmt": _MethodCompiler._stmt_throw,
    "break_stmt": _MethodCompiler._stmt_break,
    "continue_stmt": _MethodCompiler._stmt_continue,
    "try_stmt": _MethodCompiler._stmt_try,
}

_EXPR_HANDLERS = {
    "literal": _MethodCompiler._expr_literal,
    "name_expr": _MethodCompiler._expr_name,
    "reference": _MethodCompiler._expr_reference,
    "this_expr": _MethodCompiler._expr_this,
    "paren_expr": _MethodCompiler._expr_paren,
    "field_access": _MethodCompiler._expr_field_access,
    "array_access": _MethodCompiler._expr_array_access,
    "method_invocation": _MethodCompiler._expr_invocation,
    "new_object": _MethodCompiler._expr_new_object,
    "new_array": _MethodCompiler._expr_new_array,
    "unary_expr": _MethodCompiler._expr_unary,
    "postfix_expr": _MethodCompiler._expr_postfix,
    "binary_expr": _MethodCompiler._expr_binary,
    "instanceof_expr": _MethodCompiler._expr_instanceof,
    "cast_expr": _MethodCompiler._expr_cast,
    "assignment": _MethodCompiler._expr_assignment,
    "conditional_expr": _MethodCompiler._expr_conditional,
}
