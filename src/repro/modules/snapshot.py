"""Deep module artifacts: pickled snapshots of *checked* ASTs.

PR 8's module cache persisted the expanded (plain-Java) source per
module, so a warm ``need_bodies`` hit still re-lexed, re-parsed, and
re-checked every line.  The snapshot layer removes that tail: after a
module compiles, :func:`snapshot_unit` takes a **stripped copy** of its
checked compilation unit — every node rebuilt through its own
constructor from ``_fields`` + location, with all checker/parser
annotations (scopes, resolutions, static types, member links) dropped —
and pickles it.  A warm hit then restores via :func:`load_unit` and
re-runs only the cheap shaping + checking walk over an already-parsed
tree, skipping lexing, declaration parsing, and lazy body parsing
entirely (the bulk of a module's compile time; see EXPERIMENTS E17).

Two node families can't round-trip through a plain field copy and are
rewritten to their *unparse-equivalent* plain forms — exactly what the
expanded-source text would re-parse to, so deep restore and the PR 8
text path are semantically interchangeable by construction:

* ``Reference`` (a direct binding reference from hygiene machinery)
  becomes a ``NameExpr`` of the binding's name — the unparser prints
  ``binding.name``, so the text path produces the same node.
* ``StrictTypeName`` (a template's resolved type) becomes a plain
  ``TypeName`` of its qualified ``syntax_parts()`` — again what the
  printed artifact re-parses to.

Anything else surprising — an unforced ``LazyNode``, an unknown leaf
object, a constructor that refuses the copied fields — makes
:func:`snapshot_unit` **decline** (return None) rather than persist a
blob it can't vouch for; the cache entry then simply lacks a deep
artifact and warm hits fall back to the expanded-source compile.  The
same never-trust-the-disk ladder guards the load side: a blob that
fails its checksum or unpickle is reported by raising
:class:`SnapshotError`, and the caller quarantines/regenerates.
"""

from __future__ import annotations

import hashlib
import io
import pickle
import pickletools
from typing import Optional

from repro.ast import nodes as n
from repro.lexer import Location

#: Bump when the snapshot's structural conventions change; baked into
#: the pickle header so stale blobs fail closed as a format mismatch.
SNAPSHOT_FORMAT = 1

_PRIMITIVE = (str, int, float, bool, type(None))

#: Classes allowed to unpickle.  A module-cache blob is local build
#: state, but keeping the set closed (AST nodes + locations + builtin
#: containers) costs nothing and keeps a tampered entry from
#: instantiating arbitrary classes.
_ALLOWED_MODULES = ("repro.ast.nodes", "repro.lexer",
                    "repro.lexer.source", "repro.lexer.tokens")


class SnapshotError(Exception):
    """A deep artifact that could not be restored (corrupt/stale)."""


class _Unsnappable(Exception):
    """Internal: this tree contains state a stripped copy can't carry."""


def _strip(value):
    """A stripped copy of ``value``: nodes rebuilt from ``_fields``."""
    if isinstance(value, _PRIMITIVE):
        return value
    if isinstance(value, list):
        return [_strip(item) for item in value]
    if isinstance(value, tuple):
        return tuple(_strip(item) for item in value)
    if isinstance(value, n.LazyNode):
        # Checked trees splice forced lazies in place; one that survived
        # means this unit isn't fully materialized — decline.
        raise _Unsnappable("unforced lazy node in checked tree")
    if isinstance(value, n.Reference):
        return n.NameExpr((str(value.binding.name),),
                          location=value.location)
    if isinstance(value, n.StrictTypeName):
        base, dims = value.type.syntax_parts()
        return n.TypeName(tuple(base), dims + value.dims,
                          location=value.location)
    if isinstance(value, n.Node):
        cls = type(value)
        fields = [_strip(getattr(value, name)) for name in cls._fields]
        try:
            return cls(*fields, location=value.location)
        except TypeError as error:
            raise _Unsnappable(f"{cls.__name__}: {error}")
    if isinstance(value, Location):
        return value
    raise _Unsnappable(f"unsupported leaf {type(value).__name__}")


def snapshot_unit(unit: "n.CompilationUnit") -> Optional[bytes]:
    """Pickle a stripped copy of a checked unit, or None to decline."""
    try:
        clone = _strip(unit)
    except _Unsnappable:
        return None
    try:
        body = pickle.dumps((SNAPSHOT_FORMAT, clone), protocol=4)
    except Exception:
        # A field slipped through carrying unpicklable state; the
        # expanded-source artifact still covers this module.
        return None
    # Canonical byte form: identical trees must produce identical
    # blobs (the jobs=1 vs jobs=N property test compares entry files).
    return pickletools.optimize(body)


def blob_digest(blob: bytes) -> str:
    """Checksum persisted next to the blob; load verifies it first."""
    return hashlib.sha256(blob).hexdigest()


class _NodeUnpickler(pickle.Unpickler):
    def find_class(self, module, name):
        if module.split(".")[0] == "builtins" \
                or module in _ALLOWED_MODULES:
            return super().find_class(module, name)
        raise SnapshotError(f"snapshot references {module}.{name}")


def load_unit(blob: bytes) -> "n.CompilationUnit":
    """Unpickle a deep artifact; raise :class:`SnapshotError` if it is
    corrupt, stale, or not shaped like a compilation unit."""
    try:
        fmt, unit = _NodeUnpickler(io.BytesIO(blob)).load()
    except SnapshotError:
        raise
    except Exception as error:
        raise SnapshotError(f"undecodable snapshot: {error}")
    if fmt != SNAPSHOT_FORMAT:
        raise SnapshotError(f"snapshot format {fmt!r}, "
                            f"want {SNAPSHOT_FORMAT}")
    if not isinstance(unit, n.CompilationUnit):
        raise SnapshotError("snapshot payload is not a compilation unit")
    return unit
