"""repro.modules: multi-file programs and incremental recompilation.

See DESIGN.md "Modules & incremental builds" for the architecture:
:mod:`repro.modules.graph` discovers the import DAG,
:mod:`repro.modules.cache` persists per-module build products keyed by
transitive content fingerprints, :mod:`repro.modules.iface` carries
class skeletons across the cache boundary, and
:mod:`repro.modules.build` orchestrates the incremental build loop.
"""

from repro.modules.build import (BuildResult, ModuleBuild, ModuleBuilder,
                                 format_module_report)
from repro.modules.cache import (CACHE_FORMAT, ModuleCache, ModuleEntry,
                                 grammar_token, module_key,
                                 options_signature)
from repro.modules.graph import (FileSystemSources, MemorySources,
                                 ModuleGraph, ModuleImport, ModuleInfo,
                                 ModuleSources, scan_imports)
from repro.modules.iface import (export_interface, restore_interface,
                                 validate_interface)
from repro.modules.schedule import DagScheduler, resolve_jobs
from repro.modules.snapshot import (SNAPSHOT_FORMAT, SnapshotError,
                                    load_unit, snapshot_unit)

__all__ = [
    "BuildResult",
    "CACHE_FORMAT",
    "DagScheduler",
    "FileSystemSources",
    "MemorySources",
    "ModuleBuild",
    "ModuleBuilder",
    "ModuleCache",
    "ModuleEntry",
    "ModuleGraph",
    "ModuleImport",
    "ModuleInfo",
    "ModuleSources",
    "SNAPSHOT_FORMAT",
    "SnapshotError",
    "export_interface",
    "format_module_report",
    "grammar_token",
    "load_unit",
    "module_key",
    "options_signature",
    "resolve_jobs",
    "restore_interface",
    "scan_imports",
    "snapshot_unit",
    "validate_interface",
]
