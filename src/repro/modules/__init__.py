"""repro.modules: multi-file programs and incremental recompilation.

See DESIGN.md "Modules & incremental builds" for the architecture:
:mod:`repro.modules.graph` discovers the import DAG,
:mod:`repro.modules.cache` persists per-module build products keyed by
transitive content fingerprints, :mod:`repro.modules.iface` carries
class skeletons across the cache boundary, and
:mod:`repro.modules.build` orchestrates the incremental build loop.
"""

from repro.modules.build import BuildResult, ModuleBuild, ModuleBuilder
from repro.modules.cache import (CACHE_FORMAT, ModuleCache, ModuleEntry,
                                 module_key, options_signature)
from repro.modules.graph import (FileSystemSources, MemorySources,
                                 ModuleGraph, ModuleImport, ModuleInfo,
                                 ModuleSources, scan_imports)
from repro.modules.iface import export_interface, restore_interface

__all__ = [
    "BuildResult",
    "CACHE_FORMAT",
    "FileSystemSources",
    "MemorySources",
    "ModuleBuild",
    "ModuleBuilder",
    "ModuleCache",
    "ModuleEntry",
    "ModuleGraph",
    "ModuleImport",
    "ModuleInfo",
    "ModuleSources",
    "export_interface",
    "module_key",
    "options_signature",
    "restore_interface",
    "scan_imports",
]
