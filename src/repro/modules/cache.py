"""The per-module incremental build cache.

One JSON file per module name holds that module's last good build:
its fully expanded source (the byte-exact artifact), its exported
interface (class skeletons downstream modules shape against), its
exported metaprogram names (the grammar delta importers replay), and —
since format 2 — the **deep artifact**: a pickled stripped copy of the
module's *checked* AST (see :mod:`repro.modules.snapshot`) plus the
fingerprint token of the effective grammar the module was parsed under
(base grammar + its replayed export delta).  A warm ``need_bodies`` hit
restores the deep artifact and re-runs only shaping + checking —
skipping lexing and parsing outright — instead of recompiling the
expanded source from text.

**What keys an entry.**  ``module_key`` is a SHA-256 over the module's
own source text, the output-affecting build options, and — recursively
— the keys of its direct dependencies in import order.  A key therefore
fingerprints the whole *transitive* input cone: editing any upstream
module changes every downstream key, so exactly the downstream modules
miss (and recompile) while everything else replays from disk.  This is
the same content-addressing discipline as the LALR table cache's
``GrammarFingerprint`` keys and the pycode backend's source cache.

**Hygiene ladder** (shared with the LALR and codegen caches):

* absent entry, or an injected I/O fault at ``cache.module.load`` —
  a plain miss; recompile, store;
* *stale* entry (old format, key mismatch after an edit) — a plain
  miss too: well-formed, just not ours; it is overwritten on store;
* *corrupt* entry (truncated JSON, wrong shape) — quarantined to
  ``*.quarantine``, counted in ``maya_module_cache_corrupt_total``,
  and regenerated.  A bad cache file must never take a build down;
* *corrupt skeleton/deep payload* (``cache.module.iface`` fault site:
  the entry JSON parses but the interface list is malformed or the
  deep blob fails its checksum) — same quarantine + regenerate arm,
  counted separately in ``maya_module_cache_iface_corrupt_total``.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence

from repro import faults, perf
from repro.modules.iface import validate_interface
from repro.modules.snapshot import blob_digest
from repro.obs.metrics import REGISTRY

#: Format 2: deep artifact (pickled checked AST) + grammar token.
CACHE_FORMAT = 2

_CORRUPT_TOTAL = REGISTRY.counter(
    "maya_module_cache_corrupt_total",
    "On-disk module cache entries found corrupt, quarantined, and "
    "regenerated.")
_IFACE_CORRUPT_TOTAL = REGISTRY.counter(
    "maya_module_cache_iface_corrupt_total",
    "Module cache entries whose skeleton/deep payload was corrupt "
    "(checksum or shape); quarantined and regenerated.")


def options_signature(options: Dict[str, object]) -> str:
    """Canonical form of the output-affecting build options."""
    relevant = {
        key: options.get(key)
        for key in ("macros", "multijava", "use", "no_macros", "provenance")
        if options.get(key)
    }
    return json.dumps(relevant, sort_keys=True)


def module_key(name: str, source: str, options_sig: str,
               dep_keys: Sequence[Sequence[str]]) -> str:
    """The transitive content fingerprint of one module build.

    ``dep_keys`` is ``[(dep_name, dep_key), ...]`` for the *direct*
    dependencies in import order; each dep key already covers its own
    cone, so recursion bottoms out at leaf modules.
    """
    digest = hashlib.sha256()
    digest.update(f"maya-module/{CACHE_FORMAT}\x00".encode("utf-8"))
    digest.update(options_sig.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(name.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(source.encode("utf-8"))
    for dep_name, dep_key in dep_keys:
        digest.update(b"\x00")
        digest.update(dep_name.encode("utf-8"))
        digest.update(b"=")
        digest.update(dep_key.encode("utf-8"))
    return digest.hexdigest()


def grammar_token(grammar) -> str:
    """A short stable token for a module's effective grammar.

    Hashes the versioned-grammar fingerprint key (base productions
    plus the module's replayed export delta) — the same identity the
    LALR table cache keys on — so two modules parsed under identical
    grammars record identical tokens, across threads and processes.
    """
    fingerprint = grammar.fingerprint()
    return hashlib.sha256(
        repr(fingerprint.key).encode("utf-8")).hexdigest()[:16]


class ModuleEntry:
    """One cached module build."""

    __slots__ = ("name", "key", "expanded", "iface", "exports", "deps",
                 "deep", "grammar")

    def __init__(self, name: str, key: str, expanded: str,
                 iface: List[dict], exports: List[str],
                 deps: List[str], deep: Optional[bytes] = None,
                 grammar: str = ""):
        self.name = name
        self.key = key
        #: The byte-exact artifact: the module's expanded plain-Java
        #: source, exactly what a clean build would have produced.
        self.expanded = expanded
        #: Class skeletons (see :mod:`repro.modules.iface`).
        self.iface = iface
        #: Exported metaprogram names: the module's own top-level
        #: ``use`` names plus its deps' exports (the grammar delta an
        #: importer replays).
        self.exports = exports
        self.deps = deps
        #: Deep artifact: pickled stripped checked AST (or None when
        #: the snapshot layer declined; warm hits then use the
        #: expanded-source path).
        self.deep = deep
        #: Token of the effective grammar fingerprint this module was
        #: parsed under — the identity of its replayed LALR delta; a
        #: consistency record for diagnostics and the fault drills.
        self.grammar = grammar

    def payload(self) -> dict:
        payload = {
            "format": CACHE_FORMAT,
            "name": self.name,
            "key": self.key,
            "expanded": self.expanded,
            "iface": self.iface,
            "exports": self.exports,
            "deps": self.deps,
            "grammar": self.grammar,
        }
        if self.deep is not None:
            payload["deep"] = base64.b64encode(self.deep).decode("ascii")
            payload["deep_sha"] = blob_digest(self.deep)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "ModuleEntry":
        deep = None
        if payload.get("deep") is not None:
            deep = base64.b64decode(payload["deep"])
        entry = cls(
            name=payload["name"],
            key=payload["key"],
            expanded=payload["expanded"],
            iface=payload["iface"],
            exports=list(payload["exports"]),
            deps=list(payload["deps"]),
            deep=deep,
            grammar=str(payload.get("grammar") or ""),
        )
        if not isinstance(entry.expanded, str) \
                or not isinstance(entry.iface, list):
            raise ValueError("malformed module cache entry")
        return entry

    def check_payloads(self, payload: dict) -> None:
        """The skeleton/deep integrity gate (``cache.module.iface``).

        The entry JSON parsed, but the parts a warm hit will *trust
        without re-deriving* — the interface skeletons and the deep
        blob — get their own validation: structural for the skeletons,
        a checksum for the blob.  Raises ``ValueError`` on any
        mismatch so the load ladder quarantines and regenerates."""
        validate_interface(self.iface)
        if self.deep is not None:
            recorded = payload.get("deep_sha")
            if recorded != blob_digest(self.deep):
                raise ValueError("deep artifact fails its checksum")


class ModuleCache:
    """The on-disk store: one entry file per module name."""

    def __init__(self, directory: Optional[str]):
        self.directory = directory
        self.stats = perf.cache_stats("modules.disk")

    def __bool__(self) -> bool:
        return self.directory is not None

    def _path(self, name: str) -> str:
        safe = name.replace(os.sep, ".")
        digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:8]
        return os.path.join(self.directory, f"module-{safe}-{digest}.json")

    def load(self, name: str, key: str) -> Optional[ModuleEntry]:
        """The entry for ``name`` if present and keyed ``key``."""
        if self.directory is None:
            return None
        path = self._path(name)
        try:
            faults.check(faults.SITE_MODULE_CACHE_LOAD)
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            if faults.corrupting(faults.SITE_MODULE_CACHE_LOAD):
                text = text[: len(text) // 2]  # injected truncation
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("module cache payload is not an object")
            if (payload.get("format") != CACHE_FORMAT
                    or payload.get("key") != key):
                # Stale (edited module, old format): a plain miss.
                self.stats.miss()
                return None
            entry = ModuleEntry.from_payload(payload)
        except (FileNotFoundError, faults.InjectedFault):
            self.stats.miss()
            return None
        except Exception:
            # Truncated/garbage entry: quarantine, count, regenerate.
            self._quarantine(path)
            _CORRUPT_TOTAL.inc()
            self.stats.miss()
            return None
        try:
            faults.check(faults.SITE_MODULE_IFACE)
            if faults.corrupting(faults.SITE_MODULE_IFACE):
                # Injected skeleton/deep corruption: clobber exactly
                # the payloads the integrity gate vouches for.
                if entry.deep is not None:
                    entry.deep = entry.deep[: len(entry.deep) // 2]
                entry.iface = [{"truncated": True}]
            entry.check_payloads(payload)
        except faults.InjectedFault:
            self.stats.miss()
            return None
        except Exception:
            # The entry parsed but its skeleton/deep payload cannot be
            # trusted: same quarantine-and-regenerate arm, its own
            # counter.  Never a crash.
            self._quarantine(path)
            _IFACE_CORRUPT_TOTAL.inc()
            self.stats.miss()
            return None
        self.stats.hit()
        return entry

    def store(self, entry: ModuleEntry) -> None:
        if self.directory is None:
            return
        path = self._path(entry.name)
        try:
            os.makedirs(self.directory, exist_ok=True)
            scratch = f"{path}.{os.getpid()}.{_store_tag()}.tmp"
            with open(scratch, "w", encoding="utf-8") as handle:
                # sort_keys: identical builds write byte-identical
                # entry files, whatever thread or process produced
                # them — the jobs=1 vs jobs=N property test diffs the
                # cache directories directly.
                json.dump(entry.payload(), handle, sort_keys=True)
            os.replace(scratch, path)  # atomic: no partial entries
        except OSError:
            pass

    @staticmethod
    def _quarantine(path: str) -> None:
        try:
            os.replace(path, path + ".quarantine")
        except OSError:
            pass


def _store_tag() -> str:
    """Disambiguates scratch files across the scheduler's threads (the
    pid alone stopped being unique once builds went parallel)."""
    import threading

    return str(threading.get_ident())
