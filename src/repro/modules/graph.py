"""The module dependency graph.

A *module* is one ``.maya`` file named by its dotted path relative to a
module-path root: ``<root>/geometry/Shapes.maya`` is the module
``geometry.Shapes``.  A module depends on another when a top-level
single-type ``import`` names it — ``import geometry.Shapes;`` both
brings the module's classes into scope (the ordinary Java meaning the
registry already implements) and, in module mode, makes its exported
Mayans/`syntax` extensions visible to the importing file.

Discovery is deliberately cheap: dependencies are read from the lexed
token stream, not a parse.  The stream lexer collapses every ``{...}``
body into a single BraceTree token, so scanning the *top level* for
``import <dotted name> ;`` sequences is exact — an ``import`` inside a
class body cannot be confused for a declaration.  Cheap discovery is
what makes the dirty-check of an incremental rebuild fast: deciding
*what* to recompile never parses anything.

Failure modes are located diagnostics, all pointing at the ``import``
site (the paper's diagnostics discipline): a module that imports itself
through a chain is an **import cycle**; a single-type import that
matches neither a module file nor a known builtin class is a **missing
module**.
"""

from __future__ import annotations

import hashlib
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.env import MayaError
from repro.lexer import Location, stream_lex

#: Java-ish namespaces that are never module lookups: imports under
#: these resolve against the builtin registry (or fail there), so a
#: missing file is not a missing *module*.
BUILTIN_NAMESPACES = ("java", "javax")

MODULE_SUFFIX = ".maya"


class ModuleImport:
    """One top-level import scanned from a module's token stream."""

    __slots__ = ("parts", "on_demand", "location")

    def __init__(self, parts: Tuple[str, ...], on_demand: bool,
                 location: Location):
        self.parts = parts
        self.on_demand = on_demand
        self.location = location

    @property
    def name(self) -> str:
        return ".".join(self.parts)

    def __repr__(self) -> str:
        suffix = ".*" if self.on_demand else ""
        return f"<import {self.name}{suffix}>"


def scan_imports(source: str, filename: str = "<module>") -> List[ModuleImport]:
    """Top-level ``import`` declarations, from the lexed stream only."""
    imports: List[ModuleImport] = []
    tokens = stream_lex(source, filename)
    index = 0
    while index < len(tokens):
        token = tokens[index]
        if token.kind != "import":
            index += 1
            continue
        location = token.location
        parts: List[str] = []
        on_demand = False
        index += 1
        while index < len(tokens):
            inner = tokens[index]
            if inner.kind == ";":
                break
            if inner.kind == "Identifier":
                parts.append(inner.text)
            elif inner.kind == "*":
                on_demand = True
            elif inner.kind != ".":
                break  # malformed; leave it for the parser to report
            index += 1
        if parts:
            imports.append(ModuleImport(tuple(parts), on_demand, location))
        index += 1
    return imports


class ModuleSources:
    """Where module source text comes from.

    Two providers share this interface: the filesystem module path
    (``mayac --module-path``) and an in-memory mapping (the daemon's
    multi-file compile requests ship every source in the payload).
    """

    def resolve(self, parts: Sequence[str]) -> Optional[str]:
        """Module name for ``parts`` if such a module exists."""
        raise NotImplementedError

    def load(self, name: str) -> Tuple[str, str]:
        """``(source, display_filename)`` for a known module."""
        raise NotImplementedError


class FileSystemSources(ModuleSources):
    """Modules found under one or more module-path directories."""

    def __init__(self, module_path: Sequence[str]):
        self.module_path = [os.path.abspath(p) for p in module_path]

    def _file_for(self, parts: Sequence[str]) -> Optional[Tuple[str, str]]:
        relative = os.path.join(*parts) + MODULE_SUFFIX
        for root in self.module_path:
            candidate = os.path.join(root, relative)
            if os.path.isfile(candidate):
                return candidate, relative
        return None

    def resolve(self, parts: Sequence[str]) -> Optional[str]:
        return ".".join(parts) if self._file_for(parts) else None

    def load(self, name: str) -> Tuple[str, str]:
        found = self._file_for(name.split("."))
        if found is None:
            raise MayaError(f"module {name!r} not found on the module path "
                            f"({os.pathsep.join(self.module_path) or '-'})")
        path, relative = found
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read(), relative.replace(os.sep, "/")

    def module_name_for(self, path: str) -> str:
        """Dotted module name of a root file, adding its directory to
        the module path when it lives outside every configured root (so
        ``mayac --module-path lib app/Main.maya`` just works)."""
        path = os.path.abspath(path)
        for root in self.module_path:
            if path.startswith(root + os.sep):
                relative = os.path.relpath(path, root)
                if relative.endswith(MODULE_SUFFIX):
                    return relative[:-len(MODULE_SUFFIX)] \
                        .replace(os.sep, ".")
        parent = os.path.dirname(path)
        if parent not in self.module_path:
            self.module_path.append(parent)
        base = os.path.basename(path)
        if base.endswith(MODULE_SUFFIX):
            base = base[:-len(MODULE_SUFFIX)]
        return base


class MemorySources(ModuleSources):
    """Modules from an in-memory ``{name: source}`` mapping."""

    def __init__(self, sources: Dict[str, str]):
        self.sources = dict(sources)

    def resolve(self, parts: Sequence[str]) -> Optional[str]:
        name = ".".join(parts)
        return name if name in self.sources else None

    def load(self, name: str) -> Tuple[str, str]:
        if name not in self.sources:
            raise MayaError(f"module {name!r} not in the request's sources")
        display = name.replace(".", "/") + MODULE_SUFFIX
        return self.sources[name], display


class ModuleInfo:
    """One discovered module: source, imports, and resolved deps."""

    __slots__ = ("name", "filename", "source", "imports", "deps",
                 "content_digest", "key")

    def __init__(self, name: str, filename: str, source: str,
                 imports: List[ModuleImport], deps: List[str]):
        self.name = name
        self.filename = filename
        self.source = source
        self.imports = imports
        #: Direct dependencies, in import order (deduplicated).
        self.deps = deps
        self.content_digest = hashlib.sha256(
            source.encode("utf-8")).hexdigest()
        #: Transitive cache key; stamped by the builder (needs every
        #: dep's key, so it is computed in topological order).
        self.key: Optional[str] = None


class ModuleGraph:
    """The dependency DAG of one build, discovered from its roots."""

    def __init__(self, sources: ModuleSources):
        self.sources = sources
        self.modules: Dict[str, ModuleInfo] = {}
        self.roots: List[str] = []
        self._order: Optional[List[str]] = None

    # -- discovery ---------------------------------------------------------

    @classmethod
    def discover(cls, roots: Sequence[str], sources: ModuleSources,
                 registry=None, diag=None) -> "ModuleGraph":
        """BFS the import graph from the root modules.

        ``registry`` (a TypeRegistry) distinguishes a *missing module*
        from an ordinary builtin import: ``import java.util.Vector;``
        resolves against the registry and is no module edge, while
        ``import geometry.Shapes;`` with no ``geometry/Shapes.maya``
        and no registered class is a located error.  ``diag`` (a
        DiagnosticEngine) gets every loaded source registered under its
        display filename, so the located errors render with carets.
        """
        graph = cls(sources)
        pending = list(roots)
        graph.roots = list(roots)
        while pending:
            name = pending.pop(0)
            if name in graph.modules:
                continue
            info = graph._scan_module(name, registry, diag)
            graph.modules[name] = info
            for dep in info.deps:
                if dep not in graph.modules:
                    pending.append(dep)
        graph._check_cycles()
        return graph

    def _scan_module(self, name: str, registry, diag=None) -> ModuleInfo:
        source, filename = self.sources.load(name)
        if diag is not None:
            diag.add_source(filename, source)
        imports = scan_imports(source, filename)
        deps: List[str] = []
        for imp in imports:
            if imp.on_demand:
                continue  # on-demand imports are never module edges
            dep = self.sources.resolve(imp.parts)
            if dep is not None:
                if dep == name:
                    raise MayaError(
                        f"module {name!r} imports itself",
                        location=imp.location)
                if dep not in deps:
                    deps.append(dep)
                continue
            if imp.parts[0] in BUILTIN_NAMESPACES:
                continue
            if registry is not None \
                    and registry.resolve(imp.parts) is not None:
                continue  # a builtin class (e.g. maya.util.Vector)
            raise MayaError(
                f"cannot find module {imp.name!r}: no module file and no "
                f"builtin class by that name", location=imp.location)
        return ModuleInfo(name, filename, source, imports, deps)

    # -- ordering ----------------------------------------------------------

    def _check_cycles(self) -> None:
        """Reject cyclic imports with a diagnostic at the closing edge."""
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done
        stack: List[str] = []

        def visit(name: str) -> None:
            mark = state.get(name)
            if mark == 1:
                return
            if mark == 0:
                cycle = stack[stack.index(name):] + [name]
                importer = self.modules[stack[-1]]
                location = Location.UNKNOWN
                for imp in importer.imports:
                    if ".".join(imp.parts) == name:
                        location = imp.location
                        break
                raise MayaError(
                    "import cycle: " + " -> ".join(cycle),
                    location=location)
            state[name] = 0
            stack.append(name)
            for dep in self.modules[name].deps:
                visit(dep)
            stack.pop()
            state[name] = 1

        for root in self.roots:
            visit(root)

    def order(self) -> List[str]:
        """Deterministic topological order (dependencies first).

        DFS postorder from the roots, deps visited in import order —
        a pure function of the graph, so a clean build and an
        incremental rebuild emit per-module artifacts identically
        ordered (byte-identical combined ``--expand`` output).
        """
        if self._order is not None:
            return self._order
        order: List[str] = []
        seen: set = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            for dep in self.modules[name].deps:
                visit(dep)
            order.append(name)

        for root in self.roots:
            visit(root)
        self._order = order
        return order

    def dependents_of(self, name: str) -> List[str]:
        """Every module downstream of ``name`` (transitive importers)."""
        downstream: set = {name}
        changed = True
        while changed:
            changed = False
            for info in self.modules.values():
                if info.name in downstream:
                    continue
                if any(dep in downstream for dep in info.deps):
                    downstream.add(info.name)
                    changed = True
        downstream.discard(name)
        return sorted(downstream)
