"""Module interfaces: class skeletons that cross the cache boundary.

When a module's cache entry is fresh, its importers still need the
module's classes in the shared type registry — names, supertypes, and
member *signatures*, everything the class shaper and typechecker look
at — but not its method bodies.  This module serializes exactly that
surface to plain JSON-able dicts and restores it with the same two-pass
discipline as ``MayaCompiler._shape`` (define all names first, then
wire supertypes and members, so mutually recursive modules' classes
resolve).

Types are spelled as ``(dotted-name-parts, dims)`` via
``Type.syntax_parts()`` and restored with ``registry.resolve_type`` —
fully qualified on the way out, so restoration needs no import context.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.types import ClassType
from repro.types.types import Type


def _spell(type_: Type) -> list:
    parts, dims = type_.syntax_parts()
    return [list(parts), dims]


def export_interface(classes: Sequence[ClassType]) -> List[dict]:
    """The JSON-able skeletons of one module's compiled classes."""
    out: List[dict] = []
    for klass in classes:
        out.append({
            "name": klass.name,
            "is_interface": klass.is_interface,
            "modifiers": list(klass.modifiers),
            "superclass": klass.superclass.name
            if klass.superclass is not None else None,
            "interfaces": [i.name for i in klass.interfaces],
            "fields": [
                {
                    "name": field.name,
                    "type": _spell(field.type),
                    "modifiers": list(field.modifiers),
                }
                for field in klass.fields.values()
            ],
            "methods": [
                {
                    "name": method.name,
                    "params": [_spell(p) for p in method.param_types],
                    "return": _spell(method.return_type),
                    "modifiers": list(method.modifiers),
                }
                for bucket in klass.methods.values()
                for method in bucket
            ],
            "constructors": [
                {
                    "params": [_spell(p) for p in ctor.param_types],
                    "modifiers": list(ctor.modifiers),
                }
                for ctor in klass.constructors
            ],
        })
    return out


def validate_interface(iface: List[dict]) -> None:
    """Structural gate for skeletons read back from disk.

    ``restore_interface`` trusts its input's shape (it writes straight
    into the shared registry), so the cache's load ladder runs this
    first: a truncated or hand-mangled skeleton list raises
    ``ValueError`` here — and gets quarantined — instead of surfacing
    as a ``KeyError`` halfway through registry mutation.
    """
    if not isinstance(iface, list):
        raise ValueError("interface payload is not a list")
    for payload in iface:
        if not isinstance(payload, dict):
            raise ValueError("interface entry is not an object")
        for field in ("name", "is_interface", "modifiers", "superclass",
                      "interfaces", "fields", "methods", "constructors"):
            if field not in payload:
                raise ValueError(f"interface entry lacks {field!r}")
        for member_list in ("fields", "methods", "constructors"):
            if not isinstance(payload[member_list], list):
                raise ValueError(f"interface {member_list!r} is not a list")


def restore_interface(iface: List[dict], registry) -> List[ClassType]:
    """Re-declare cached skeletons into ``registry`` (two passes)."""
    restored: List[ClassType] = []
    # Pass 1: names exist, so intra-module references resolve.
    for payload in iface:
        klass = ClassType(
            payload["name"],
            is_interface=payload["is_interface"],
            modifiers=tuple(payload["modifiers"]),
        )
        registry.define(klass)
        restored.append(klass)

    def resolve(spelling: list) -> Type:
        parts, dims = spelling
        return registry.resolve_type(tuple(parts), dims)

    # Pass 2: supertypes and member signatures.
    for payload, klass in zip(iface, restored):
        if payload["superclass"] is not None:
            klass.superclass = registry.require(payload["superclass"])
        elif not klass.is_interface:
            klass.superclass = registry.require("java.lang.Object")
        for name in payload["interfaces"]:
            klass.interfaces.append(registry.require(name))
        for field in payload["fields"]:
            klass.declare_field(field["name"], resolve(field["type"]),
                                field["modifiers"])
        for method in payload["methods"]:
            klass.declare_method(
                method["name"],
                [resolve(p) for p in method["params"]],
                resolve(method["return"]),
                method["modifiers"],
            )
        for ctor in payload["constructors"]:
            klass.declare_constructor([resolve(p) for p in ctor["params"]],
                                      ctor["modifiers"])
    return restored
