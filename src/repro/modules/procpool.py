"""A fork-based worker pool: real CPU parallelism for module compiles.

Threads keep the DAG scheduler honest, but under the GIL they cannot
make a CPU-bound clean build faster.  Where ``os.fork`` exists, mayac
builds with processes instead: each worker is a **fork of the already
warmed parent** — grammar, macro/metaprogram namespace, LALR table
cache, and the builder itself all arrive by copy-on-write, so a child
compiles a module exactly the way the parent would have, with no
re-setup protocol and no way to drift from the serial configuration.

The unit of work is one module; the reply is one cache-entry payload
(the same JSON shape the on-disk module cache stores, deep artifact
included).  The parent never shares mutable compiler state with a
child — it *integrates* the returned entries serially in topo order,
through the same code path a warm cache hit takes, which is what makes
``--jobs N`` output byte-identical to ``--jobs 1``: by the time
artifacts are assembled, a fork-compiled module is indistinguishable
from a disk-cached one.

A worker that dies (or returns garbage) fails only its current module;
the scheduler's failure barrier then has the builder replay that
module serially in the parent for the authoritative diagnostic.  Fork
is unavailable (or unsafe) in threaded processes, so the daemon never
uses this pool — it fans out on its own worker threads instead.
"""

from __future__ import annotations

import os
import pickle
import struct
import sys
import threading
from typing import List, Sequence

_HEADER = struct.Struct("!I")
_MAX_FRAME = 512 * 1024 * 1024


def fork_available() -> bool:
    return hasattr(os, "fork") and sys.platform != "win32"


class WorkerGone(Exception):
    """The child died mid-job (crash, kill, unpicklable reply)."""


def _send(fd: int, payload: object) -> None:
    blob = pickle.dumps(payload, protocol=4)
    os.write(fd, _HEADER.pack(len(blob)) + blob)


def _recv(fd: int) -> object:
    header = _read_exact(fd, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME:
        raise WorkerGone(f"oversized frame ({length} bytes)")
    return pickle.loads(_read_exact(fd, length))


def _read_exact(fd: int, count: int) -> bytes:
    chunks: List[bytes] = []
    while count:
        chunk = os.read(fd, count)
        if not chunk:
            raise WorkerGone("pipe closed")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


class _ForkWorker:
    """One forked child plus the parent-side pipe ends."""

    def __init__(self, run_job,
                 siblings: Sequence["_ForkWorker"] = ()) -> None:
        job_read, self._job_write = os.pipe()
        self._reply_read, reply_write = os.pipe()
        self.pid = os.fork()
        if self.pid == 0:
            # Child: serve jobs until EOF, then vanish without running
            # parent atexit/cleanup hooks.
            os.close(self._job_write)
            os.close(self._reply_read)
            # Also drop inherited copies of earlier siblings' parent
            # ends: a leaked write end would keep that sibling's child
            # from ever seeing EOF at shutdown.
            for worker in siblings:
                for fd in (worker._job_write, worker._reply_read):
                    try:
                        os.close(fd)
                    except OSError:
                        pass
            status = 0
            try:
                while True:
                    try:
                        job = _recv(job_read)
                    except WorkerGone:
                        break
                    try:
                        reply = ("ok", run_job(job))
                    except BaseException as error:  # ship, don't die
                        reply = ("error", _describe(error))
                    _send(reply_write, reply)
            except BaseException:
                status = 1
            os._exit(status)
        os.close(job_read)
        os.close(reply_write)
        self.alive = True

    def call(self, job: object) -> object:
        if not self.alive:
            raise WorkerGone("worker already retired")
        try:
            _send(self._job_write, job)
            kind, value = _recv(self._reply_read)
        except (WorkerGone, OSError) as error:
            self.close()
            raise WorkerGone(str(error))
        if kind == "error":
            raise ChildJobError(value)
        return value

    def close(self) -> None:
        if not self.alive:
            return
        self.alive = False
        for fd in (self._job_write, self._reply_read):
            try:
                os.close(fd)
            except OSError:
                pass
        try:
            os.waitpid(self.pid, 0)
        except ChildProcessError:
            pass


class ChildJobError(Exception):
    """A job failed inside the child; message carries the rendering."""


def _describe(error: BaseException) -> str:
    text = str(error) or type(error).__name__
    rendered = getattr(error, "render", None)
    if callable(rendered):
        try:
            text = rendered()
        except Exception:
            pass
    return f"{type(error).__name__}: {text}"


class ForkPool:
    """``jobs`` forked workers behind a thread-safe checkout."""

    def __init__(self, jobs: int, run_job) -> None:
        # Fork strictly before any scheduler thread exists: forking a
        # multithreaded process duplicates held locks.
        self._workers: List[_ForkWorker] = []
        for _ in range(jobs):
            self._workers.append(_ForkWorker(run_job,
                                             siblings=self._workers))
        self._idle: List[_ForkWorker] = list(self._workers)
        self._lock = threading.Lock()
        self._free = threading.Semaphore(jobs)

    def call(self, job: object) -> object:
        self._free.acquire()
        with self._lock:
            worker = self._idle.pop()
        try:
            return worker.call(job)
        finally:
            with self._lock:
                if worker.alive:
                    self._idle.append(worker)
                    self._free.release()
                # A dead worker's slot stays retired; the scheduler is
                # already halting on the failure it caused.

    def close(self) -> None:
        for worker in self._workers:
            worker.close()

    def __enter__(self) -> "ForkPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
