"""The incremental module builder.

``ModuleBuilder.build(roots)`` walks the dependency graph and, per
module, either **recompiles** (cache miss: the module or something
upstream changed) or **reuses** (cache hit: restore the cached class
skeletons into the shared registry and take the cached expanded
artifact verbatim).  With ``jobs > 1`` the walk becomes a DAG
schedule (:mod:`repro.modules.schedule`): modules whose dependencies
have all completed compile concurrently, on threads or — for mayac,
where the GIL would otherwise serialize the CPU work — on a pool of
forked worker processes (:mod:`repro.modules.procpool`).

Three invariants make incremental and parallel output
indistinguishable from a clean serial build — the property the test
layer hammers:

* **Keys are transitive.**  A module's cache key covers its own source,
  the build options, and its direct deps' keys (which recursively cover
  theirs), so an edit invalidates exactly the edited module and its
  transitive importers — never siblings, never upstream.
* **Per-module expansion is deterministic.**  Each recompile starts
  from ``reset_fresh_names()`` (a thread-local counter) and a fresh
  grammar copy built by replaying the same export list in the same
  order, so the same module source always expands to the same bytes —
  on any thread, in any process.
* **Aggregation is serial.**  Artifact order is a pure function of the
  graph, and everything that accumulates module outputs — the
  ``--expand`` concatenation, the report, the program's unit/class
  tables — is assembled in topological order after the schedule
  drains, so the combined output never depends on completion order.

Grammar deltas cross module edges by *export replay*: a module exports
the metaprogram names it ``use``s at top level (plus its deps' exports,
transitively), and a recompiling importer replays those names onto its
own grammar copy before parsing — the versioned-grammar machinery then
fingerprints each module's effective grammar for the LALR table cache
(that fingerprint token is persisted in the cache entry).  A replay
that breaks the grammar (two imports exporting conflicting Mayans) is
reported *at the import site*, like every module-graph failure mode.

**Warm hits are deep.**  A format-2 cache entry carries a pickled
stripped copy of the module's checked AST next to the expanded text
(:mod:`repro.modules.snapshot`); materializing a hit for ``--run``
restores that tree and re-runs only shaping + checking, skipping
lexing and parsing outright.  Every deep-path surprise — no blob,
stale format, unpickle failure, a check error against restored deps —
falls back to compiling the expanded text, which PR 8 proved
byte-equivalent.

**Failure semantics under parallelism.**  Tasks run against scratch
diagnostic engines; the first failure halts dispatch, and the builder
replays the topo-earliest failed module serially on the real engine —
the error a ``--jobs 1`` build would render, minus any sibling noise.
The one observable difference from serial: modules *independent* of
the failed one may already have compiled (and cached) before the halt,
like any ``make -j``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from repro import perf
from repro.ast import nodes as n
from repro.ast import to_source
from repro.core.compiler import CompiledClass, MayaCompiler
from repro.core.env import CompileEnv, MayaError
from repro.diag import DiagnosticEngine, DiagnosticError
from repro.hygiene.fresh import reset_fresh_names
from repro.lalr import ConflictError
from repro.lexer import Location
from repro.obs import log as obs_log
from repro.obs.metrics import REGISTRY
from repro.modules.cache import (ModuleCache, ModuleEntry, grammar_token,
                                 module_key, options_signature)
from repro.modules.graph import ModuleGraph, ModuleInfo, ModuleSources
from repro.modules.iface import export_interface, restore_interface
from repro.modules.schedule import DagScheduler, resolve_jobs
from repro.modules.snapshot import SnapshotError, load_unit, snapshot_unit

_COMPILED_TOTAL = REGISTRY.counter(
    "maya_modules_compiled_total",
    "Modules fully (re)compiled by the module builder.")
_REUSED_TOTAL = REGISTRY.counter(
    "maya_modules_reused_total",
    "Modules reused from the incremental cache without recompiling.")
_DEEP_RESTORED_TOTAL = REGISTRY.counter(
    "maya_modules_deep_restored_total",
    "Warm module materializations served from the deep (checked-AST) "
    "artifact — no lexing, no parsing.")
_DEEP_FALLBACK_TOTAL = REGISTRY.counter(
    "maya_modules_deep_fallback_total",
    "Warm materializations that fell back to compiling the expanded "
    "source (no deep artifact, or one that failed to restore).")


def format_module_report(order: Sequence[str],
                         recompiled: Sequence[str]) -> str:
    """The ``--module-report`` text — one formatting function shared
    by the CLI, the daemon client, and :meth:`BuildResult.report`, so
    the jobs=1-vs-jobs=N property test pins the exact bytes users see.
    """
    recompiled_set = set(recompiled)
    lines = [f"mayac: modules: {len(order)} total, "
             f"{len(recompiled_set)} recompiled, "
             f"{len(order) - len(recompiled_set)} reused"]
    for name in order:
        word = "recompiled" if name in recompiled_set else "reused"
        lines.append(f"  {word:10} {name}")
    return "\n".join(lines)


class ModuleBuild:
    """One module's outcome within a build."""

    __slots__ = ("name", "key", "expanded", "reused", "exports", "classes",
                 "unit", "entry")

    def __init__(self, name: str, key: str, expanded: str, reused: bool,
                 exports: List[str], classes: List[CompiledClass],
                 unit=None, entry: Optional[ModuleEntry] = None):
        self.name = name
        self.key = key
        self.expanded = expanded
        self.reused = reused
        self.exports = exports
        self.classes = classes
        #: The module's compilation unit when one was materialized
        #: this build (recompile, or a warm hit with ``need_bodies``);
        #: the parallel integrator re-orders the program's unit list
        #: from these.
        self.unit = unit
        #: The cache entry this build produced or replayed (builder
        #: internal: the fork pool ships these between processes).
        self.entry = entry


class BuildResult:
    """Everything one ``build()`` produced."""

    def __init__(self, env: CompileEnv, graph: ModuleGraph,
                 builds: Dict[str, ModuleBuild], program):
        self.env = env
        self.graph = graph
        self.builds = builds
        self.program = program
        self.order = graph.order()
        self.recompiled = [m for m in self.order if not builds[m].reused]
        self.reused = [m for m in self.order if builds[m].reused]

    def expanded(self) -> str:
        """The program's combined expanded source, modules in
        topological order — byte-identical across clean, incremental,
        and parallel builds of the same sources."""
        chunks = []
        for name in self.order:
            build = self.builds[name]
            chunks.append(f"// module {name}\n{build.expanded}")
        return "\n\n".join(chunks)

    def report(self) -> str:
        """The ``--module-report`` text — a deterministic function of
        the graph and the recompiled set, so ``--jobs N`` output is
        byte-identical to serial."""
        return format_module_report(self.order, self.recompiled)


class ModuleBuilder:
    """Builds multi-module programs with incremental recompilation."""

    def __init__(self, sources: ModuleSources,
                 cache_dir: Optional[str] = None,
                 options: Optional[dict] = None,
                 env: Optional[CompileEnv] = None,
                 jobs: Optional[int] = None,
                 mode: str = "thread",
                 task_spawn=None,
                 deep_restore: bool = True):
        self.sources = sources
        self.cache = ModuleCache(cache_dir)
        self.options = dict(options or {})
        self.env = env if env is not None else CompileEnv()
        self.compiler = MayaCompiler(self.env)
        self.provenance = bool(self.options.get("provenance"))
        self._options_sig = options_signature(self.options)
        #: Worker count for the DAG schedule (1 = the serial walk).
        self.jobs = resolve_jobs(jobs) if jobs is not None else 1
        #: ``thread`` or ``fork`` — how parallel tasks execute.  Fork
        #: needs a single-threaded process at build start (mayac);
        #: the daemon always uses threads on its own worker pool.
        self.mode = mode
        #: Optional external-pool enqueue for helper drains (the
        #: daemon passes its request queue's submit here).
        self.task_spawn = task_spawn
        #: False forces warm materializations down the expanded-text
        #: path even when a deep artifact exists — the control arm of
        #: the warm-restore benchmark, and an escape hatch.
        self.deep_restore = deep_restore
        # Serializes materialization fallbacks that must not interleave
        # with sibling tasks' fresh-name streams.
        self._fresh_lock = threading.Lock()

    # -- the build loop ----------------------------------------------------

    def build(self, roots: Sequence[str],
              need_bodies: bool = False) -> BuildResult:
        """Build ``roots`` and everything they import.

        ``need_bodies`` materializes cache-hit modules (deep-restoring
        their checked ASTs when the entry carries one) so the program
        is runnable; compile-only/``--expand`` builds skip that and
        load just the class skeletons — the cheap path the incremental
        speedup comes from.
        """
        graph = ModuleGraph.discover(roots, self.sources,
                                     registry=self.env.registry,
                                     diag=self.env.diag)
        order = graph.order()
        for name in order:
            info = graph.modules[name]
            dep_keys = [(dep, graph.modules[dep].key) for dep in info.deps]
            info.key = module_key(name, info.source, self._options_sig,
                                  dep_keys)
        jobs = min(self.jobs, len(order))
        if jobs > 1:
            builds = self._build_parallel(graph, order, need_bodies, jobs)
        else:
            builds = self._build_serial(graph, order, need_bodies)
        result = BuildResult(self.env, graph, builds, self.compiler.program)
        obs_log.emit("modules.build.done",
                     modules=len(result.order),
                     recompiled=len(result.recompiled),
                     reused=len(result.reused),
                     jobs=jobs)
        return result

    def _build_serial(self, graph: ModuleGraph, order: Sequence[str],
                      need_bodies: bool) -> Dict[str, ModuleBuild]:
        builds: Dict[str, ModuleBuild] = {}
        for name in order:
            info = graph.modules[name]
            entry = self.cache.load(name, info.key) if self.cache else None
            if entry is not None:
                builds[name] = self._reuse(info, entry, builds, need_bodies)
            else:
                builds[name] = self._recompile(info, builds)
        return builds

    # -- the parallel build ------------------------------------------------

    def _build_parallel(self, graph: ModuleGraph, order: Sequence[str],
                        need_bodies: bool,
                        jobs: int) -> Dict[str, ModuleBuild]:
        """Schedule one task per module over the import DAG.

        Thread mode: tasks run the ordinary reuse/recompile paths
        against the shared program (scratch diagnostics), exactly as
        the serial walk would, just concurrently where the DAG allows.
        Fork mode: cache misses compile in worker processes and come
        back as cache-entry payloads; the parent integrates every
        module through the warm-hit path afterwards.  Either way the
        serial integration pass below re-asserts topological order for
        everything order-sensitive and replays the topo-earliest
        failure (if any) on the real diagnostic engine.
        """
        entries: Dict[str, Optional[ModuleEntry]] = {}
        with perf.phase("module-cache-probe"):
            for name in order:
                info = graph.modules[name]
                entries[name] = self.cache.load(name, info.key) \
                    if self.cache else None

        builds: Dict[str, ModuleBuild] = {}
        use_fork = self.mode == "fork" and self.task_spawn is None
        if use_fork:
            from repro.modules import procpool

            use_fork = procpool.fork_available()
        fork_built: set = set()
        with perf.phase("module-schedule"):
            if use_fork:
                fork_built = self._schedule_forked(graph, order, entries,
                                                   jobs)
            else:
                self._schedule_threaded(graph, order, entries, builds,
                                        need_bodies, jobs)

        # Serial integration: topo order, real diagnostics.  Thread
        # tasks already produced their ModuleBuild; anything missing
        # (fork results, failed or skipped tasks) goes through the
        # ordinary serial paths here — a failed task's replay raises
        # the same error a --jobs 1 build would.  A fork-compiled
        # module integrates like a warm hit (its entry is in hand) but
        # reports and counts as a recompile: work happened this build.
        for name in order:
            if name in builds:
                continue
            info = graph.modules[name]
            entry = entries[name]
            if entry is not None:
                builds[name] = self._reuse(info, entry, builds, need_bodies,
                                           recompiled=name in fork_built)
            else:
                builds[name] = self._recompile(info, builds)
        self._canonicalize(order, builds)
        return builds

    def _schedule_threaded(self, graph: ModuleGraph, order: Sequence[str],
                           entries: Dict[str, Optional[ModuleEntry]],
                           builds: Dict[str, ModuleBuild],
                           need_bodies: bool, jobs: int) -> None:
        def run_one(name: str):
            info = graph.modules[name]
            entry = entries[name]
            if entry is not None:
                build = self._reuse(info, entry, builds, need_bodies,
                                    scratch=True)
            else:
                build = self._recompile(info, builds, scratch=True)
            builds[name] = build
            return build

        scheduler = DagScheduler(
            order, {name: graph.modules[name].deps for name in order},
            run_one)
        scheduler.run_threaded(jobs, spawn=self.task_spawn)
        # Failed tasks may have left a half-built ModuleBuild out of
        # ``builds`` (they raised first) — the integration loop replays
        # them serially; nothing to do here.

    def _schedule_forked(self, graph: ModuleGraph, order: Sequence[str],
                         entries: Dict[str, Optional[ModuleEntry]],
                         jobs: int) -> set:
        """Compile cache misses in forked workers; fill ``entries``.

        Returns the names compiled in workers (the integration pass
        accounts them as recompiles, not cache hits)."""
        from repro.modules import procpool

        child_builds: Dict[str, ModuleBuild] = {}

        def run_job(job: dict) -> dict:
            # Executes in the forked child: restore shipped dep
            # surfaces this child hasn't seen, then compile exactly as
            # the serial walk would.
            name = job["name"]
            for dep_name, dep_exports, dep_iface in job["deps"]:
                if dep_name not in child_builds:
                    restore_interface(dep_iface, self.env.registry)
                    child_builds[dep_name] = ModuleBuild(
                        dep_name, "", "", True, list(dep_exports), [])
            build = self._recompile(graph.modules[name], child_builds)
            child_builds[name] = build
            return build.entry.payload()

        pool = procpool.ForkPool(jobs, run_job)
        lock = threading.Lock()
        fork_built: set = set()

        def run_one(name: str):
            if entries[name] is not None:
                return entries[name]
            deps = [(dep, entries[dep].exports, entries[dep].iface)
                    for dep in graph.modules[name].deps]
            payload = pool.call({"name": name, "deps": deps})
            entry = ModuleEntry.from_payload(payload)
            self.cache.store(entry)
            with lock:
                entries[name] = entry
                fork_built.add(name)
            return entry

        try:
            scheduler = DagScheduler(
                order, {name: graph.modules[name].deps for name in order},
                run_one)
            scheduler.run_threaded(jobs)
        finally:
            pool.close()
        return fork_built

    def _canonicalize(self, order: Sequence[str],
                      builds: Dict[str, ModuleBuild]) -> None:
        """Re-assert topological order on the shared program's unit
        and class tables after a parallel build, so ``program.source``
        and class iteration never depend on completion order."""
        program = self.compiler.program
        built_units = [b.unit for b in builds.values() if b.unit is not None]
        if built_units:
            foreign = [u for u in program.units if u not in built_units]
            program.units[:] = foreign + [
                builds[name].unit for name in order
                if builds[name].unit is not None]
        module_classes = {}
        for name in order:
            for compiled in builds[name].classes:
                module_classes[compiled.type.name] = compiled
        if module_classes:
            foreign = {qualified: compiled
                       for qualified, compiled in program.classes.items()
                       if qualified not in module_classes}
            program.classes.clear()
            program.classes.update(foreign)
            program.classes.update(module_classes)

    # -- cache hit ---------------------------------------------------------

    def _reuse(self, info: ModuleInfo, entry: ModuleEntry,
               builds: Dict[str, ModuleBuild],
               need_bodies: bool, scratch: bool = False,
               recompiled: bool = False) -> ModuleBuild:
        unit = None
        classes: List[CompiledClass] = []
        if need_bodies:
            module_env = self._module_env(info, scratch=scratch)
            unit, classes = self._materialize(info, entry, module_env)
        else:
            restore_interface(entry.iface, self.env.registry)
        if recompiled:
            _COMPILED_TOTAL.inc()
        else:
            _REUSED_TOTAL.inc()
        obs_log.emit("modules.module.reused", level="debug",
                     module=info.name, materialized=need_bodies)
        return ModuleBuild(info.name, info.key, entry.expanded,
                           not recompiled, list(entry.exports), classes,
                           unit=unit, entry=entry)

    def _materialize(self, info: ModuleInfo, entry: ModuleEntry,
                     module_env: CompileEnv):
        """Forced-body materialization of a warm hit.

        Deep path first: restore the pickled checked AST and re-run
        shape + check only.  Any surprise — a declined snapshot, a
        stale blob, a check error against the restored surroundings —
        falls back to compiling the cached expanded source, the
        byte-equivalent PR 8 path.
        """
        filename = f"{info.filename}#expanded"
        if entry.deep is not None and self.deep_restore:
            try:
                unit = load_unit(entry.deep)
                compiled = self.compiler.compile_checked_unit(
                    unit, filename, module_env, source=entry.expanded)
                _DEEP_RESTORED_TOTAL.inc()
                return unit, compiled
            except (SnapshotError, DiagnosticError):
                pass  # fall through to the text path
        _DEEP_FALLBACK_TOTAL.inc()
        # The cached artifact is plain Java (every Mayan already
        # expanded), so compiling it skips the expensive phase but
        # yields real method bodies.  Fresh names restart so the
        # re-materialized unit matches the cached bytes.
        sink: List = []
        with self._fresh_lock:
            reset_fresh_names()
            self.compiler.compile_unit(entry.expanded, filename,
                                       module_env, unit_sink=sink)
        unit = sink[-1] if sink else None
        return unit, self._classes_of(unit, module_env)

    # -- cache miss --------------------------------------------------------

    def _recompile(self, info: ModuleInfo,
                   builds: Dict[str, ModuleBuild],
                   scratch: bool = False) -> ModuleBuild:
        obs_log.emit("modules.module.recompiled", level="debug",
                     module=info.name, deps=len(info.deps))
        module_env = self._module_env(info, scratch=scratch)
        self._replay_exports(info, builds, module_env)
        reset_fresh_names()
        sink: List = []
        self.compiler.compile_unit(info.source, info.filename,
                                   module_env, unit_sink=sink)
        unit = sink[-1]
        expanded = to_source(unit, provenance=self.provenance)
        classes = self._classes_of(unit, module_env)

        exports: List[str] = []
        for dep in info.deps:
            for export in builds[dep].exports:
                if export not in exports:
                    exports.append(export)
        for decl in unit.types:
            if isinstance(decl, n.UseDecl):
                use_name = ".".join(decl.parts)
                if use_name not in exports:
                    exports.append(use_name)

        entry = ModuleEntry(
            info.name, info.key, expanded,
            export_interface([c.type for c in classes]),
            exports, list(info.deps),
            deep=snapshot_unit(unit),
            grammar=grammar_token(module_env.grammar))
        _COMPILED_TOTAL.inc()
        self.cache.store(entry)
        return ModuleBuild(info.name, info.key, expanded, False,
                           exports, classes, unit=unit, entry=entry)

    def _classes_of(self, unit, module_env: CompileEnv
                    ) -> List[CompiledClass]:
        """This unit's compiled classes, by declaration — never by
        diffing the shared program table, which other tasks mutate."""
        if unit is None:
            return []
        package = module_env.package
        classes: List[CompiledClass] = []
        for decl in unit.types:
            if not isinstance(decl, (n.ClassDecl, n.InterfaceDecl)):
                continue
            qualified = decl.name.name if not package \
                else f"{package}.{decl.name.name}"
            compiled = self.compiler.program.classes.get(qualified)
            if compiled is not None:
                classes.append(compiled)
        return classes

    # -- per-module environments -------------------------------------------

    def _module_env(self, info: ModuleInfo,
                    scratch: bool = False) -> CompileEnv:
        """A child env with its own grammar copy and import list.

        Grammar deltas a module's ``use``s (or replayed dep exports)
        apply must not leak into sibling modules; ``Grammar.copy``
        shares interned Production objects, so identity-keyed dispatch
        plans still hit across modules.

        ``scratch`` swaps in a throwaway diagnostic engine (same
        budgets and deadline as the real one): parallel tasks report
        through it so a failing sibling can't contaminate the
        authoritative serial replay's error stream.
        """
        module_env = self.env.child()
        module_env.grammar = self.env.grammar.copy(f"module:{info.name}")
        module_env.imports = []
        module_env.package = info.name.rsplit(".", 1)[0] \
            if "." in info.name else ""
        if scratch:
            real = self.env.diag
            engine = DiagnosticEngine(
                max_errors=real.max_errors,
                max_expansion_depth=real.max_expansion_depth,
                max_mayan_reentry=real.max_mayan_reentry)
            engine.deadline = real.deadline
            engine.sources.update(real.sources)
            module_env.diag = engine
        return module_env

    def _replay_exports(self, info: ModuleInfo,
                        builds: Dict[str, ModuleBuild],
                        module_env: CompileEnv) -> None:
        """Apply each dependency's exported grammar delta, blaming the
        import site when a replay breaks the grammar."""
        replayed: set = set()
        for dep in info.deps:
            exports = [e for e in builds[dep].exports if e not in replayed]
            if not exports:
                continue
            try:
                for export in exports:
                    module_env.find_metaprogram(export.split(".")) \
                        .run(module_env)
                    replayed.add(export)
                # Build tables eagerly: a conflicting delta surfaces
                # here, at this import, not at first use downstream.
                module_env.tables()
            except (ConflictError, DiagnosticError) as error:
                raise MayaError(
                    f"importing module {dep!r} breaks the grammar: "
                    f"its exported syntax extensions conflict "
                    f"({error})",
                    location=self._import_location(info, dep))

    @staticmethod
    def _import_location(info: ModuleInfo, dep: str) -> Location:
        for imp in info.imports:
            if imp.name == dep:
                return imp.location
        return Location.UNKNOWN
