"""The incremental module builder.

``ModuleBuilder.build(roots)`` walks the dependency graph in
topological order and, per module, either **recompiles** (cache miss:
the module or something upstream changed) or **reuses** (cache hit:
restore the cached class skeletons into the shared registry and take
the cached expanded artifact verbatim).

Three invariants make incremental output indistinguishable from a
clean build — the property the test layer hammers:

* **Keys are transitive.**  A module's cache key covers its own source,
  the build options, and its direct deps' keys (which recursively cover
  theirs), so an edit invalidates exactly the edited module and its
  transitive importers — never siblings, never upstream.
* **Per-module expansion is deterministic.**  Each recompile starts
  from ``reset_fresh_names()`` and a fresh grammar copy built by
  replaying the same export list in the same order, so the same module
  source always expands to the same bytes.
* **Topological artifact order is a pure function of the graph**, so
  the combined ``--expand`` output concatenates identically whether a
  module was rebuilt or replayed from disk.

Grammar deltas cross module edges by *export replay*: a module exports
the metaprogram names it ``use``s at top level (plus its deps' exports,
transitively), and a recompiling importer replays those names onto its
own grammar copy before parsing — the versioned-grammar machinery then
fingerprints each module's effective grammar for the LALR table cache.
A replay that breaks the grammar (two imports exporting conflicting
Mayans) is reported *at the import site*, like every module-graph
failure mode.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.ast import nodes as n
from repro.ast import to_source
from repro.core.compiler import CompiledClass, MayaCompiler
from repro.core.env import CompileEnv, MayaError
from repro.diag import DiagnosticError
from repro.hygiene.fresh import reset_fresh_names
from repro.lalr import ConflictError
from repro.lexer import Location
from repro.obs import log as obs_log
from repro.obs.metrics import REGISTRY
from repro.modules.cache import (ModuleCache, ModuleEntry, module_key,
                                 options_signature)
from repro.modules.graph import ModuleGraph, ModuleInfo, ModuleSources
from repro.modules.iface import export_interface, restore_interface

_COMPILED_TOTAL = REGISTRY.counter(
    "maya_modules_compiled_total",
    "Modules fully (re)compiled by the module builder.")
_REUSED_TOTAL = REGISTRY.counter(
    "maya_modules_reused_total",
    "Modules reused from the incremental cache without recompiling.")


class ModuleBuild:
    """One module's outcome within a build."""

    __slots__ = ("name", "key", "expanded", "reused", "exports", "classes")

    def __init__(self, name: str, key: str, expanded: str, reused: bool,
                 exports: List[str], classes: List[CompiledClass]):
        self.name = name
        self.key = key
        self.expanded = expanded
        self.reused = reused
        self.exports = exports
        self.classes = classes


class BuildResult:
    """Everything one ``build()`` produced."""

    def __init__(self, env: CompileEnv, graph: ModuleGraph,
                 builds: Dict[str, ModuleBuild], program):
        self.env = env
        self.graph = graph
        self.builds = builds
        self.program = program
        self.order = graph.order()
        self.recompiled = [m for m in self.order if not builds[m].reused]
        self.reused = [m for m in self.order if builds[m].reused]

    def expanded(self) -> str:
        """The program's combined expanded source, modules in
        topological order — byte-identical across clean and
        incremental builds of the same sources."""
        chunks = []
        for name in self.order:
            build = self.builds[name]
            chunks.append(f"// module {name}\n{build.expanded}")
        return "\n\n".join(chunks)


class ModuleBuilder:
    """Builds multi-module programs with incremental recompilation."""

    def __init__(self, sources: ModuleSources,
                 cache_dir: Optional[str] = None,
                 options: Optional[dict] = None,
                 env: Optional[CompileEnv] = None):
        self.sources = sources
        self.cache = ModuleCache(cache_dir)
        self.options = dict(options or {})
        self.env = env if env is not None else CompileEnv()
        self.compiler = MayaCompiler(self.env)
        self.provenance = bool(self.options.get("provenance"))
        self._options_sig = options_signature(self.options)

    # -- the build loop ----------------------------------------------------

    def build(self, roots: Sequence[str],
              need_bodies: bool = False) -> BuildResult:
        """Build ``roots`` and everything they import.

        ``need_bodies`` materializes cache-hit modules by compiling
        their cached expanded (plain-Java) source, so the program is
        runnable; compile-only/``--expand`` builds skip that and load
        just the class skeletons — the cheap path the incremental
        speedup comes from.
        """
        graph = ModuleGraph.discover(roots, self.sources,
                                     registry=self.env.registry,
                                     diag=self.env.diag)
        builds: Dict[str, ModuleBuild] = {}
        for name in graph.order():
            info = graph.modules[name]
            dep_keys = [(dep, builds[dep].key) for dep in info.deps]
            info.key = module_key(name, info.source, self._options_sig,
                                  dep_keys)
            entry = self.cache.load(name, info.key) if self.cache else None
            if entry is not None:
                builds[name] = self._reuse(info, entry, builds, need_bodies)
            else:
                builds[name] = self._recompile(info, builds)
        result = BuildResult(self.env, graph, builds, self.compiler.program)
        obs_log.emit("modules.build.done",
                     modules=len(result.order),
                     recompiled=len(result.recompiled),
                     reused=len(result.reused))
        return result

    # -- cache hit ---------------------------------------------------------

    def _reuse(self, info: ModuleInfo, entry: ModuleEntry,
               builds: Dict[str, ModuleBuild],
               need_bodies: bool) -> ModuleBuild:
        _REUSED_TOTAL.inc()
        obs_log.emit("modules.module.reused", level="debug",
                     module=info.name, materialized=need_bodies)
        if need_bodies:
            # The cached artifact is plain Java (every Mayan already
            # expanded), so compiling it skips the expensive phase but
            # yields real method bodies.  Fresh names restart so the
            # re-materialized unit matches the cached bytes.
            module_env = self._module_env(info)
            reset_fresh_names()
            before = set(self.compiler.program.classes)
            self.compiler.compile_unit(entry.expanded,
                                       f"{info.filename}#expanded",
                                       module_env)
            classes = [c for qualified, c
                       in self.compiler.program.classes.items()
                       if qualified not in before]
        else:
            restore_interface(entry.iface, self.env.registry)
            classes = []
        return ModuleBuild(info.name, info.key, entry.expanded, True,
                           list(entry.exports), classes)

    # -- cache miss --------------------------------------------------------

    def _recompile(self, info: ModuleInfo,
                   builds: Dict[str, ModuleBuild]) -> ModuleBuild:
        _COMPILED_TOTAL.inc()
        obs_log.emit("modules.module.recompiled", level="debug",
                     module=info.name, deps=len(info.deps))
        module_env = self._module_env(info)
        self._replay_exports(info, builds, module_env)
        reset_fresh_names()
        before = set(self.compiler.program.classes)
        program = self.compiler.compile_unit(info.source, info.filename,
                                             module_env)
        unit = program.units[-1]
        expanded = to_source(unit, provenance=self.provenance)
        classes = [c for qualified, c in program.classes.items()
                   if qualified not in before]

        exports: List[str] = []
        for dep in info.deps:
            for export in builds[dep].exports:
                if export not in exports:
                    exports.append(export)
        for decl in unit.types:
            if isinstance(decl, n.UseDecl):
                use_name = ".".join(decl.parts)
                if use_name not in exports:
                    exports.append(use_name)

        build = ModuleBuild(info.name, info.key, expanded, False,
                            exports, classes)
        self.cache.store(ModuleEntry(
            info.name, info.key, expanded,
            export_interface([c.type for c in classes]),
            exports, list(info.deps)))
        return build

    # -- per-module environments -------------------------------------------

    def _module_env(self, info: ModuleInfo) -> CompileEnv:
        """A child env with its own grammar copy and import list.

        Grammar deltas a module's ``use``s (or replayed dep exports)
        apply must not leak into sibling modules; ``Grammar.copy``
        shares interned Production objects, so identity-keyed dispatch
        plans still hit across modules.
        """
        module_env = self.env.child()
        module_env.grammar = self.env.grammar.copy(f"module:{info.name}")
        module_env.imports = []
        module_env.package = info.name.rsplit(".", 1)[0] \
            if "." in info.name else ""
        return module_env

    def _replay_exports(self, info: ModuleInfo,
                        builds: Dict[str, ModuleBuild],
                        module_env: CompileEnv) -> None:
        """Apply each dependency's exported grammar delta, blaming the
        import site when a replay breaks the grammar."""
        replayed: set = set()
        for dep in info.deps:
            exports = [e for e in builds[dep].exports if e not in replayed]
            if not exports:
                continue
            try:
                for export in exports:
                    module_env.find_metaprogram(export.split(".")) \
                        .run(module_env)
                    replayed.add(export)
                # Build tables eagerly: a conflicting delta surfaces
                # here, at this import, not at first use downstream.
                module_env.tables()
            except (ConflictError, DiagnosticError) as error:
                raise MayaError(
                    f"importing module {dep!r} breaks the grammar: "
                    f"its exported syntax extensions conflict "
                    f"({error})",
                    location=self._import_location(info, dep))

    @staticmethod
    def _import_location(info: ModuleInfo, dep: str) -> Location:
        for imp in info.imports:
            if imp.name == dep:
                return imp.location
        return Location.UNKNOWN
