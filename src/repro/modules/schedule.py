"""The DAG scheduler: parallel module builds with serial semantics.

``DagScheduler`` replaces the builder's serial topo walk for
``--jobs N > 1``: every module is one *task*, a task becomes **ready**
when all of its direct dependencies have completed, and ready tasks run
concurrently on a bounded pool of drain loops.  Determinism is not a
property of the schedule — completion order is whatever the OS gives
us — but of what the tasks are allowed to observe:

* a task only starts after its deps *finished publishing* (classes in
  the registry, exports recorded), so every compile sees exactly the
  dependency state a serial build would have shown it;
* per-module outputs (expanded bytes, exports, cache entries) are pure
  functions of (source, options, dep exports) — fresh-name counters
  are thread-local and reset per module, grammar copies are
  per-module;
* everything order-sensitive that *aggregates* those outputs (the
  ``--module-report``, the concatenated ``--expand`` artifact, the
  program's unit/class tables) is (re)assembled serially in topo
  order after the pool drains.

**Failure barrier.**  The first task error stops dispatch (in-flight
tasks finish, nothing new starts).  The builder then replays the
topo-earliest failed module *serially on the real diagnostic engine*,
so the rendered error — message, carets, notes, exit — is the one a
``--jobs 1`` build of the same sources produces.  Parallel tasks run
against scratch engines precisely so a doomed sibling can't leak
half-formed diagnostics into that authoritative replay.

**Pools.**  Two drain-loop substrates share this scheduler:

* ``run_threaded`` — N-1 helper threads plus the calling thread
  (mayac in-process, and the daemon, whose helpers are enqueued onto
  its existing worker pool via a ``spawn`` callable; a full daemon
  queue just means fewer helpers — the owner always drains, so
  fan-out can never deadlock admission);
* the fork pool in :mod:`repro.modules.procpool` — real processes for
  CPU parallelism under the GIL; scheduler tasks become job
  dispatches and the drain loops block on pipes.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import REGISTRY

PARALLELISM = REGISTRY.histogram(
    "maya_modules_parallelism",
    "Module-build tasks in flight, sampled at each task start "
    "(1.0 everywhere means the DAG or the pool serialized the build).")
TASK_WAIT_MS = REGISTRY.histogram(
    "maya_modules_task_wait_ms",
    "Per-module wait between becoming ready (deps done) and starting "
    "to compile — scheduler/pool queueing, not compile time.")
TASK_RUN_MS = REGISTRY.histogram(
    "maya_modules_task_run_ms",
    "Per-module task run time under the DAG scheduler.")


def resolve_jobs(value=None) -> int:
    """The effective ``--jobs`` count.

    Precedence: explicit value, then ``MAYA_JOBS``, then 1 (serial —
    parallelism is opt-in; the daemon opts its requests in itself).
    ``0`` or ``"auto"`` mean one job per CPU.
    """
    if value is None:
        value = os.environ.get("MAYA_JOBS") or 1
    if isinstance(value, str):
        if value.strip().lower() == "auto":
            value = 0
        else:
            try:
                value = int(value)
            except ValueError:
                raise ValueError(f"bad jobs value {value!r} "
                                 f"(want an integer or 'auto')")
    if value == 0:
        value = os.cpu_count() or 1
    return max(1, int(value))


class Task:
    """One module's slot in the schedule."""

    __slots__ = ("name", "index", "waiting", "dependents", "state",
                 "result", "error", "ready_at")

    PENDING, READY, RUNNING, DONE, FAILED, SKIPPED = range(6)

    def __init__(self, name: str, index: int):
        self.name = name
        self.index = index          # topo position: the dispatch tiebreak
        self.waiting = 0            # incomplete direct deps
        self.dependents: List[Task] = []
        self.state = Task.PENDING
        self.result = None
        self.error: Optional[BaseException] = None
        self.ready_at = 0.0


class DagScheduler:
    """Runs one task per module, deps-before-dependents, bounded."""

    def __init__(self, order: Sequence[str],
                 deps: Dict[str, Sequence[str]],
                 run: Callable[[str], object]):
        self._run = run
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self.tasks: Dict[str, Task] = {
            name: Task(name, index) for index, name in enumerate(order)
        }
        for name in order:
            task = self.tasks[name]
            for dep in deps[name]:
                dep_task = self.tasks[dep]
                if dep_task.state != Task.DONE:
                    task.waiting += 1
                    dep_task.dependents.append(task)
        now = time.perf_counter()
        for task in self.tasks.values():
            if task.waiting == 0:
                task.state = Task.READY
                task.ready_at = now
        self._ready: List[Task] = sorted(
            (t for t in self.tasks.values() if t.state == Task.READY),
            key=lambda t: t.index)
        self._unfinished = len(self.tasks)
        self._running = 0
        self._halted = False

    # -- the drain loop (every pool thread runs this) ----------------------

    def drain(self) -> None:
        """Claim and run ready tasks until no more work will appear."""
        while True:
            with self._lock:
                task = self._claim_locked()
                if task is None:
                    return
                self._running += 1
                running = self._running
            PARALLELISM.observe(float(running))
            started = time.perf_counter()
            TASK_WAIT_MS.observe((started - task.ready_at) * 1000.0)
            error: Optional[BaseException] = None
            result = None
            try:
                result = self._run(task.name)
            except BaseException as caught:  # contained: replayed serially
                error = caught
            TASK_RUN_MS.observe((time.perf_counter() - started) * 1000.0)
            with self._lock:
                self._running -= 1
                self._finish_locked(task, result, error)

    def _claim_locked(self) -> Optional[Task]:
        while True:
            if self._unfinished == 0:
                self._wake.notify_all()
                return None
            if self._ready and not self._halted:
                task = self._ready.pop(0)
                task.state = Task.RUNNING
                return task
            if self._running == 0:
                # Nothing running, nothing ready: the remaining tasks
                # are downstream of a failure (or dispatch halted).
                self._skip_stranded_locked()
                self._wake.notify_all()
                return None
            self._wake.wait()

    def _finish_locked(self, task: Task, result, error) -> None:
        if error is None:
            task.state = Task.DONE
            task.result = result
            now = time.perf_counter()
            for dependent in task.dependents:
                dependent.waiting -= 1
                if dependent.waiting == 0 \
                        and dependent.state == Task.PENDING:
                    dependent.state = Task.READY
                    dependent.ready_at = now
                    self._insort(dependent)
        else:
            task.state = Task.FAILED
            task.error = error
            # First failure halts dispatch: stay close to the serial
            # build, which stops at its first failing module.
            self._halted = True
        self._unfinished -= 1
        self._wake.notify_all()

    def _skip_stranded_locked(self) -> None:
        for task in self.tasks.values():
            if task.state in (Task.PENDING, Task.READY):
                task.state = Task.SKIPPED
                self._unfinished -= 1

    def _insort(self, task: Task) -> None:
        for position, queued in enumerate(self._ready):
            if task.index < queued.index:
                self._ready.insert(position, task)
                return
        self._ready.append(task)

    # -- pool fronts -------------------------------------------------------

    def run_threaded(self, jobs: int,
                     spawn: Optional[Callable[[Callable[[], None]], bool]]
                     = None) -> None:
        """Drain with the calling thread plus up to ``jobs - 1``
        helpers.  ``spawn`` enqueues a helper onto an external pool
        (the daemon's workers) and may refuse (queue full) — the owner
        drain below makes progress regardless, so helper placement is
        best-effort by design."""
        helpers: List[threading.Thread] = []
        want = max(0, min(jobs, len(self.tasks)) - 1)
        for _ in range(want):
            if spawn is not None:
                # External pool: fire-and-forget.  The owner's drain
                # cannot return while any task is RUNNING, so a helper
                # that arrives late (or never) finds no work and exits
                # touching nothing but the scheduler's own lock.
                spawn(self.drain)
            else:
                thread = threading.Thread(target=self.drain,
                                          name="maya-module-build",
                                          daemon=True)
                thread.start()
                helpers.append(thread)
        try:
            self.drain()
        finally:
            for thread in helpers:
                thread.join()

    # -- outcomes ----------------------------------------------------------

    def failed(self) -> List[Task]:
        """Failed tasks, in topo order (earliest is the one the builder
        replays serially for the authoritative diagnostic)."""
        return sorted((t for t in self.tasks.values()
                       if t.state == Task.FAILED),
                      key=lambda t: t.index)

    def results(self) -> Dict[str, object]:
        return {name: task.result for name, task in self.tasks.items()
                if task.state == Task.DONE}
