"""Performance instrumentation: cache statistics and phase profiling.

Every cache in the compiler (parse tables, dispatch plans, template
compilations, ...) registers a named :class:`CacheStats` here, so hit
rates are observable in one place — ``mayac --profile`` renders them
after a compile.  A :class:`Profiler` additionally collects wall-clock
time per compiler phase while one is active; when no profiler is
active, ``phase()`` is a no-op context manager so the hot paths pay
nothing beyond a module-attribute check.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional


class CacheStats:
    """Hit/miss/eviction counters for one named cache."""

    __slots__ = ("name", "hits", "misses", "evictions", "invalidations")

    def __init__(self, name: str):
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def hit(self) -> None:
        self.hits += 1

    def miss(self) -> None:
        self.misses += 1

    def evict(self) -> None:
        self.evictions += 1

    def invalidate(self) -> None:
        self.invalidations += 1

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = self.invalidations = 0

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return (f"CacheStats({self.name}: {self.hits}h/{self.misses}m, "
                f"{self.hit_rate:.1%})")


_CACHES: Dict[str, CacheStats] = {}


def cache_stats(name: str) -> CacheStats:
    """The (process-wide) stats object for a named cache."""
    stats = _CACHES.get(name)
    if stats is None:
        stats = _CACHES[name] = CacheStats(name)
    return stats


def all_cache_stats() -> List[CacheStats]:
    return [_CACHES[name] for name in sorted(_CACHES)]


def reset_cache_stats() -> None:
    for stats in _CACHES.values():
        stats.reset()


class Histogram:
    """A power-of-two-bucketed distribution of integer observations.

    Used for per-compile shape metrics: Mayan dispatch depth, fuel
    consumed, expansion counts per production — anywhere a single
    counter hides the tail.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    #: Upper bounds (inclusive) of the buckets; the last is open-ended.
    BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128)

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None
        self.buckets = [0] * (len(self.BOUNDS) + 1)

    def observe(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.BOUNDS):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "mean": round(self.mean, 3),
            "buckets": {
                (f"<={bound}" if index < len(self.BOUNDS) else
                 f">{self.BOUNDS[-1]}"): hits
                for index, (bound, hits) in enumerate(
                    zip(self.BOUNDS + (self.BOUNDS[-1],), self.buckets))
                if hits
            },
        }

    def __repr__(self) -> str:
        return (f"Histogram({self.name}: n={self.count}, "
                f"min={self.min}, max={self.max}, mean={self.mean:.2f})")


class Profiler:
    """Per-phase wall-clock timings plus free-form counters and
    histograms."""

    def __init__(self):
        self.phase_seconds: Dict[str, float] = {}
        self.phase_counts: Dict[str, int] = {}
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed
            self.phase_counts[name] = self.phase_counts.get(name, 0) + 1

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name: str, value: int) -> None:
        """Record one observation in a named histogram."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name)
        histogram.observe(value)

    def snapshot(self) -> Dict[str, object]:
        """Everything the profiler knows, as plain data (for the trace
        JSONL export's metrics record)."""
        return {
            "phases": {
                name: {"ms": round(seconds * 1e3, 3),
                       "count": self.phase_counts.get(name, 0)}
                for name, seconds in sorted(self.phase_seconds.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "histograms": [h.snapshot()
                           for _, h in sorted(self.histograms.items())],
        }

    def render(self, dispatcher=None) -> str:
        """A human-readable profile report (for ``mayac --profile``)."""
        lines = ["== mayac profile =="]
        if self.phase_seconds:
            lines.append("phase timings:")
            total = sum(self.phase_seconds.values())
            for name in sorted(self.phase_seconds,
                               key=self.phase_seconds.get, reverse=True):
                seconds = self.phase_seconds[name]
                lines.append(
                    f"  {name:<18} {seconds * 1e3:9.2f} ms"
                    f"  ({self.phase_counts[name]}x)"
                )
            lines.append(f"  {'total':<18} {total * 1e3:9.2f} ms")
        if dispatcher is not None:
            lines.append(f"dispatch: {dispatcher.dispatch_count} reductions "
                         f"dispatched")
        for name in sorted(self.counters):
            lines.append(f"counter: {name} = {self.counters[name]}")
        if self.histograms:
            lines.append("histograms:")
            for name in sorted(self.histograms):
                histogram = self.histograms[name]
                lines.append(
                    f"  {name:<22} n={histogram.count:<6} "
                    f"min={histogram.min} max={histogram.max} "
                    f"mean={histogram.mean:.2f}"
                )
        interesting = [s for s in all_cache_stats() if s.lookups or s.evictions]
        if interesting:
            lines.append("cache hit rates:")
            for stats in interesting:
                lines.append(
                    f"  {stats.name:<22} {stats.hits:>8} hits "
                    f"{stats.misses:>6} misses  {stats.hit_rate:6.1%}"
                    + (f"  ({stats.evictions} evicted)" if stats.evictions
                       else "")
                )
        return "\n".join(lines)


#: The currently active profiler, or None (the common case).
active: Optional[Profiler] = None


def activate(profiler: Profiler) -> Profiler:
    global active
    active = profiler
    return profiler


def deactivate() -> None:
    global active
    active = None


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time a compiler phase under the active profiler, if any."""
    profiler = active
    if profiler is None:
        yield
    else:
        with profiler.timed(name):
            yield
