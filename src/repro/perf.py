"""Performance instrumentation: cache statistics and phase profiling.

Since the telemetry unification (DESIGN.md "Telemetry") this module is
a thin facade over :data:`repro.obs.metrics.REGISTRY` — the hand-rolled
counter dicts are gone.  :class:`CacheStats` is a view over the
``maya_cache_events_total{cache,event}`` counter family, and
:class:`Profiler` over the ``maya_phase_*`` / ``maya_events_total``
families plus registry histograms; both keep their historical APIs so
every existing call site (and the ``--profile`` output) is unchanged,
while ``--metrics-out`` exports the same numbers in Prometheus or JSON
form.

A :class:`Profiler` collects wall-clock time per compiler phase while
one is active; when no profiler is active, ``phase()`` only maintains
the current-phase stack (label attribution for the laziness profiler)
— the hot paths pay a list append/pop per *phase*, not per node.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.obs import log as _obs_log
from repro.obs import metrics as _metrics
from repro.obs.metrics import REGISTRY, Histogram, sanitize_name

#: Cache hit/miss/eviction/invalidation events for every named cache.
_CACHE_EVENTS = REGISTRY.counter(
    "maya_cache_events_total",
    "Compiler cache events (parse tables, dispatch plans, templates, ...).",
    ("cache", "event"))

#: Wall-clock per compiler phase, recorded by the active Profiler.
_PHASE_SECONDS = REGISTRY.counter(
    "maya_phase_seconds_total",
    "Wall-clock seconds spent per compiler phase (profiled runs).",
    ("phase",))
_PHASE_RUNS = REGISTRY.counter(
    "maya_phase_runs_total",
    "Times each compiler phase ran (profiled runs).",
    ("phase",))

#: Free-form profiler counters (expansions, template instantiations...).
_EVENTS = REGISTRY.counter(
    "maya_events_total",
    "Free-form compiler events recorded by the profiler.",
    ("name",))

#: Profiler histograms by their free-form name ("expansion.depth" ->
#: registry family maya_expansion_depth); children keep the free-form
#: name so profiler snapshots stay stable.
_HISTOGRAMS: Dict[str, Histogram] = {}

#: Families the Profiler owns — reset when a fresh Profiler activates,
#: so each profiled run reports its own numbers (cache stats are
#: process-wide and deliberately not reset).
_PROFILER_FAMILIES = ("maya_phase_seconds_total", "maya_phase_runs_total",
                      "maya_events_total")


class CacheStats:
    """Hit/miss/eviction counters for one named cache (a view over the
    ``maya_cache_events_total`` registry family)."""

    __slots__ = ("name", "_hits", "_misses", "_evictions", "_invalidations")

    def __init__(self, name: str):
        self.name = name
        self._hits = _CACHE_EVENTS.labels(name, "hit")
        self._misses = _CACHE_EVENTS.labels(name, "miss")
        self._evictions = _CACHE_EVENTS.labels(name, "eviction")
        self._invalidations = _CACHE_EVENTS.labels(name, "invalidation")

    # Mutations go through Counter.inc() (which takes the registry's
    # value lock): daemon workers hammer these children concurrently,
    # and a bare ``.value += 1`` would lose counts.

    def hit(self) -> None:
        self._hits.inc()

    def miss(self) -> None:
        self._misses.inc()

    def evict(self) -> None:
        self._evictions.inc()

    def invalidate(self) -> None:
        self._invalidations.inc()

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def invalidations(self) -> int:
        return self._invalidations.value

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        for child in (self._hits, self._misses, self._evictions,
                      self._invalidations):
            child._reset()

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return (f"CacheStats({self.name}: {self.hits}h/{self.misses}m, "
                f"{self.hit_rate:.1%})")


#: CacheStats views by cache name (the counters themselves live in the
#: registry; this only avoids re-binding label children on every call).
_CACHE_VIEWS: Dict[str, CacheStats] = {}


def cache_stats(name: str) -> CacheStats:
    """The (process-wide) stats view for a named cache."""
    stats = _CACHE_VIEWS.get(name)
    if stats is None:
        stats = _CACHE_VIEWS[name] = CacheStats(name)
    return stats


def all_cache_stats() -> List[CacheStats]:
    """Every cache the registry has seen events for (including caches
    whose CacheStats were constructed directly)."""
    names = {labels[0] for labels, _ in _CACHE_EVENTS.samples()}
    return [cache_stats(name) for name in sorted(names)]


def reset_cache_stats() -> None:
    for stats in all_cache_stats():
        stats.reset()


class Profiler:
    """Per-phase wall-clock timings plus free-form counters and
    histograms — a per-run view over the registry's profiler families.

    Constructing a Profiler zeroes those families (and only those), so
    each ``--profile`` run reports its own numbers while process-wide
    metrics like cache stats keep accumulating.
    """

    def __init__(self):
        for name in _PROFILER_FAMILIES:
            REGISTRY.reset(name)
        for histogram in _HISTOGRAMS.values():
            histogram._reset()

    @contextmanager
    def timed(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            _PHASE_SECONDS.labels(name).inc(elapsed)
            _PHASE_RUNS.labels(name).inc()

    def count(self, name: str, amount: int = 1) -> None:
        _EVENTS.labels(name).inc(amount)

    def observe(self, name: str, value: int) -> None:
        """Record one observation in a named histogram."""
        histogram = _HISTOGRAMS.get(name)
        if histogram is None:
            family = REGISTRY.histogram(
                "maya_" + sanitize_name(name),
                f"Profiler histogram {name!r}.")
            histogram = _HISTOGRAMS[name] = family._solo()
            histogram.name = name  # snapshots keep the free-form name
        histogram.observe(value)

    # -- registry-backed views (the historical attribute API) -------------

    @property
    def phase_seconds(self) -> Dict[str, float]:
        return {labels[0]: child.value
                for labels, child in _PHASE_SECONDS.samples()
                if child.value}

    @property
    def phase_counts(self) -> Dict[str, int]:
        return {labels[0]: child.value
                for labels, child in _PHASE_RUNS.samples()
                if child.value}

    @property
    def counters(self) -> Dict[str, int]:
        return {labels[0]: child.value
                for labels, child in _EVENTS.samples()
                if child.value}

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return {name: histogram
                for name, histogram in _HISTOGRAMS.items()
                if histogram.count}

    def snapshot(self) -> Dict[str, object]:
        """Everything the profiler knows, as plain data (embedded in
        the trace JSONL export's metrics record)."""
        phase_counts = self.phase_counts
        return {
            "phases": {
                name: {"ms": round(seconds * 1e3, 3),
                       "count": phase_counts.get(name, 0)}
                for name, seconds in sorted(self.phase_seconds.items())
            },
            "counters": dict(sorted(self.counters.items())),
            "histograms": [h.snapshot()
                           for _, h in sorted(self.histograms.items())],
        }

    def render(self, dispatcher=None) -> str:
        """A human-readable profile report (for ``mayac --profile``)."""
        lines = ["== mayac profile =="]
        phase_seconds = self.phase_seconds
        phase_counts = self.phase_counts
        if phase_seconds:
            lines.append("phase timings:")
            total = sum(phase_seconds.values())
            for name in sorted(phase_seconds,
                               key=phase_seconds.get, reverse=True):
                seconds = phase_seconds[name]
                lines.append(
                    f"  {name:<18} {seconds * 1e3:9.2f} ms"
                    f"  ({phase_counts[name]}x)"
                )
            lines.append(f"  {'total':<18} {total * 1e3:9.2f} ms")
        if dispatcher is not None:
            lines.append(f"dispatch: {dispatcher.dispatch_count} reductions "
                         f"dispatched")
        counters = self.counters
        for name in sorted(counters):
            lines.append(f"counter: {name} = {counters[name]}")
        histograms = self.histograms
        if histograms:
            lines.append("histograms:")
            for name in sorted(histograms):
                histogram = histograms[name]
                lines.append(
                    f"  {name:<22} n={histogram.count:<6} "
                    f"min={histogram.min} max={histogram.max} "
                    f"mean={histogram.mean:.2f}"
                )
        interesting = [s for s in all_cache_stats() if s.lookups or s.evictions]
        if interesting:
            lines.append("cache hit rates:")
            for stats in interesting:
                lines.append(
                    f"  {stats.name:<22} {stats.hits:>8} hits "
                    f"{stats.misses:>6} misses  {stats.hit_rate:6.1%}"
                    + (f"  ({stats.evictions} evicted)" if stats.evictions
                       else "")
                )
        module_lines = self._render_module_cache()
        if module_lines:
            lines.extend(module_lines)
        artifact_lines = self._render_artifact_cache()
        if artifact_lines:
            lines.extend(artifact_lines)
        ic_lines = self._render_inline_caches()
        if ic_lines:
            lines.extend(ic_lines)
        return "\n".join(lines)

    @staticmethod
    def _render_module_cache() -> List[str]:
        """The module builder's incremental-cache section (empty when
        no module-mode build ran): recompiled vs. reused counts and the
        reuse ratio — the numbers ``--module-report`` prints per build,
        totalled process-wide."""
        compiled_family = REGISTRY.get("maya_modules_compiled_total")
        reused_family = REGISTRY.get("maya_modules_reused_total")
        compiled = compiled_family.value if compiled_family is not None else 0
        reused = reused_family.value if reused_family is not None else 0
        total = compiled + reused
        if not total:
            return []
        return [
            "module cache (incremental builds):",
            f"  modules compiled       {compiled:>8}",
            f"  modules reused         {reused:>8}",
            f"  reuse ratio            {reused / total:>7.1%}",
        ]

    @staticmethod
    def _render_artifact_cache() -> List[str]:
        """The daemon's content-addressed artifact cache section (empty
        outside a daemon process or before any compile request)."""
        family = REGISTRY.get("maya_server_artifact_cache_events_total")
        if family is None:
            return []
        events = {labels[0]: child.value for labels, child in family.samples()}
        hits = events.get("hit", 0)
        misses = events.get("miss", 0)
        lookups = hits + misses
        if not lookups:
            return []
        return [
            "artifact cache (daemon responses):",
            f"  {'artifacts':<22} {hits:>8} hits {misses:>6} misses  "
            f"{hits / lookups:6.1%}",
        ]

    @staticmethod
    def _render_inline_caches() -> List[str]:
        """The closure backend's inline-cache section (empty when the
        closure backend never ran)."""
        family = REGISTRY.get("maya_interp_ic_events_total")
        if family is None:
            return []
        by_site: Dict[str, Dict[str, int]] = {}
        for (site, event), child in family.samples():
            if child.value:
                by_site.setdefault(site, {})[event] = child.value
        if not by_site:
            return []
        lines = ["inline caches (closure backend):"]
        for site in sorted(by_site):
            events = by_site[site]
            hits = events.get("hit", 0)
            misses = events.get("miss", 0)
            mega = events.get("megamorphic", 0)
            lookups = hits + misses + mega
            rate = hits / lookups if lookups else 0.0
            line = (f"  {site:<22} {hits:>8} hits {misses:>6} misses "
                    f"{rate:6.1%}")
            if mega:
                line += f"  ({mega} megamorphic)"
            lines.append(line)
        return lines


#: The currently active profiler, or None (the common case).
active: Optional[Profiler] = None


def activate(profiler: Profiler) -> Profiler:
    global active
    active = profiler
    return profiler


def deactivate() -> None:
    global active
    active = None


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time a compiler phase under the active profiler, if any.  Always
    maintains the current-phase stack so phase-attributed metrics (the
    laziness profiler) work without a Profiler.

    When a request context is bound (a daemon worker executing one
    request — see :mod:`repro.obs.log`), the phase's wall-clock is also
    accumulated onto that request, so the response can report where its
    time went even with no profiler active."""
    _metrics.push_phase(name)
    profiler = active
    context = _obs_log.current_request()
    if profiler is None and context is None:
        try:
            yield
        finally:
            _metrics.pop_phase()
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        if profiler is not None:
            _PHASE_SECONDS.labels(name).inc(elapsed)
            _PHASE_RUNS.labels(name).inc()
        if context is not None:
            context.add_phase(name, elapsed)
        _metrics.pop_phase()
