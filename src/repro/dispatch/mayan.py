"""Mayans and MetaPrograms.

A Mayan is a semantic action: a multimethod on a grammar production.
Users subclass Mayan, give it a ``result`` symbol and a ``pattern``
(the parameter list, in the paper's surface syntax), and define
``expand``.  Compiling the parameter list — done lazily, against the
environment where the Mayan is first imported — both selects the
production the Mayan implements and builds its dispatch specializers.

A Mayan is itself a MetaProgram whose ``run`` imports it, so ``use``
works uniformly: "A programmer uses the use directive to import
MetaProgram instances into a lexical scope; the argument to use can be
any class that implements MetaProgram" (section 3.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dispatch.specializers import Param
from repro.grammar import Production


class MetaProgram:
    """Something importable with ``use``: updates an environment."""

    #: Name under which ``use`` finds this metaprogram (set on registration).
    use_name: Optional[str] = None

    def run(self, env) -> None:
        raise NotImplementedError

    def __repr__(self):
        return self.use_name or type(self).__name__


class MetaProgramGroup(MetaProgram):
    """Aggregates several metaprograms (like ``maya.util.ForEach``,
    which instantiates and runs each built-in foreach Mayan in turn)."""

    def __init__(self, *members: MetaProgram):
        self.members = list(members)

    def run(self, env) -> None:
        for member in self.members:
            member.run(env)


class Mayan(MetaProgram):
    """A semantic action on a production; subclass and define:

    * ``result`` — the production's left-hand-side symbol name,
    * ``pattern`` — the parameter list (paper syntax),
    * ``expand(self, ctx, **bindings)`` — the body; returns the AST.

    Inside ``expand``, ``ctx.next_rewrite()`` invokes the
    next-most-applicable Mayan (ultimately the built-in action).
    """

    result: str = None
    pattern: str = None

    def __init__(self):
        self._compiled: Optional[Tuple[Production, List[Param], List[str]]] = None

    # -- MetaProgram --------------------------------------------------------

    def run(self, env) -> None:
        self.attach(env)
        env.dispatcher.import_mayan(self)

    # -- compilation -----------------------------------------------------------

    def attach(self, env) -> None:
        """Compile the parameter list against the environment's grammar."""
        if self._compiled is not None:
            return
        if not self.result or self.pattern is None:
            raise ValueError(
                f"{type(self).__name__} must define 'result' and 'pattern'"
            )
        from repro.lalr.tables import tables_for
        from repro.patterns.params import compile_parameter_list

        tables = tables_for(env.grammar)
        self._compiled = compile_parameter_list(tables, self.result, self.pattern)

    @property
    def production(self) -> Optional[Production]:
        return self._compiled[0] if self._compiled else None

    @property
    def params(self) -> List[Param]:
        return self._compiled[1]

    @property
    def binding_names(self) -> List[str]:
        return self._compiled[2]

    # -- invocation ---------------------------------------------------------

    def invoke(self, ctx, bindings: Dict[str, object], values, location, next_fn):
        call_ctx = MayanCtx(ctx, next_fn, values, location)
        return self.expand(call_ctx, **bindings)

    def expand(self, ctx, **bindings):
        raise NotImplementedError(f"{type(self).__name__}.expand")


class MayanCtx:
    """The context passed to a Mayan body.

    Delegates everything to the compile context and adds
    ``next_rewrite`` (the paper's nextRewrite operator, analogous to
    super calls) plus the raw production values and location.
    """

    def __init__(self, base, next_fn, values, location):
        self._base = base
        self._next_fn = next_fn
        self.values = values
        self.location = location

    def next_rewrite(self):
        """Run the next-most-applicable Mayan (or the base action)."""
        return self._next_fn()

    # Paper-style alias.
    nextRewrite = next_rewrite

    def __getattr__(self, name):
        return getattr(self._base, name)
