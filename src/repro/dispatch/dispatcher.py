"""The Mayan dispatcher.

Selection rules (paper 4.4):

* applicability — every parameter matches (node types, token values,
  static types, substructure);
* symmetric specificity — a Mayan is more specific only if it is at
  least as specific on *every* parameter and strictly more specific on
  one; two Mayans each more specific on different parameters are
  ambiguous, and an error is signaled;
* lexical tie-breaking — among equally specific applicable Mayans, the
  one imported *later* wins.  Built-in (base) semantic actions are
  imported first, which is why user Mayans transparently override base
  syntax;
* ``nextRewrite`` — a Mayan body may delegate to the next-most-
  applicable Mayan, like ``super`` in methods.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro import perf, trace
from repro.diag import (
    DEFAULT_EXPANSION_DEPTH,
    DEFAULT_MAYAN_REENTRY,
    Diagnostic,
    DiagnosticError,
    SourceSpan,
)
from repro.grammar import Production
from repro.lexer import Location
from repro.dispatch.specializers import (
    CROSS,
    EQUAL,
    LESS,
    MORE,
    compare_params,
    match_params,
)

_PLAN_STATS = perf.cache_stats("dispatch.plans")
_ORDER_STATS = perf.cache_stats("dispatch.orders")

#: Reductions routed through the dispatcher, split by whether any Mayan
#: was in scope (children bound once: the hot path pays one inc).
_DISPATCH_TOTAL = perf.REGISTRY.counter(
    "maya_dispatch_reductions_total",
    "Reductions routed through the Mayan dispatcher, by path.",
    ("path",))
_DISPATCH_FAST = _DISPATCH_TOTAL.labels("base")
_DISPATCH_MAYAN = _DISPATCH_TOTAL.labels("mayan")


class DispatchError(DiagnosticError):
    """A Mayan dispatch failure."""

    phase = "dispatch"


class AmbiguousDispatchError(DispatchError):
    """Two applicable Mayans are more specific on different arguments."""


class NoApplicableMayanError(DispatchError):
    """A production reduced but no semantic action applies.

    The paper: "if no Mayans are declared on a new production ... an
    error is signaled [when] input causes the production to reduce."
    """


class ExpansionTooDeepError(DispatchError):
    """A Mayan expansion chain exhausted its fuel budget — either too
    many nested activations overall, or one Mayan re-triggering itself
    (the classic self-recursive template bomb)."""

    phase = "expand"

    def __init__(self, message: str, location: Location, chain: List[str]):
        super().__init__(f"{location}: {message}")
        self.location = location
        self.chain = list(chain)
        self.diagnostic = Diagnostic(
            message, phase="expand",
            span=SourceSpan.from_location(location),
            backtrace=self.chain, cause=self,
        )


class MayanExpansionError(DispatchError):
    """A Python exception escaped a user Mayan's ``expand`` body.

    Mayans are user code running inside the compiler; their bugs must
    surface as located diagnostics naming the Mayan, not as raw Python
    tracebacks out of mayac."""

    phase = "expand"

    def __init__(self, mayan, location: Location, cause: BaseException,
                 chain: List[str]):
        message = (f"Python error in Mayan {mayan}: "
                   f"{type(cause).__name__}: {cause}")
        super().__init__(f"{location}: {message}")
        self.location = location
        self.mayan = mayan
        self.chain = list(chain)
        self.diagnostic = Diagnostic(
            message, phase="expand",
            span=SourceSpan.from_location(location),
            backtrace=self.chain, cause=self,
        )


class _DispatchPlan:
    """Per-(dispatcher scope, production) precomputed dispatch data.

    ``candidates`` is the import-ordered Mayan chain visible from this
    scope, frozen at plan-build time; ``orders`` caches the outcome of
    the O(n²) specificity ordering keyed by which candidates matched
    (a bitmask) plus the type-registry state the comparison ran under.
    ``epoch`` ties the plan to the dispatcher tree's import epoch so
    a later ``import_mayan`` anywhere in the tree invalidates it.
    """

    __slots__ = ("epoch", "candidates", "orders")

    def __init__(self, epoch: int, candidates: Tuple):
        self.epoch = epoch
        self.candidates = candidates
        self.orders: Dict[Tuple, object] = {}


class _AmbiguityRecord:
    """A cached ambiguous outcome for one applicability mask: the pair
    of crossing Mayans, re-raised with the current dispatch location."""

    __slots__ = ("mayan_a", "mayan_b")

    def __init__(self, mayan_a, mayan_b):
        self.mayan_a = mayan_a
        self.mayan_b = mayan_b


class Dispatcher:
    """An import-ordered registry of Mayans, lexically scoped.

    ``child()`` makes a nested scope: imports in the child do not leak
    to the parent, which implements the lexical scoping of ``use``.
    """

    def __init__(self, base_actions: Dict[Production, Callable],
                 parent: Optional["Dispatcher"] = None):
        self.base_actions = base_actions
        self.parent = parent
        self.root = parent.root if parent is not None else self
        self._chains: Dict[Production, List] = {}
        self._plans: Dict[Production, _DispatchPlan] = {}
        self.dispatch_count = 0
        if parent is None:
            # Import epoch for the whole dispatcher tree: bumped by any
            # import_mayan so every scope's cached plans go stale.
            self._epoch = 0
        # Active Mayan activations, rooted once per dispatcher tree so
        # nested ``use`` scopes share one fuel budget.
        self.expansion_stack: List[Tuple[object, Location]] = []
        # Provenance context, parallel to the expansion stack: the
        # Origin of the innermost active Mayan activation.  Nodes
        # reduced while this is non-empty are stamped with its top.
        self.origin_stack: List[trace.Origin] = []

    def child(self) -> "Dispatcher":
        return Dispatcher(self.base_actions, parent=self)

    # -- registration -------------------------------------------------------

    def import_mayan(self, mayan) -> None:
        """Append a Mayan to its production's chain (import order)."""
        production = mayan.production
        if production is None:
            raise DispatchError(f"Mayan {mayan} was not attached to a production")
        self._chains.setdefault(production, []).append(mayan)
        self.root._epoch += 1

    def mayans_for(self, production: Production) -> List:
        """All imported Mayans for a production, outermost scope first."""
        if self.parent is not None:
            out = self.parent.mayans_for(production)
        else:
            out = []
        out.extend(self._chains.get(production, ()))
        return out

    # -- selection ------------------------------------------------------------

    def plan_for(self, production: Production) -> _DispatchPlan:
        """The current dispatch plan for a production in this scope."""
        root = self.root
        plan = self._plans.get(production)
        if plan is None or plan.epoch != root._epoch:
            plan = _DispatchPlan(root._epoch, tuple(self.mayans_for(production)))
            self._plans[production] = plan
            _PLAN_STATS.miss()
        else:
            _PLAN_STATS.hit()
        return plan

    def dispatch(self, production: Production, values: List[object],
                 location: Location, ctx) -> object:
        """Run the most applicable semantic action for a reduction."""
        self.dispatch_count += 1
        if self.root is not self:
            self.root.dispatch_count += 1
        plan = self.plan_for(production)

        if not plan.candidates:
            # Fast path: no Mayans imported on this production anywhere
            # in scope — go straight to the built-in action with no
            # list/closure allocation and no specificity work.
            _DISPATCH_FAST.value += 1
            base = self.base_actions.get(production)
            if base is not None:
                return base(ctx, values, location)
            raise NoApplicableMayanError(
                f"{location}: no semantic action applies to [{production}]"
            )

        _DISPATCH_MAYAN.value += 1
        candidates = plan.candidates
        mask = 0
        bindings_at: List[Optional[Dict[str, object]]] = []
        for position, mayan in enumerate(candidates):
            bindings: Dict[str, object] = {}
            if match_params(mayan.params, values, ctx, bindings):
                mask |= 1 << position
                bindings_at.append(bindings)
            else:
                bindings_at.append(None)

        order = self._ordered_positions(plan, mask, bindings_at, ctx,
                                        production, location)
        chain = [(candidates[position], bindings_at[position])
                 for position in order]

        base = self.base_actions.get(production)
        root = self.root
        stack = root.expansion_stack
        origins = root.origin_stack
        engine = getattr(getattr(ctx, "env", None), "diag", None)
        depth_limit = getattr(engine, "max_expansion_depth",
                              DEFAULT_EXPANSION_DEPTH)
        reentry_limit = getattr(engine, "max_mayan_reentry",
                                DEFAULT_MAYAN_REENTRY)
        tracer = trace.current()
        profiler = perf.active

        def run(index: int):
            if index < len(chain):
                mayan, bindings = chain[index]
                if engine is not None:
                    # Wall-clock deadline composes with the fuel budget:
                    # each Mayan activation is a cooperative checkpoint.
                    engine.check_deadline()
                self._check_fuel(mayan, location, stack,
                                 depth_limit, reentry_limit)
                if profiler is not None:
                    profiler.count("expansions")
                    profiler.count(f"expansions[{mayan}]")
                    profiler.observe("expansion.depth", len(stack) + 1)
                # One Origin per activation, on the dispatch hot path:
                # pass the raw Mayan and Location (Origin stringifies /
                # spans them lazily) and only walk the stack for a use
                # site when the activation has no source position.
                site = location if getattr(location, "line", 0) > 0 \
                    else trace.use_site_span(location, stack)
                origin = trace.Origin(
                    mayan, None, site, origins[-1] if origins else None,
                )
                stack.append((mayan, location))
                origins.append(origin)
                span = tracer.begin(
                    "expand", str(mayan), mayan=str(mayan),
                    production=str(production), location=str(location),
                    depth=len(stack), before=_preview_values(values),
                ) if tracer is not None else None
                try:
                    result = mayan.invoke(ctx, bindings, values, location,
                                          lambda: run(index + 1))
                    if span is not None:
                        tracer.end(span, after=_preview(result))
                    return result
                except DiagnosticError:
                    if span is not None:
                        tracer.end(span, error=True)
                    raise
                except Exception as error:
                    # A metaprogram bug is still a *compile* error: name
                    # the Mayan and locate the activation instead of
                    # letting a raw Python traceback escape mayac.
                    if span is not None:
                        tracer.end(span, error=True)
                    raise MayanExpansionError(
                        mayan, location, error, _chain_entries(stack)
                    ) from error
                finally:
                    stack.pop()
                    origins.pop()
            if base is not None:
                return base(ctx, values, location)
            raise NoApplicableMayanError(
                f"{location}: no semantic action applies to [{production}]"
            )

        if tracer is not None:
            with tracer.span("dispatch", str(production),
                             production=str(production),
                             location=str(location),
                             candidates=len(candidates),
                             applicable=len(chain)):
                return run(0)
        return run(0)

    def _ordered_positions(self, plan: _DispatchPlan, mask: int,
                           bindings_at, ctx, production: Production,
                           location: Location) -> Tuple[int, ...]:
        """Candidate positions, most-specific first, via the order cache.

        For a fixed applicable subset (the mask) the specificity partial
        order cannot change unless the type registry learns new classes,
        so the ordering — including an ambiguous outcome — is cached per
        (mask, registry state) and dispatch degenerates to matching plus
        one dict lookup.
        """
        registry = getattr(ctx, "registry", None)
        order_key = (mask, getattr(registry, "uid", None),
                     getattr(registry, "version", None))
        cached = plan.orders.get(order_key)
        if cached is None:
            _ORDER_STATS.miss()
            applicable = [
                (position, plan.candidates[position], bindings_at[position])
                for position in range(len(plan.candidates))
                if mask >> position & 1
            ]
            try:
                cached = _order_chain(applicable, ctx, production, location)
            except AmbiguousDispatchError as error:
                plan.orders[order_key] = _AmbiguityRecord(
                    error.mayan_a, error.mayan_b
                )
                raise
            plan.orders[order_key] = cached
        else:
            _ORDER_STATS.hit()
            if isinstance(cached, _AmbiguityRecord):
                raise _ambiguity_error(
                    location, production, cached.mayan_a, cached.mayan_b
                )
        return cached

    @staticmethod
    def _check_fuel(mayan, location: Location, stack,
                    depth_limit: int, reentry_limit: int) -> None:
        """The expansion guard rails (fuel + re-entrant cycle detector).

        The re-entry check trips a self-recursive Mayan after a few
        activations; the overall depth budget catches mutual-recursion
        chains where no single Mayan dominates."""
        if len(stack) >= depth_limit:
            raise ExpansionTooDeepError(
                f"expansion too deep: {len(stack)} nested Mayan "
                f"activations exceed the fuel budget of {depth_limit} "
                f"(raise it with --fuel if the expansion is legitimate)",
                _located(location, stack), _chain_entries(stack),
            )
        reentries = sum(1 for active, _ in stack if active is mayan)
        if reentries >= reentry_limit:
            raise ExpansionTooDeepError(
                f"expansion too deep: Mayan {mayan} re-entered "
                f"{reentries} times — its expansion appears to trigger "
                f"itself",
                _located(location, stack), _chain_entries(stack),
            )


def _preview(value, limit: int = 200) -> str:
    """A one-line unparse of a rewrite result for trace attrs."""
    try:
        from repro.ast import nodes as n
        from repro.ast import to_source

        if isinstance(value, (n.Node, list)):
            text = to_source(value)
        elif hasattr(value, "source_text"):
            text = value.source_text()
        else:
            text = str(value)
    except Exception:
        text = f"<{type(value).__name__}>"
    text = " ".join(text.split())
    return text[:limit] + "..." if len(text) > limit else text


def _preview_values(values, limit: int = 200) -> str:
    """The production's right-hand-side values as one source-ish line."""
    return " ".join(_preview(value, limit=40) for value in values)[:limit]


def _located(location: Location, stack) -> Location:
    """The trip location, or — when the expansion happened inside
    template-made syntax with no source position — the innermost
    activation that still points into real source."""
    if getattr(location, "line", 0) > 0:
        return location
    for _, active_location in reversed(stack):
        if getattr(active_location, "line", 0) > 0:
            return active_location
    return location


def _chain_entries(stack, limit: int = 12) -> List[str]:
    """Render the active expansion chain innermost-first for a
    diagnostic backtrace, eliding the middle of huge chains."""
    entries = [f"{mayan} at {location}" for mayan, location in reversed(stack)]
    if len(entries) > limit:
        shown = limit // 2
        omitted = len(entries) - 2 * shown
        entries = entries[:shown] + [f"... ({omitted} more)"] + entries[-shown:]
    return entries


def _ambiguity_error(location, production, mayan_a, mayan_b):
    error = AmbiguousDispatchError(
        f"{location}: ambiguous Mayans on [{production}]: "
        f"{mayan_a} vs {mayan_b} are each more specific on "
        f"different arguments"
    )
    error.mayan_a = mayan_a
    error.mayan_b = mayan_b
    return error


def _order_chain(applicable, env, production, location) -> Tuple[int, ...]:
    """Sort applicable Mayans most-specific first.

    ``applicable`` holds (candidate position, mayan, bindings) triples
    in import order; the result is the tuple of positions to invoke.
    Selection repeatedly extracts the maximal element; within a maximal
    *equal* group the latest import wins; a *crossing* pair at the top
    is an ambiguity error.
    """
    remaining = list(applicable)
    ordered: List[int] = []
    while remaining:
        # Find maximal elements: no other strictly more specific.
        maximal = []
        for index, (position, mayan, _) in enumerate(remaining):
            dominated = False
            for other_index, (_, other, _) in enumerate(remaining):
                if other_index == index:
                    continue
                if _strictly_more_specific(other, mayan, env):
                    dominated = True
                    break
            if not dominated:
                maximal.append((position, mayan))
        # Crossing check within the maximal set: any two maximal Mayans
        # that are not equal-specificity are mutually more specific on
        # different arguments.
        for index, (_, mayan_a) in enumerate(maximal):
            for _, mayan_b in maximal[index + 1:]:
                if not _equally_specific(mayan_a, mayan_b, env):
                    raise _ambiguity_error(location, production,
                                           mayan_a, mayan_b)
        # Equal group: later import (higher position) first.
        maximal.sort(key=lambda entry: entry[0], reverse=True)
        ordered.extend(position for position, _ in maximal)
        kept = {position for position, _ in maximal}
        remaining = [entry for entry in remaining if entry[0] not in kept]
    return tuple(ordered)


def _strictly_more_specific(a, b, env) -> bool:
    saw_more = False
    for param_a, param_b in zip(a.params, b.params):
        outcome = compare_params(param_a, param_b, env)
        if outcome in (LESS, CROSS):
            return False
        if outcome == MORE:
            saw_more = True
    return saw_more


def _equally_specific(a, b, env) -> bool:
    return all(
        compare_params(param_a, param_b, env) == EQUAL
        for param_a, param_b in zip(a.params, b.params)
    )
