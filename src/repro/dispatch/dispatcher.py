"""The Mayan dispatcher.

Selection rules (paper 4.4):

* applicability — every parameter matches (node types, token values,
  static types, substructure);
* symmetric specificity — a Mayan is more specific only if it is at
  least as specific on *every* parameter and strictly more specific on
  one; two Mayans each more specific on different parameters are
  ambiguous, and an error is signaled;
* lexical tie-breaking — among equally specific applicable Mayans, the
  one imported *later* wins.  Built-in (base) semantic actions are
  imported first, which is why user Mayans transparently override base
  syntax;
* ``nextRewrite`` — a Mayan body may delegate to the next-most-
  applicable Mayan, like ``super`` in methods.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.grammar import Production
from repro.lexer import Location
from repro.dispatch.specializers import (
    CROSS,
    EQUAL,
    LESS,
    MORE,
    compare_params,
    match_params,
)


class DispatchError(Exception):
    """A Mayan dispatch failure."""


class AmbiguousDispatchError(DispatchError):
    """Two applicable Mayans are more specific on different arguments."""


class NoApplicableMayanError(DispatchError):
    """A production reduced but no semantic action applies.

    The paper: "if no Mayans are declared on a new production ... an
    error is signaled [when] input causes the production to reduce."
    """


class Dispatcher:
    """An import-ordered registry of Mayans, lexically scoped.

    ``child()`` makes a nested scope: imports in the child do not leak
    to the parent, which implements the lexical scoping of ``use``.
    """

    def __init__(self, base_actions: Dict[Production, Callable],
                 parent: Optional["Dispatcher"] = None):
        self.base_actions = base_actions
        self.parent = parent
        self.root = parent.root if parent is not None else self
        self._chains: Dict[Production, List] = {}
        self.dispatch_count = 0

    def child(self) -> "Dispatcher":
        return Dispatcher(self.base_actions, parent=self)

    # -- registration -------------------------------------------------------

    def import_mayan(self, mayan) -> None:
        """Append a Mayan to its production's chain (import order)."""
        production = mayan.production
        if production is None:
            raise DispatchError(f"Mayan {mayan} was not attached to a production")
        self._chains.setdefault(production, []).append(mayan)

    def mayans_for(self, production: Production) -> List:
        """All imported Mayans for a production, outermost scope first."""
        if self.parent is not None:
            out = self.parent.mayans_for(production)
        else:
            out = []
        out.extend(self._chains.get(production, ()))
        return out

    # -- selection ------------------------------------------------------------

    def dispatch(self, production: Production, values: List[object],
                 location: Location, ctx) -> object:
        """Run the most applicable semantic action for a reduction."""
        self.dispatch_count += 1
        if self.root is not self:
            self.root.dispatch_count += 1
        candidates = self.mayans_for(production)
        applicable: List[Tuple[object, Dict[str, object]]] = []
        for mayan in candidates:
            bindings: Dict[str, object] = {}
            if match_params(mayan.params, values, ctx, bindings):
                applicable.append((mayan, bindings))

        chain = _order_chain(applicable, ctx, production, location)

        base = self.base_actions.get(production)

        def run(index: int):
            if index < len(chain):
                mayan, bindings = chain[index]
                return mayan.invoke(ctx, bindings, values, location,
                                    lambda: run(index + 1))
            if base is not None:
                return base(ctx, values, location)
            raise NoApplicableMayanError(
                f"{location}: no semantic action applies to [{production}]"
            )

        return run(0)


def _order_chain(applicable, env, production, location):
    """Sort applicable Mayans most-specific first.

    Selection repeatedly extracts the maximal element; within a maximal
    *equal* group the latest import wins; a *crossing* pair at the top
    is an ambiguity error.
    """
    remaining = list(applicable)
    ordered = []
    while remaining:
        # Find maximal elements: no other strictly more specific.
        maximal = []
        for index, (mayan, bindings) in enumerate(remaining):
            dominated = False
            for other_index, (other, _) in enumerate(remaining):
                if other_index == index:
                    continue
                if _strictly_more_specific(other, mayan, env):
                    dominated = True
                    break
            if not dominated:
                maximal.append((index, mayan, bindings))
        # Crossing check within the maximal set: any two maximal Mayans
        # that are not equal-specificity are mutually more specific on
        # different arguments.
        for position, (_, mayan_a, _) in enumerate(maximal):
            for _, mayan_b, _ in maximal[position + 1:]:
                if not _equally_specific(mayan_a, mayan_b, env):
                    raise AmbiguousDispatchError(
                        f"{location}: ambiguous Mayans on [{production}]: "
                        f"{mayan_a} vs {mayan_b} are each more specific on "
                        f"different arguments"
                    )
        # Equal group: later import (higher original index) first.
        maximal.sort(key=lambda entry: entry[0], reverse=True)
        for index, mayan, bindings in maximal:
            ordered.append((mayan, bindings))
        kept = {id(m) for _, m, _ in maximal}
        remaining = [entry for entry in remaining if id(entry[0]) not in kept]
    return ordered


def _strictly_more_specific(a, b, env) -> bool:
    saw_more = False
    for param_a, param_b in zip(a.params, b.params):
        outcome = compare_params(param_a, param_b, env)
        if outcome in (LESS, CROSS):
            return False
        if outcome == MORE:
            saw_more = True
    return saw_more


def _equally_specific(a, b, env) -> bool:
    return all(
        compare_params(param_a, param_b, env) == EQUAL
        for param_a, param_b in zip(a.params, b.params)
    )
