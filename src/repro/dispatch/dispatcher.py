"""The Mayan dispatcher.

Selection rules (paper 4.4):

* applicability — every parameter matches (node types, token values,
  static types, substructure);
* symmetric specificity — a Mayan is more specific only if it is at
  least as specific on *every* parameter and strictly more specific on
  one; two Mayans each more specific on different parameters are
  ambiguous, and an error is signaled;
* lexical tie-breaking — among equally specific applicable Mayans, the
  one imported *later* wins.  Built-in (base) semantic actions are
  imported first, which is why user Mayans transparently override base
  syntax;
* ``nextRewrite`` — a Mayan body may delegate to the next-most-
  applicable Mayan, like ``super`` in methods.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.diag import (
    DEFAULT_EXPANSION_DEPTH,
    DEFAULT_MAYAN_REENTRY,
    Diagnostic,
    DiagnosticError,
    SourceSpan,
)
from repro.grammar import Production
from repro.lexer import Location
from repro.dispatch.specializers import (
    CROSS,
    EQUAL,
    LESS,
    MORE,
    compare_params,
    match_params,
)


class DispatchError(DiagnosticError):
    """A Mayan dispatch failure."""

    phase = "dispatch"


class AmbiguousDispatchError(DispatchError):
    """Two applicable Mayans are more specific on different arguments."""


class NoApplicableMayanError(DispatchError):
    """A production reduced but no semantic action applies.

    The paper: "if no Mayans are declared on a new production ... an
    error is signaled [when] input causes the production to reduce."
    """


class ExpansionTooDeepError(DispatchError):
    """A Mayan expansion chain exhausted its fuel budget — either too
    many nested activations overall, or one Mayan re-triggering itself
    (the classic self-recursive template bomb)."""

    phase = "expand"

    def __init__(self, message: str, location: Location, chain: List[str]):
        super().__init__(f"{location}: {message}")
        self.location = location
        self.chain = list(chain)
        self.diagnostic = Diagnostic(
            message, phase="expand",
            span=SourceSpan.from_location(location),
            backtrace=self.chain, cause=self,
        )


class MayanExpansionError(DispatchError):
    """A Python exception escaped a user Mayan's ``expand`` body.

    Mayans are user code running inside the compiler; their bugs must
    surface as located diagnostics naming the Mayan, not as raw Python
    tracebacks out of mayac."""

    phase = "expand"

    def __init__(self, mayan, location: Location, cause: BaseException,
                 chain: List[str]):
        message = (f"Python error in Mayan {mayan}: "
                   f"{type(cause).__name__}: {cause}")
        super().__init__(f"{location}: {message}")
        self.location = location
        self.mayan = mayan
        self.chain = list(chain)
        self.diagnostic = Diagnostic(
            message, phase="expand",
            span=SourceSpan.from_location(location),
            backtrace=self.chain, cause=self,
        )


class Dispatcher:
    """An import-ordered registry of Mayans, lexically scoped.

    ``child()`` makes a nested scope: imports in the child do not leak
    to the parent, which implements the lexical scoping of ``use``.
    """

    def __init__(self, base_actions: Dict[Production, Callable],
                 parent: Optional["Dispatcher"] = None):
        self.base_actions = base_actions
        self.parent = parent
        self.root = parent.root if parent is not None else self
        self._chains: Dict[Production, List] = {}
        self.dispatch_count = 0
        # Active Mayan activations, rooted once per dispatcher tree so
        # nested ``use`` scopes share one fuel budget.
        self.expansion_stack: List[Tuple[object, Location]] = []

    def child(self) -> "Dispatcher":
        return Dispatcher(self.base_actions, parent=self)

    # -- registration -------------------------------------------------------

    def import_mayan(self, mayan) -> None:
        """Append a Mayan to its production's chain (import order)."""
        production = mayan.production
        if production is None:
            raise DispatchError(f"Mayan {mayan} was not attached to a production")
        self._chains.setdefault(production, []).append(mayan)

    def mayans_for(self, production: Production) -> List:
        """All imported Mayans for a production, outermost scope first."""
        if self.parent is not None:
            out = self.parent.mayans_for(production)
        else:
            out = []
        out.extend(self._chains.get(production, ()))
        return out

    # -- selection ------------------------------------------------------------

    def dispatch(self, production: Production, values: List[object],
                 location: Location, ctx) -> object:
        """Run the most applicable semantic action for a reduction."""
        self.dispatch_count += 1
        if self.root is not self:
            self.root.dispatch_count += 1
        candidates = self.mayans_for(production)
        applicable: List[Tuple[object, Dict[str, object]]] = []
        for mayan in candidates:
            bindings: Dict[str, object] = {}
            if match_params(mayan.params, values, ctx, bindings):
                applicable.append((mayan, bindings))

        chain = _order_chain(applicable, ctx, production, location)

        base = self.base_actions.get(production)
        stack = self.root.expansion_stack
        engine = getattr(getattr(ctx, "env", None), "diag", None)
        depth_limit = getattr(engine, "max_expansion_depth",
                              DEFAULT_EXPANSION_DEPTH)
        reentry_limit = getattr(engine, "max_mayan_reentry",
                                DEFAULT_MAYAN_REENTRY)

        def run(index: int):
            if index < len(chain):
                mayan, bindings = chain[index]
                self._check_fuel(mayan, location, stack,
                                 depth_limit, reentry_limit)
                stack.append((mayan, location))
                try:
                    return mayan.invoke(ctx, bindings, values, location,
                                        lambda: run(index + 1))
                except DiagnosticError:
                    raise
                except Exception as error:
                    # A metaprogram bug is still a *compile* error: name
                    # the Mayan and locate the activation instead of
                    # letting a raw Python traceback escape mayac.
                    raise MayanExpansionError(
                        mayan, location, error, _chain_entries(stack)
                    ) from error
                finally:
                    stack.pop()
            if base is not None:
                return base(ctx, values, location)
            raise NoApplicableMayanError(
                f"{location}: no semantic action applies to [{production}]"
            )

        return run(0)

    @staticmethod
    def _check_fuel(mayan, location: Location, stack,
                    depth_limit: int, reentry_limit: int) -> None:
        """The expansion guard rails (fuel + re-entrant cycle detector).

        The re-entry check trips a self-recursive Mayan after a few
        activations; the overall depth budget catches mutual-recursion
        chains where no single Mayan dominates."""
        if len(stack) >= depth_limit:
            raise ExpansionTooDeepError(
                f"expansion too deep: {len(stack)} nested Mayan "
                f"activations exceed the fuel budget of {depth_limit} "
                f"(raise it with --fuel if the expansion is legitimate)",
                _located(location, stack), _chain_entries(stack),
            )
        reentries = sum(1 for active, _ in stack if active is mayan)
        if reentries >= reentry_limit:
            raise ExpansionTooDeepError(
                f"expansion too deep: Mayan {mayan} re-entered "
                f"{reentries} times — its expansion appears to trigger "
                f"itself",
                _located(location, stack), _chain_entries(stack),
            )


def _located(location: Location, stack) -> Location:
    """The trip location, or — when the expansion happened inside
    template-made syntax with no source position — the innermost
    activation that still points into real source."""
    if getattr(location, "line", 0) > 0:
        return location
    for _, active_location in reversed(stack):
        if getattr(active_location, "line", 0) > 0:
            return active_location
    return location


def _chain_entries(stack, limit: int = 12) -> List[str]:
    """Render the active expansion chain innermost-first for a
    diagnostic backtrace, eliding the middle of huge chains."""
    entries = [f"{mayan} at {location}" for mayan, location in reversed(stack)]
    if len(entries) > limit:
        shown = limit // 2
        omitted = len(entries) - 2 * shown
        entries = entries[:shown] + [f"... ({omitted} more)"] + entries[-shown:]
    return entries


def _order_chain(applicable, env, production, location):
    """Sort applicable Mayans most-specific first.

    Selection repeatedly extracts the maximal element; within a maximal
    *equal* group the latest import wins; a *crossing* pair at the top
    is an ambiguity error.
    """
    remaining = list(applicable)
    ordered = []
    while remaining:
        # Find maximal elements: no other strictly more specific.
        maximal = []
        for index, (mayan, bindings) in enumerate(remaining):
            dominated = False
            for other_index, (other, _) in enumerate(remaining):
                if other_index == index:
                    continue
                if _strictly_more_specific(other, mayan, env):
                    dominated = True
                    break
            if not dominated:
                maximal.append((index, mayan, bindings))
        # Crossing check within the maximal set: any two maximal Mayans
        # that are not equal-specificity are mutually more specific on
        # different arguments.
        for position, (_, mayan_a, _) in enumerate(maximal):
            for _, mayan_b, _ in maximal[position + 1:]:
                if not _equally_specific(mayan_a, mayan_b, env):
                    raise AmbiguousDispatchError(
                        f"{location}: ambiguous Mayans on [{production}]: "
                        f"{mayan_a} vs {mayan_b} are each more specific on "
                        f"different arguments"
                    )
        # Equal group: later import (higher original index) first.
        maximal.sort(key=lambda entry: entry[0], reverse=True)
        for index, mayan, bindings in maximal:
            ordered.append((mayan, bindings))
        kept = {id(m) for _, m, _ in maximal}
        remaining = [entry for entry in remaining if id(entry[0]) not in kept]
    return ordered


def _strictly_more_specific(a, b, env) -> bool:
    saw_more = False
    for param_a, param_b in zip(a.params, b.params):
        outcome = compare_params(param_a, param_b, env)
        if outcome in (LESS, CROSS):
            return False
        if outcome == MORE:
            saw_more = True
    return saw_more


def _equally_specific(a, b, env) -> bool:
    return all(
        compare_params(param_a, param_b, env) == EQUAL
        for param_a, param_b in zip(a.params, b.params)
    )
