"""Mayan parameter specializers: matching and specificity.

A Mayan parameter is a grammar symbol plus an optional secondary
attribute (paper 4.4): substructure, a token value, a static expression
type, or a class-literal type.  Matching binds names to argument
substructure; comparison implements the paper's rules — "static
expression types are compared using subtype relationships; substructure
is compared recursively; class types and token values must match
exactly."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ast import nodes as n
from repro.grammar import Nonterminal, Production, Symbol
from repro.lexer import Token

# Comparison outcomes for a single parameter position.
MORE = 1
EQUAL = 0
LESS = -1
# Crossing: more specific on one sub-position, less on another — the
# paper's symmetric-ambiguity case, signaled as an error at dispatch.
CROSS = 2


class Specializer:
    """Base class for secondary parameter attributes."""


class TypeSpec(Specializer):
    """Constrains an expression argument's *static* type (subtype test).

    The type name is resolved lazily against the matching environment's
    registry, and cached per registry.
    """

    def __init__(self, type_parts: Tuple[str, ...], dims: int = 0):
        self.type_parts = tuple(type_parts)
        self.dims = dims
        self._cache = {}

    def resolve(self, env):
        registry = env.registry
        key = registry.uid
        resolved = self._cache.get(key)
        if resolved is None:
            resolved = registry.resolve_type(self.type_parts, self.dims)
            self._cache[key] = resolved
        return resolved

    def __repr__(self):
        return f"TypeSpec({'.'.join(self.type_parts)}{'[]' * self.dims})"


class TokenSpec(Specializer):
    """Constrains a token argument to an exact spelling."""

    def __init__(self, value: str):
        self.value = value

    def __repr__(self):
        return f"TokenSpec({self.value!r})"


class ClassSpec(Specializer):
    """Constrains a TypeName argument to denote an exact class."""

    def __init__(self, type_parts: Tuple[str, ...], dims: int = 0):
        self.type_parts = tuple(type_parts)
        self.dims = dims
        self._cache = {}

    def resolve(self, env):
        key = env.registry.uid
        resolved = self._cache.get(key)
        if resolved is None:
            resolved = env.registry.resolve_type(self.type_parts, self.dims)
            self._cache[key] = resolved
        return resolved

    def __repr__(self):
        return f"ClassSpec({'.'.join(self.type_parts)})"


class StructSpec(Specializer):
    """Constrains an argument's syntactic structure.

    Matches nodes whose recorded ``syntax`` was built by ``production``,
    then matches each child against ``subparams``.
    """

    def __init__(self, production: Production, subparams: List["Param"]):
        self.production = production
        self.subparams = subparams

    def __repr__(self):
        return f"StructSpec({self.production.tag})"


class GroupSpec(Specializer):
    """Constrains the *parsed contents* of a raw subtree token.

    Base productions keep paren/brace groups as tokens (their actions
    parse them); a pattern that destructures such a group gets a
    GroupSpec, which parses the token on demand during matching —
    letting Mayans dispatch on the static types and structure of
    argument lists.
    """

    def __init__(self, content_symbol, element_params: List["Param"],
                 exact_arity: bool = True):
        self.content_symbol = content_symbol
        self.element_params = element_params
        self.exact_arity = exact_arity

    def __repr__(self):
        return f"GroupSpec({self.content_symbol.name})"


class Param:
    """One Mayan formal parameter (possibly with substructure)."""

    def __init__(self, symbol: Symbol, name: Optional[str] = None,
                 spec: Optional[Specializer] = None):
        self.symbol = symbol
        self.name = name
        self.spec = spec

    def __repr__(self):
        spec = f":{self.spec!r}" if self.spec else ""
        name = f" {self.name}" if self.name else ""
        return f"Param({self.symbol.name}{spec}{name})"


# ---------------------------------------------------------------------------
# Matching
# ---------------------------------------------------------------------------


def match_param(param: Param, value, env, bindings: Dict[str, object]) -> bool:
    """Match one argument against one parameter, collecting bindings."""
    if not _symbol_accepts(param.symbol, value):
        return False
    spec = param.spec
    if spec is not None and not _spec_matches(spec, value, env, bindings):
        return False
    if param.name:
        bindings[param.name] = value
    return True


def match_params(params: List[Param], values, env,
                 bindings: Dict[str, object]) -> bool:
    if len(params) != len(values):
        return False
    return all(
        match_param(param, value, env, bindings)
        for param, value in zip(params, values)
    )


def _symbol_accepts(symbol: Symbol, value) -> bool:
    if symbol.is_terminal:
        return isinstance(value, Token) and (
            value.kind == symbol.name or value.text == symbol.name
        )
    node_class = getattr(symbol, "node_class", None)
    if node_class is not None:
        if isinstance(value, n.LazyNode):
            # A lazy block stands for its (unparsed) content symbol.
            return value.symbol is symbol
        return isinstance(value, node_class)
    # Helper nonterminals (lists, lazy, trees): accept whatever the
    # helper action produced.
    return True


def _spec_matches(spec: Specializer, value, env, bindings) -> bool:
    if isinstance(spec, TokenSpec):
        if isinstance(value, Token):
            return value.text == spec.value
        if isinstance(value, n.Ident):
            return value.name == spec.value
        return False
    if isinstance(spec, TypeSpec):
        if not isinstance(value, n.Expression):
            return False
        from repro.typecheck import static_type_of

        actual = static_type_of(value)
        if actual is None:
            return False
        return actual.is_subtype_of(spec.resolve(env))
    if isinstance(spec, ClassSpec):
        if not isinstance(value, n.TypeName):
            return False
        from repro.typecheck import resolve_type_name

        denoted = resolve_type_name(value, value.scope)
        return denoted is spec.resolve(env)
    if isinstance(spec, StructSpec):
        if not isinstance(value, n.Node) or value.syntax is None:
            return False
        production, children = value.syntax
        if production is not spec.production:
            return False
        return match_params(spec.subparams, children, env, bindings)
    if isinstance(spec, GroupSpec):
        if isinstance(value, Token):
            parse = getattr(env, "parse_subtree", None)
            if parse is None:
                return False
            value = parse(value, spec.content_symbol)
        elements = value if isinstance(value, list) else [value]
        if spec.exact_arity and len(elements) != len(spec.element_params):
            return False
        return match_params(spec.element_params, elements, env, bindings)
    raise TypeError(f"unknown specializer {spec!r}")


# ---------------------------------------------------------------------------
# Specificity
# ---------------------------------------------------------------------------


def compare_params(a: Param, b: Param, env=None) -> int:
    """Compare two parameters at the same position.

    Returns MORE if ``a`` is strictly more specific, LESS if ``b`` is,
    EQUAL otherwise.  Specializers that can never apply to the same
    argument simultaneously (distinct token values, unrelated types)
    compare EQUAL, since the ambiguity cannot arise at dispatch time.
    """
    node_order = _compare_node_classes(a, b)
    if node_order != EQUAL:
        return node_order
    return _compare_specs(a.spec, b.spec, env)


def _effective_node_class(param: Param):
    if isinstance(param.spec, StructSpec):
        lhs = param.spec.production.lhs
        node_class = getattr(lhs, "node_class", None)
        if node_class is not None:
            return node_class
    symbol = param.symbol
    return getattr(symbol, "node_class", None)


def _compare_node_classes(a: Param, b: Param) -> int:
    class_a = _effective_node_class(a)
    class_b = _effective_node_class(b)
    if class_a is None or class_b is None or class_a is class_b:
        return EQUAL
    if issubclass(class_a, class_b):
        return MORE
    if issubclass(class_b, class_a):
        return LESS
    return EQUAL


def _compare_specs(a: Optional[Specializer], b: Optional[Specializer], env) -> int:
    if a is None and b is None:
        return EQUAL
    if b is None:
        return MORE
    if a is None:
        return LESS
    if isinstance(a, StructSpec) and isinstance(b, StructSpec):
        if a.production is not b.production:
            return EQUAL  # cannot co-apply
        return _combine(
            compare_params(sub_a, sub_b, env)
            for sub_a, sub_b in zip(a.subparams, b.subparams)
        )
    if isinstance(a, GroupSpec) and isinstance(b, GroupSpec):
        if (a.content_symbol is not b.content_symbol
                or len(a.element_params) != len(b.element_params)):
            return EQUAL
        return _combine(
            compare_params(sub_a, sub_b, env)
            for sub_a, sub_b in zip(a.element_params, b.element_params)
        )
    if isinstance(a, TypeSpec) and isinstance(b, TypeSpec):
        if a.type_parts == b.type_parts and a.dims == b.dims:
            return EQUAL
        if env is None:
            return EQUAL
        resolved_a = a.resolve(env)
        resolved_b = b.resolve(env)
        if resolved_a.is_subtype_of(resolved_b):
            return MORE
        if resolved_b.is_subtype_of(resolved_a):
            return LESS
        return EQUAL
    # Mixed kinds, token specs, class specs: exact-match semantics, so
    # two *different* specs cannot co-apply; identical ones are equal.
    return EQUAL


def _combine(outcomes) -> int:
    """Fold sub-position comparisons: any crossing poisons the result."""
    combined = EQUAL
    for outcome in outcomes:
        if outcome == CROSS:
            return CROSS
        if outcome == EQUAL:
            continue
        if combined == EQUAL:
            combined = outcome
        elif combined != outcome:
            return CROSS
    return combined
