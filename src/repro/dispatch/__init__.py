"""Mayan dispatch: multimethods on grammar productions.

"Each time a production is reduced, the parser dispatches to the
appropriate Mayan.  This Mayan is selected by first finding all Mayans
applicable to the production's right-hand side, then choosing the most
applicable Mayan from this set." (paper section 4.4)
"""

from repro.dispatch.specializers import (
    ClassSpec,
    Param,
    Specializer,
    StructSpec,
    TokenSpec,
    TypeSpec,
    compare_params,
    match_param,
)
from repro.dispatch.dispatcher import (
    AmbiguousDispatchError,
    DispatchError,
    Dispatcher,
    ExpansionTooDeepError,
    MayanExpansionError,
    NoApplicableMayanError,
)
from repro.dispatch.mayan import Mayan, MetaProgram, MetaProgramGroup

__all__ = [
    "AmbiguousDispatchError",
    "ClassSpec",
    "DispatchError",
    "Dispatcher",
    "ExpansionTooDeepError",
    "Mayan",
    "MayanExpansionError",
    "MetaProgram",
    "MetaProgramGroup",
    "NoApplicableMayanError",
    "Param",
    "Specializer",
    "StructSpec",
    "TokenSpec",
    "TypeSpec",
    "compare_params",
    "match_param",
]
