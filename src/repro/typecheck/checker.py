"""Expression typing and statement checking.

``static_type_of`` implements the paper's
``Expression.getStaticType()``: it is callable at any point during
parsing (Mayan dispatch calls it for static-type specializers) and
caches its result on the node.  Dotted names are resolved with the
JLS "ambiguous name" rules, honoring resolution hints embedded by
referentially transparent templates.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ast import nodes as n
from repro.diag import Diagnostic, DiagnosticError, SourceSpan
from repro.obs import lazy as obs_lazy
from repro.types import (
    ArrayType,
    BOOLEAN,
    CHAR,
    ClassType,
    DOUBLE,
    ERROR,
    ErrorType,
    INT,
    LONG,
    NULL,
    PrimitiveType,
    Type,
    TypeError_,
    array_of,
    binary_numeric_promotion,
    can_assign,
    can_cast,
)
from repro.typecheck.env import Scope

_PRIM_BY_LITERAL = {
    "int": INT,
    "long": LONG,
    "double": DOUBLE,
    "char": CHAR,
    "boolean": BOOLEAN,
}


class CheckError(DiagnosticError):
    """A static semantic error."""

    phase = "check"

    def __init__(self, message: str, node=None):
        location = getattr(node, "location", None)
        super().__init__(f"{location}: {message}" if location else message)
        self.node = node
        self.location = location
        self.diagnostic = Diagnostic(
            message, phase="check",
            span=SourceSpan.from_location(location), cause=self,
        )
        # Errors inside generated code point back at the use site via
        # the node's provenance chain ("expanded from ..." notes).
        from repro.trace import provenance_notes

        for note in provenance_notes(node):
            self.diagnostic.with_note(note)


# ---------------------------------------------------------------------------
# Types from syntax
# ---------------------------------------------------------------------------


def resolve_type_name(type_name: n.TypeName, scope: Scope) -> Type:
    """Resolve a syntactic type against a scope's environment."""
    if isinstance(type_name, n.StrictTypeName):
        return array_of(type_name.type, type_name.dims) \
            if type_name.dims else type_name.type
    if scope is None or scope.env is None:
        raise CheckError(f"no scope to resolve type {type_name}", type_name)
    env = scope.env
    try:
        return env.registry.resolve_type(
            type_name.base, type_name.dims, env.imports, env.package
        )
    except TypeError_ as error:
        raise CheckError(str(error), type_name) from None


# ---------------------------------------------------------------------------
# Name resolution (JLS ambiguous names, simplified)
# ---------------------------------------------------------------------------


def resolve_name(expr: n.NameExpr, scope: Scope):
    """Resolve a dotted name; caches a structured resolution on the node.

    The resolution is ``(kind, base, fields)`` where kind is "local",
    "this_field", or "static"; ``fields`` is the chain of Field objects
    applied after the base.  A pure class reference resolves to
    ("class", ClassType, []).
    """
    if expr.resolution is not None:
        return expr.resolution
    if scope is None:
        scope = expr.scope
    if scope is None:
        raise CheckError(f"name {expr} has no scope", expr)
    parts = expr.parts
    env = scope.env

    hint = getattr(expr, "resolution_hint", None)
    if hint is not None:
        klass, consumed = hint
        base: Tuple[str, object] = ("class", klass)
        index = consumed
    else:
        first = parts[0]
        binding = scope.lookup(first)
        if binding is not None:
            base = ("local", binding)
            index = 1
        else:
            field = scope.owner.find_field(first) if scope.owner else None
            if field is not None:
                base = ("this_field", field)
                index = 1
            else:
                base = None
                for k in range(len(parts), 0, -1):
                    klass = env.registry.resolve(parts[:k], env.imports, env.package)
                    if klass is not None:
                        base = ("class", klass)
                        index = k
                        break
                if base is None:
                    raise CheckError(f"unknown name {'.'.join(parts)}", expr)

    kind, payload = base
    fields: List = []
    if kind == "local":
        current = payload.type
    elif kind == "this_field":
        fields.append(payload)
        current = payload.type
    else:
        current = payload  # a ClassType used as a static context

    for segment in parts[index:]:
        if kind == "class" and not fields:
            field = payload.find_field(segment)
            if field is None or not field.is_static:
                raise CheckError(
                    f"no static field {segment} in {payload.name}", expr
                )
            fields.append(field)
            current = field.type
            kind = "static"
        else:
            field = _instance_field(current, segment, expr)
            fields.append(field)
            current = field.type if field is not None else INT

    if kind == "class" and not fields:
        expr.resolution = ("class", payload, [])
    else:
        expr.resolution = (kind if kind != "class" else "static", payload, fields)
    return expr.resolution


_LENGTH_FIELD = object()


def _instance_field(current: Type, name: str, expr):
    if isinstance(current, ArrayType) and name == "length":
        return None  # sentinel: array length (type int)
    if isinstance(current, ErrorType):
        from repro.types import Field

        return Field(name, ERROR)  # poison propagates, no cascade error
    if not isinstance(current, ClassType):
        raise CheckError(f"{current} has no field {name}", expr)
    field = current.find_field(name)
    if field is None:
        raise CheckError(f"no field {name} in {current.name}", expr)
    return field


# ---------------------------------------------------------------------------
# Expression typing
# ---------------------------------------------------------------------------


def static_type_of(expr) -> Type:
    """The static type of an expression (cached on the node)."""
    cached = getattr(expr, "_static_type", None)
    if cached is not None:
        return cached
    computed = _type_of(expr)
    expr._static_type = computed
    return computed


def _string_type(scope: Scope) -> ClassType:
    return scope.env.registry.require("java.lang.String")


def _type_of(expr) -> Type:
    scope = expr.scope
    if isinstance(expr, n.Literal):
        if expr.kind == "null":
            return NULL
        if expr.kind == "String":
            return _string_type(scope)
        return _PRIM_BY_LITERAL[expr.kind]

    if isinstance(expr, n.NameExpr):
        kind, payload, fields = resolve_name(expr, scope)
        if kind == "class":
            raise CheckError(f"{expr} names a class, not a value", expr)
        if fields:
            last = fields[-1]
            return INT if last is None else last.type
        return payload.type  # local binding

    if isinstance(expr, n.Reference):
        binding = expr.binding
        if isinstance(binding, n.Formal):
            return binding.get_type()
        if hasattr(binding, "type"):
            return binding.type
        # A bare name: resolve it in the reference's scope.
        resolved = expr.scope.lookup(str(binding)) if expr.scope else None
        if resolved is None:
            raise CheckError(f"unresolved Reference {binding}", expr)
        return resolved.type

    if isinstance(expr, n.ThisExpr):
        if scope is None or scope.this_type is None:
            raise CheckError("'this' used outside an instance context", expr)
        return scope.this_type

    if isinstance(expr, n.ParenExpr):
        return static_type_of(expr.inner)

    if isinstance(expr, n.FieldAccess):
        return _field_access_type(expr)

    if isinstance(expr, n.ArrayAccess):
        array_type = static_type_of(expr.array)
        if isinstance(array_type, ErrorType):
            _require(expr.index, INT, "array index")
            return ERROR
        if not isinstance(array_type, ArrayType):
            raise CheckError(f"indexing non-array type {array_type}", expr)
        _require(expr.index, INT, "array index")
        return array_type.element

    if isinstance(expr, n.MethodInvocation):
        return _invocation_type(expr)

    if isinstance(expr, n.NewObject):
        klass = resolve_type_name(expr.type_name, expr.scope or scope)
        if not isinstance(klass, ClassType):
            raise CheckError(f"cannot instantiate {klass}", expr)
        if klass.is_interface or "abstract" in klass.modifiers:
            raise CheckError(f"cannot instantiate abstract {klass.name}", expr)
        arg_types = [static_type_of(a) for a in expr.args]
        try:
            ctor = klass.find_constructor(arg_types)
        except TypeError_ as error:
            raise CheckError(str(error), expr) from None
        expr.target = ("ctor", klass, ctor)
        return klass

    if isinstance(expr, n.NewArray):
        element = resolve_type_name(expr.element_type, expr.scope or scope)
        for dim in expr.dim_exprs:
            _require(dim, INT, "array dimension")
        dims = len(expr.dim_exprs) + expr.extra_dims
        if expr.initializer is not None:
            dims = max(dims, 1)
        return array_of(element, dims)

    if isinstance(expr, n.ArrayInitializer):
        element: Optional[Type] = None
        for value in expr.elements:
            element = element or static_type_of(value)
        object_type = scope.env.registry.require("java.lang.Object") \
            if scope and scope.env else None
        return array_of(element if element is not None else object_type)

    if isinstance(expr, n.UnaryExpr):
        operand = static_type_of(expr.operand)
        if expr.op == "!":
            _require(expr.operand, BOOLEAN, "'!' operand")
            return BOOLEAN
        if expr.op == "~":
            return binary_numeric_promotion(operand, INT)
        if expr.op in ("++", "--"):
            return operand
        return binary_numeric_promotion(operand, INT) \
            if isinstance(operand, PrimitiveType) else operand

    if isinstance(expr, n.PostfixExpr):
        return static_type_of(expr.operand)

    if isinstance(expr, n.BinaryExpr):
        return _binary_type(expr)

    if isinstance(expr, n.InstanceofExpr):
        resolve_type_name(expr.type_name, expr.scope or scope)
        return BOOLEAN

    if isinstance(expr, n.CastExpr):
        target = resolve_type_name(expr.type_name, expr.scope or scope)
        source = static_type_of(expr.expr)
        if not can_cast(source, target):
            raise CheckError(f"cannot cast {source} to {target}", expr)
        return target

    if isinstance(expr, n.Assignment):
        lhs_type = static_type_of(expr.lhs)
        value_type = static_type_of(expr.value)
        if expr.op == "=" and not can_assign(value_type, lhs_type):
            raise CheckError(
                f"cannot assign {value_type} to {lhs_type}", expr
            )
        return lhs_type

    if isinstance(expr, n.ConditionalExpr):
        _require(expr.cond, BOOLEAN, "conditional")
        then_type = static_type_of(expr.then_expr)
        else_type = static_type_of(expr.else_expr)
        if can_assign(else_type, then_type):
            return then_type
        if can_assign(then_type, else_type):
            return else_type
        if isinstance(then_type, PrimitiveType) and isinstance(else_type, PrimitiveType):
            return binary_numeric_promotion(then_type, else_type)
        raise CheckError(
            f"incompatible conditional arms {then_type} / {else_type}", expr
        )

    if isinstance(expr, n.SuperExpr):
        if scope is None or scope.this_type is None or scope.this_type.superclass is None:
            raise CheckError("'super' used outside an instance context", expr)
        return scope.this_type.superclass

    raise CheckError(f"cannot type {type(expr).__name__}", expr)


def _require(expr, expected: Type, what: str) -> None:
    actual = static_type_of(expr)
    if not can_assign(actual, expected):
        raise CheckError(f"{what} must be {expected}, got {actual}", expr)


def _field_access_type(expr: n.FieldAccess) -> Type:
    receiver = expr.receiver
    if isinstance(receiver, n.SuperExpr):
        owner = expr.scope.this_type.superclass if expr.scope.this_type else None
        if owner is None:
            raise CheckError("'super' has no superclass here", expr)
        receiver_type: Type = owner
    else:
        receiver_type = static_type_of(receiver)
    field = _instance_field(receiver_type, expr.name, expr)
    expr.field = field
    return INT if field is None else field.type


def _binary_type(expr: n.BinaryExpr) -> Type:
    op = expr.op
    left = static_type_of(expr.left)
    right = static_type_of(expr.right)
    if isinstance(left, ErrorType) or isinstance(right, ErrorType):
        return BOOLEAN if op in ("==", "!=", "<", ">", "<=", ">=",
                                 "&&", "||") else ERROR
    scope = expr.scope
    if op == "+":
        string_type = _string_type(scope) if scope and scope.env else None
        if string_type is not None and (left is string_type or right is string_type):
            return string_type
    if op in ("==", "!="):
        return BOOLEAN
    if op in ("<", ">", "<=", ">="):
        if not (isinstance(left, PrimitiveType) and isinstance(right, PrimitiveType)):
            raise CheckError(f"cannot compare {left} and {right}", expr)
        return BOOLEAN
    if op in ("&&", "||"):
        _require(expr.left, BOOLEAN, f"'{op}' operand")
        _require(expr.right, BOOLEAN, f"'{op}' operand")
        return BOOLEAN
    if op in ("&", "|", "^") and left is BOOLEAN and right is BOOLEAN:
        return BOOLEAN
    if not (isinstance(left, PrimitiveType) and isinstance(right, PrimitiveType)):
        raise CheckError(f"operator {op} needs numeric operands, got "
                         f"{left} and {right}", expr)
    return binary_numeric_promotion(left, right)


# ---------------------------------------------------------------------------
# Invocation typing
# ---------------------------------------------------------------------------


def _invocation_type(expr: n.MethodInvocation) -> Type:
    method_name = expr.method
    scope = expr.scope or method_name.scope
    arg_types = [static_type_of(a) for a in expr.args]
    name = method_name.simple_name

    # Explicit constructor calls this(...) / super(...)
    if name in ("<this>", "<super>"):
        owner = scope.this_type
        target = owner if name == "<this>" else owner.superclass
        ctor = target.find_constructor(arg_types)
        expr.target = ("ctor_call", target, ctor)
        from repro.types import VOID

        return VOID

    receiver = method_name.receiver
    if receiver is None:
        parts = method_name.parts
        if len(parts) == 1:
            # Unqualified call: the enclosing class.
            owner = scope.owner if scope else None
            if owner is None:
                raise CheckError(f"no enclosing class for call {name}", expr)
            method = _find(owner, name, arg_types, expr)
            kind = "static" if method.is_static else "this"
            expr.target = (kind, owner, method)
            return method.return_type
        # Qualified: resolve the prefix as an ambiguous name.
        prefix = n.NameExpr(parts[:-1], location=method_name.location)
        prefix.scope = scope
        kind, payload, fields = resolve_name(prefix, scope)
        if kind == "class" and not fields:
            method = _find(payload, name, arg_types, expr, static_only=True)
            expr.target = ("static", payload, method)
            expr.receiver_chain = None
            return method.return_type
        receiver_type = fields[-1].type if fields else payload.type
        method = _find_on_type(receiver_type, name, arg_types, expr)
        expr.target = ("instance", prefix, method)
        return method.return_type

    if isinstance(receiver, n.SuperExpr):
        owner = scope.this_type.superclass
        method = _find(owner, name, arg_types, expr)
        expr.target = ("super", owner, method)
        return method.return_type

    receiver_type = static_type_of(receiver)
    method = _find_on_type(receiver_type, name, arg_types, expr)
    expr.target = ("instance", receiver, method)
    return method.return_type


def _find_on_type(receiver_type: Type, name, arg_types, expr):
    if isinstance(receiver_type, ErrorType):
        from repro.types import Method

        return Method(str(name), arg_types, ERROR)  # poisoned call
    if not isinstance(receiver_type, ClassType):
        raise CheckError(
            f"cannot call {name} on {receiver_type}", expr
        )
    return _find(receiver_type, name, arg_types, expr)


def _find(klass: ClassType, name, arg_types, expr, static_only=False):
    try:
        method = klass.find_method(name, arg_types)
    except TypeError_ as error:
        raise CheckError(str(error), expr) from None
    if static_only and not method.is_static:
        raise CheckError(
            f"{klass.name}.{name} is not static", expr
        )
    return method


# ---------------------------------------------------------------------------
# Statement checking
# ---------------------------------------------------------------------------


def _engine_of(scope: Scope):
    """The diagnostic engine reachable from a scope, if any."""
    return getattr(getattr(scope, "env", None), "diag", None)


def _recover(scope: Scope, error: CheckError) -> None:
    """Record a check error and continue (multi-error recovery), or
    re-raise when no engine is reachable / the error budget is spent."""
    engine = _engine_of(scope)
    if engine is None or not engine.try_absorb(error, "check"):
        raise error


def check_block(block: n.BlockStmts, scope: Scope) -> None:
    """Check a statement list, forcing lazies and extending scope.

    A statement that fails to check records a diagnostic and is skipped
    (its expressions are poisoned with ErrorType where bindings matter),
    so one bad statement no longer hides every later error.
    """
    stmts = block.stmts
    index = 0
    while index < len(stmts):
        stmt = stmts[index]
        if isinstance(stmt, n.LazyNode):
            obs_lazy.thunk_forcing(stmt)
            forced = stmt.force(scope)
            if isinstance(forced, n.BlockStmts):
                stmts[index:index + 1] = forced.stmts
                continue
            stmts[index] = forced
            stmt = forced
        try:
            check_statement(stmt, scope)
        except CheckError as error:
            _recover(scope, error)
        index += 1
    # Record how many bindings the enclosing method has declared so far.
    # The outermost body block is checked last, so its stamp is the full
    # per-method count; the closure backend sizes slot frames from it.
    root = scope.local_root()
    if root is not None:
        block.declared_locals = root.locals_declared


def check_statement(stmt, scope: Scope) -> None:
    if isinstance(stmt, n.LazyNode):
        obs_lazy.thunk_forcing(stmt)
        check_statement(stmt.force(scope), scope)
        return
    stmt.scope = scope

    if isinstance(stmt, n.Block):
        check_block(stmt.body, scope.child())
    elif isinstance(stmt, n.LocalVarDecl):
        _check_local_var(stmt, scope)
    elif isinstance(stmt, n.ExprStmt):
        _check_expr(stmt.expr, scope)
    elif isinstance(stmt, n.IfStmt):
        _check_expr(stmt.cond, scope)
        _require(stmt.cond, BOOLEAN, "if condition")
        check_statement(stmt.then_stmt, scope.child())
        if stmt.else_stmt is not None:
            check_statement(stmt.else_stmt, scope.child())
    elif isinstance(stmt, n.WhileStmt):
        _check_expr(stmt.cond, scope)
        _require(stmt.cond, BOOLEAN, "while condition")
        check_statement(stmt.body, scope.child())
    elif isinstance(stmt, n.DoStmt):
        check_statement(stmt.body, scope.child())
        _check_expr(stmt.cond, scope)
        _require(stmt.cond, BOOLEAN, "do-while condition")
    elif isinstance(stmt, n.ForStmt):
        inner = scope.child()
        if isinstance(stmt.init, n.LocalVarDecl):
            check_statement(stmt.init, inner)
        elif isinstance(stmt.init, list):
            for init_expr in stmt.init:
                _check_expr(init_expr, inner)
        if stmt.cond is not None:
            _check_expr(stmt.cond, inner)
            _require(stmt.cond, BOOLEAN, "for condition")
        check_statement(stmt.body, inner.child())
        for update in stmt.update:
            _check_expr(update, inner)
    elif isinstance(stmt, n.ReturnStmt):
        if stmt.expr is not None:
            _check_expr(stmt.expr, scope)
            actual = static_type_of(stmt.expr)
            expected = scope.return_type
            if expected is not None and not can_assign(actual, expected):
                raise CheckError(
                    f"cannot return {actual} from method returning {expected}",
                    stmt,
                )
    elif isinstance(stmt, n.ThrowStmt):
        _check_expr(stmt.expr, scope)
        thrown = static_type_of(stmt.expr)
        throwable = scope.env.registry.get("java.lang.Throwable") \
            if scope and scope.env else None
        if throwable is not None and not thrown.is_subtype_of(throwable):
            raise CheckError(f"cannot throw non-Throwable {thrown}", stmt)
    elif isinstance(stmt, n.TryStmt):
        check_block(stmt.body, scope.child())
        throwable = scope.env.registry.get("java.lang.Throwable")
        for clause in stmt.catches:
            clause.scope = scope
            catch_scope = scope.child()
            if clause.formal.type_name.scope is None or True:
                clause.formal.type_name.scope = catch_scope
            caught = resolve_type_name(clause.formal.type_name, catch_scope)
            if throwable is not None and not caught.is_subtype_of(throwable):
                raise CheckError(
                    f"cannot catch non-Throwable {caught}", clause
                )
            clause.formal.scope = catch_scope
            clause.caught_type = caught
            catch_scope.define(clause.formal.name.name, caught, "param",
                               clause.formal)
            check_block(clause.body, catch_scope)
        if stmt.finally_body is not None:
            check_block(stmt.finally_body, scope.child())
    elif isinstance(stmt, n.UseStmt):
        body = n.BlockStmts(stmt.body)
        check_block(body, scope.child())
        stmt.body = body.stmts
    elif isinstance(stmt, (n.EmptyStmt, n.BreakStmt, n.ContinueStmt)):
        pass
    else:
        raise CheckError(f"cannot check {type(stmt).__name__}", stmt)


def _check_local_var(stmt: n.LocalVarDecl, scope: Scope) -> None:
    if isinstance(stmt.type_name, n.StrictTypeName) or stmt.type_name.scope is None:
        stmt.type_name.scope = scope
    try:
        declared = resolve_type_name(stmt.type_name, scope)
    except CheckError as error:
        _recover(scope, error)
        declared = ERROR
    for name_ident, dims, init in stmt.bindings():
        var_type = array_of(declared, dims) \
            if dims and not isinstance(declared, ErrorType) else declared
        if init is not None:
            # Recover per initializer: the variable is still defined
            # (poisoned if need be) so later uses don't cascade.
            try:
                _check_expr(init, scope)
                if not isinstance(init, n.ArrayInitializer):
                    init_type = static_type_of(init)
                    if not can_assign(init_type, var_type):
                        raise CheckError(
                            f"cannot initialize {var_type} {name_ident} "
                            f"with {init_type}", stmt
                        )
            except CheckError as error:
                _recover(scope, error)
        scope.define(name_ident.name, var_type, "local", stmt)


def _check_expr(expr, scope: Scope) -> None:
    """Attach the checker's scope to an expression subtree and type it.

    The checker is the authority on lexical structure: it re-attaches
    scopes (parse-time scopes were only provisional, used for Mayan
    dispatch), then forces a full typing of the expression.
    """
    _attach_scopes(expr, scope)
    static_type_of(expr)


def _attach_scopes(node, scope: Scope) -> None:
    if isinstance(node, n.Node) and not isinstance(node, n.LazyNode):
        node.scope = scope
        for child in node.children():
            _attach_scopes(child, scope)
