"""Lexical scopes and bindings."""

from __future__ import annotations

from typing import Dict, Optional

from repro.types import ClassType, Type


class Binding:
    """A named value binding (local variable or parameter)."""

    __slots__ = ("name", "type", "kind", "node")

    def __init__(self, name: str, type_: Type, kind: str = "local", node=None):
        self.name = name
        self.type = type_
        self.kind = kind
        self.node = node

    def __repr__(self):
        return f"<{self.kind} {self.name}: {self.type}>"


class Scope:
    """A lexical scope chain.

    The root scope of a compilation carries the environment (registry,
    imports, package); method scopes carry the owning class and ``this``
    type; block scopes nest.
    """

    __slots__ = ("parent", "bindings", "env", "owner", "this_type",
                 "return_type", "static_context", "locals_declared",
                 "_local_names")

    def __init__(self, parent: Optional["Scope"] = None, env=None):
        self.parent = parent
        self.bindings: Dict[str, Binding] = {}
        self.env = env if env is not None else (parent.env if parent else None)
        self.owner: Optional[ClassType] = parent.owner if parent else None
        self.this_type: Optional[ClassType] = parent.this_type if parent else None
        self.return_type: Optional[Type] = parent.return_type if parent else None
        self.static_context: bool = parent.static_context if parent else False
        #: On method-root scopes: how many *distinct* names have been
        #: bound anywhere under this scope (params, locals, catch
        #: formals).  Both execution backends use one storage cell per
        #: name per invocation, so this is the method's frame size; the
        #: closure backend sizes slot frames from the checker's stamp
        #: of it.  None on non-root scopes (counts bubble to the root).
        self.locals_declared: Optional[int] = None
        self._local_names: Optional[set] = None

    def child(self) -> "Scope":
        return Scope(self)

    def method_scope(self, owner: ClassType, static: bool,
                     return_type: Type) -> "Scope":
        scope = Scope(self)
        scope.owner = owner
        scope.this_type = None if static else owner
        scope.static_context = static
        scope.return_type = return_type
        scope.locals_declared = 0
        scope._local_names = set()
        return scope

    def local_root(self) -> Optional["Scope"]:
        """The nearest enclosing scope that counts declared locals (the
        method root), or None outside any method."""
        scope: Optional[Scope] = self
        while scope is not None:
            if scope.locals_declared is not None:
                return scope
            scope = scope.parent
        return None

    def class_scope(self, owner: ClassType) -> "Scope":
        scope = Scope(self)
        scope.owner = owner
        scope.this_type = owner
        return scope

    def define(self, name: str, type_: Type, kind: str = "local", node=None) -> Binding:
        binding = Binding(name, type_, kind, node)
        self.bindings[name] = binding
        root = self.local_root()
        if root is not None and name not in root._local_names:
            root._local_names.add(name)
            root.locals_declared += 1
        return binding

    def lookup(self, name: str) -> Optional[Binding]:
        scope: Optional[Scope] = self
        while scope is not None:
            binding = scope.bindings.get(name)
            if binding is not None:
                return binding
            scope = scope.parent
        return None
