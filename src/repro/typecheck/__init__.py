"""Lazy type checking, interleaved with parsing.

Types are computed on demand: ``static_type_of`` is called both by the
Mayan dispatcher (static-type specializers) *during parsing* and by the
class-compiler phase afterwards.  Scopes are built incrementally by the
statement-at-a-time block driver, so a binding created by one statement
(or by a Mayan's expansion) is visible to later, lazily parsed code.
"""

from repro.typecheck.env import Binding, Scope
from repro.typecheck.checker import (
    CheckError,
    check_block,
    check_statement,
    resolve_name,
    resolve_type_name,
    static_type_of,
)

__all__ = [
    "Binding",
    "CheckError",
    "Scope",
    "check_block",
    "check_statement",
    "resolve_name",
    "resolve_type_name",
    "static_type_of",
]
