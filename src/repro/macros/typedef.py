"""Typedef: local Mayans closing over enclosing state (paper figure 3).

``typedef (Alias = some.Class) { ... }`` makes ``Alias`` denote the
class inside the block.  The implementation mirrors the paper exactly:
a *local* Mayan (``_Subst``) defined on the name-to-type production
closes over the alias and replacement, and a UseStmt exposes it to the
lazily parsed body.
"""

from __future__ import annotations

from repro.ast.nodes import StrictTypeName
from repro.dispatch import Mayan, MetaProgram


class _Subst(Mayan):
    """The local Mayan: substitutes the type alias, or defers.

    Defined on ``TypeName -> QName`` so every type name in the body is
    compared against the alias; non-matches fall through with
    nextRewrite (paper figure 3: "resolve this name normally").
    """

    result = "TypeName"
    pattern = "QName name"

    def __init__(self, alias: str, replacement):
        super().__init__()
        self.alias = alias
        self.replacement = replacement

    def expand(self, ctx, name):
        if name.parts == (self.alias,):
            return StrictTypeName.make(self.replacement)
        return ctx.next_rewrite()


class TypedefMayan(Mayan):
    result = "Statement"
    pattern = (
        "typedef (Identifier var = QName val) "
        "lazy(BraceTree, BlockStmts) body"
    )

    def expand(self, ctx, var, val, body):
        replacement = ctx.resolve_type(".".join(val.parts))
        subst = _Subst(var.text, replacement)
        return ctx.use_in(subst, body)


class Typedef(MetaProgram):
    PRODUCTION = "typedef (UnboundLocal = QName) lazy(BraceTree, BlockStmts)"

    def run(self, env) -> None:
        env.add_production("Statement", self.PRODUCTION, tag="typedef_stmt")
        TypedefMayan().run(env)
