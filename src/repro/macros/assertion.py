"""The assert macro.

``assert(cond);`` and ``assert(cond, message);`` — no new production
needed: the Mayan overrides the base expression-statement semantics for
statements whose expression is a call to the identifier ``assert``
(value-dispatched, so ``assert`` is not a reserved word).
"""

from __future__ import annotations

from repro.ast import nodes as n
from repro.ast import to_source
from repro.dispatch import Mayan
from repro.javalang import node_symbol
from repro.patterns import Template

_ASSERT_TEMPLATE = Template(
    "Statement",
    "if (!($cond)) throw new java.lang.AssertionError($message);",
    cond="Expression",
    message="Expression",
)


class Assert(Mayan):
    result = "Statement"
    pattern = "assert (ArgList args) \\;"

    def expand(self, ctx, args):
        arg_list = ctx.parse_subtree(args, node_symbol("ArgList"))
        if not 1 <= len(arg_list) <= 2:
            raise ctx.error("assert takes (condition[, message])", ctx.location)
        cond = arg_list[0]
        if len(arg_list) == 2:
            message = arg_list[1]
        else:
            # Default message: the asserted source text.
            message = n.Literal("String", to_source(cond),
                                location=cond.location)
        return ctx.instantiate(_ASSERT_TEMPLATE, cond=cond, message=message)
