"""Collection comprehensions, layered on foreach.

``collect(target, elem : Formal : source);`` appends ``elem`` (with the
formal bound) to ``target`` for every element of ``source``.  The
expansion *generates foreach syntax*, demonstrating macro layering:
instantiating the template re-dispatches the foreach Mayans.
"""

from __future__ import annotations

from repro.dispatch import Mayan, MetaProgram
from repro.macros.foreach import ForEach
from repro.patterns import Template

_COLLECT_TEMPLATE = Template(
    "Statement",
    "$src.foreach($var) { $target.addElement($elem); }",
    src="Expression",
    var="Formal",
    target="Expression",
    elem="Expression",
)


class Collect(MetaProgram):
    """Declares the collect statement and its Mayan.

    The production uses a multi-symbol paren group, so the group's
    pieces arrive as a SyntaxList: (target, ',', elem, ':', formal,
    ':', source).
    """

    PRODUCTION = (
        "collect (Expression , Expression \\: Formal \\: Expression) \\;"
    )

    def __init__(self):
        self.foreach = ForEach()

    def run(self, env) -> None:
        self.foreach.run(env)
        env.add_production("Statement", self.PRODUCTION, tag="collect_stmt")
        _CollectBody().run(env)


class _CollectBody(Mayan):
    result = "Statement"
    pattern = (
        "collect (Expression target , Expression elem "
        "\\: Formal var \\: Expression source) \\;"
    )

    def expand(self, ctx, target, elem, var, source):
        return ctx.instantiate(
            _COLLECT_TEMPLATE,
            src=source,
            var=var,
            target=target,
            elem=elem,
        )
