"""The foreach macros (paper section 3, figures 2 and 7).

One production, several Mayans chosen by multiple dispatch:

* ``EForEach`` — receivers of static type java.util.Enumeration
  (figure 2's general expansion);
* ``EForEachName`` — the same for plain dotted-name receivers;
* ``AForEach`` — receivers of static array type;
* ``VForEach`` — receivers of the *syntactic shape*
  ``v.elements()`` where ``v : maya.util.Vector`` — the optimized
  expansion that avoids allocating an Enumeration and calling its
  methods (figure 7's specializer structure).

The production (paper section 3.1)::

    abstract Statement syntax(MethodName(Formal)
                              lazy(BraceTree, BlockStmts));
"""

from __future__ import annotations

from repro.ast.nodes import DeclStmt, Reference, StrictTypeName
from repro.dispatch import Mayan, MetaProgram
from repro.patterns import Template

FOREACH_PRODUCTION = "MethodName (Formal) lazy(BraceTree, BlockStmts)"

_ENUM_TEMPLATE = Template(
    "Statement",
    """
    for (java.util.Enumeration enumVar = $enumExp;
         enumVar.hasMoreElements(); ) {
        $declStmt
        $varRef = ($castType) enumVar.nextElement();
        $body
    }
    """,
    enumExp="Expression",
    declStmt="Statement",
    varRef="Expression",
    castType="TypeName",
    body="BlockStmts",
)

_ARRAY_TEMPLATE = Template(
    "Statement",
    """
    {
        java.lang.Object[] arr = $arrExp;
        int len = arr.length;
        for (int i = 0; i < len; i++) {
            $declStmt
            $varRef = ($castType) arr[i];
            $body
        }
    }
    """,
    arrExp="Expression",
    declStmt="Statement",
    varRef="Expression",
    castType="TypeName",
    body="BlockStmts",
)

_VECTOR_TEMPLATE = Template(
    "Statement",
    """
    {
        maya.util.Vector vec = $vecExp;
        int len = vec.size();
        java.lang.Object[] arr = vec.getElementData();
        for (int i = 0; i < len; i++) {
            $declStmt
            $varRef = ($castType) arr[i];
            $body
        }
    }
    """,
    vecExp="Expression",
    declStmt="Statement",
    varRef="Expression",
    castType="TypeName",
    body="BlockStmts",
)


def _expand_enum(ctx, enum_exp, var, body):
    cast_type = StrictTypeName.make(var.get_type())
    return ctx.instantiate(
        _ENUM_TEMPLATE,
        enumExp=enum_exp,
        declStmt=DeclStmt.make(var),
        varRef=Reference.make_expr(var),
        castType=cast_type,
        body=body,
    )


class EForEach(Mayan):
    """foreach over an Enumeration-typed receiver expression."""

    result = "Statement"
    pattern = (
        "Expression:java.util.Enumeration enumExp \\. foreach "
        "(Formal var) lazy(BraceTree, BlockStmts) body"
    )

    def expand(self, ctx, enumExp, var, body):
        return _expand_enum(ctx, enumExp, var, body)


class EForEachName(Mayan):
    """foreach over an Enumeration-typed *name* receiver."""

    result = "Statement"
    pattern = (
        "QName:java.util.Enumeration enumExp \\. foreach "
        "(Formal var) lazy(BraceTree, BlockStmts) body"
    )

    def expand(self, ctx, enumExp, var, body):
        return _expand_enum(ctx, enumExp, var, body)


class AForEach(Mayan):
    """foreach over an Object-array receiver."""

    result = "Statement"
    pattern = (
        "Expression:java.lang.Object[] arrExp \\. foreach "
        "(Formal var) lazy(BraceTree, BlockStmts) body"
    )

    def expand(self, ctx, arrExp, var, body):
        cast_type = StrictTypeName.make(var.get_type())
        return ctx.instantiate(
            _ARRAY_TEMPLATE,
            arrExp=arrExp,
            declStmt=DeclStmt.make(var),
            varRef=Reference.make_expr(var),
            castType=cast_type,
            body=body,
        )


class AForEachName(Mayan):
    """foreach over an Object-array *name* receiver."""

    result = "Statement"
    pattern = (
        "QName:java.lang.Object[] arrExp \\. foreach "
        "(Formal var) lazy(BraceTree, BlockStmts) body"
    )

    def expand(self, ctx, arrExp, var, body):
        return AForEach.expand(self, ctx, arrExp, var, body)


class VForEach(Mayan):
    """The optimized foreach: dispatches on both syntactic structure
    (a call to ``elements()``) and the receiver's static type
    (``maya.util.Vector``), so the expansion can walk the vector's
    backing array directly — "this code can avoid both object
    allocation and method calls" (paper section 3)."""

    result = "Statement"
    pattern = (
        "QName:maya.util.Vector v \\. elements ( ) \\. foreach "
        "(Formal var) lazy(BraceTree, BlockStmts) body"
    )

    def expand(self, ctx, v, var, body):
        cast_type = StrictTypeName.make(var.get_type())
        return ctx.instantiate(
            _VECTOR_TEMPLATE,
            vecExp=v,
            declStmt=DeclStmt.make(var),
            varRef=Reference.make_expr(var),
            castType=cast_type,
            body=body,
        )


class VForEachPrimary(VForEach):
    """VForEach for parenthesized/compound receivers."""

    pattern = (
        "Expression:maya.util.Vector v \\. elements ( ) \\. foreach "
        "(Formal var) lazy(BraceTree, BlockStmts) body"
    )


class ForEach(MetaProgram):
    """The aggregate metaprogram: declares the foreach production and
    imports every built-in foreach Mayan (paper section 3.3 describes
    ``maya.util.ForEach`` doing exactly this)."""

    def __init__(self):
        self.mayans = [
            EForEach(),
            EForEachName(),
            AForEach(),
            AForEachName(),
            VForEach(),
            VForEachPrimary(),
        ]

    def run(self, env) -> None:
        env.add_production("Statement", FOREACH_PRODUCTION, tag="foreach_stmt")
        for mayan in self.mayans:
            mayan.run(env)
