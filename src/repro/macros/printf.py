"""printf-style formatting with compile-time format checking.

``out.printf("%s = %d", name, count);`` — the format string is checked
*statically* against the argument count and static types, then the call
expands to a chain of string concatenations and a single println.
"""

from __future__ import annotations

import re
from typing import List

from repro.diag import DiagnosticError
from repro.ast import nodes as n
from repro.dispatch import Mayan
from repro.javalang import node_symbol
from repro.types import PrimitiveType

_DIRECTIVE = re.compile(r"%[sdfbc%]")

_EXPECTED = {
    "%d": ("byte", "short", "int", "long", "char"),
    "%f": ("float", "double"),
    "%b": ("boolean",),
    "%c": ("char",),
}


class PrintfError(DiagnosticError):
    """A format string mismatch, reported at compile time."""

    phase = "expand"


class Printf(Mayan):
    result = "MethodInvocation"
    pattern = "Expression:java.io.PrintStream out \\. printf (ArgList args)"

    def run(self, env):
        super().run(env)
        _PrintfName().run(env)

    def expand(self, ctx, out, args):
        arg_list = ctx.parse_subtree(args, node_symbol("ArgList"))
        if not arg_list or not isinstance(arg_list[0], n.Literal) \
                or arg_list[0].kind != "String":
            raise PrintfError(
                f"{ctx.location}: printf needs a literal format string"
            )
        format_string = arg_list[0].value
        values = arg_list[1:]
        pieces = self._check(format_string, values, ctx.location)
        concat = _concat(pieces, arg_list[0].location)
        call = n.MethodInvocation(
            n.MethodName(out, ("print",), location=ctx.location),
            [concat],
            location=ctx.location,
        )
        return call

    def _check(self, format_string: str, values: List, location) -> List:
        pieces: List = []
        cursor = 0
        value_index = 0
        for match in _DIRECTIVE.finditer(format_string):
            directive = match.group(0)
            if match.start() > cursor:
                pieces.append(format_string[cursor:match.start()])
            cursor = match.end()
            if directive == "%%":
                pieces.append("%")
                continue
            if value_index >= len(values):
                raise PrintfError(
                    f"{location}: format {directive} has no argument"
                )
            value = values[value_index]
            value_index += 1
            expected = _EXPECTED.get(directive)
            if expected is not None:
                actual = value.get_static_type()
                if not (isinstance(actual, PrimitiveType)
                        and actual.name in expected):
                    raise PrintfError(
                        f"{location}: {directive} expects "
                        f"{'/'.join(expected)}, got {actual}"
                    )
            pieces.append(value)
        if cursor < len(format_string):
            pieces.append(format_string[cursor:])
        if value_index != len(values):
            raise PrintfError(
                f"{location}: {len(values) - value_index} unused printf "
                f"arguments"
            )
        if "\\n" in format_string or format_string.endswith("\n"):
            pass
        return pieces


def _concat(pieces: List, location) -> n.Expression:
    """Fold pieces into a left-nested string concatenation."""
    expr: n.Expression = n.Literal("String", "", location=location)
    if pieces and isinstance(pieces[0], str):
        expr = n.Literal("String", pieces[0], location=location)
        pieces = pieces[1:]
    for piece in pieces:
        right = n.Literal("String", piece, location=location) \
            if isinstance(piece, str) else piece
        expr = n.BinaryExpr("+", expr, right, location=location)
    return expr


class _PrintfName(Printf):
    """printf on dotted-name receivers (e.g. ``System.out.printf``)."""

    pattern = "QName:java.io.PrintStream out \\. printf (ArgList args)"

    def run(self, env):
        Mayan.run(self, env)
