"""The standard macro library (paper section 3).

"Maya provides a macro library that includes features such as
assertions, printf-style string formatting, comprehension syntax for
building arrays and collections, and foreach syntax for walking them."

``install_macro_library(compiler)`` registers every metaprogram under
its ``maya.util`` name so application code can ``use`` it.
"""

from repro.macros.foreach import (
    AForEach,
    EForEach,
    EForEachName,
    ForEach,
    VForEach,
)
from repro.macros.assertion import Assert
from repro.macros.printf import Printf
from repro.macros.comprehension import Collect
from repro.macros.typedef import Typedef


def install_macro_library(compiler) -> None:
    """Register the maya.util metaprograms with a compiler."""
    compiler.provide("maya.util.ForEach", ForEach())
    compiler.provide("maya.util.EForEach", EForEach())
    compiler.provide("maya.util.Assert", Assert())
    compiler.provide("maya.util.Printf", Printf())
    compiler.provide("maya.util.Collect", Collect())
    compiler.provide("maya.util.Typedef", Typedef())


__all__ = [
    "AForEach",
    "Assert",
    "Collect",
    "EForEach",
    "EForEachName",
    "ForEach",
    "Printf",
    "Typedef",
    "VForEach",
    "install_macro_library",
]
