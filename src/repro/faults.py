"""Fault injection: prove failure modes degrade gracefully.

A hardened service earns its robustness claims by *demonstrating* them:
every recovery path in the daemon (cache quarantine, worker crash
containment, deadline enforcement, socket-error handling) has a named
**fault site**, and the test suite arms those sites to raise, hang, or
corrupt on demand and then asserts the service is still serving.

Faults are configured from the ``MAYA_FAULTS`` environment variable or
programmatically via :func:`configure`.  The spec is a comma-separated
list of arms::

    MAYA_FAULTS="worker.execute:crash:times=1,cache.disk.load:corrupt"

Each arm is ``site:mode[:key=value ...]`` where

* ``site`` names an instrumented checkpoint (see the ``SITE_*``
  constants below);
* ``mode`` is one of ``raise`` (raise :class:`InjectedFault`),
  ``hang`` (sleep ``secs``), ``crash`` (raise :class:`WorkerCrash`,
  simulating hard worker death), ``corrupt`` (the site substitutes
  garbage data), or ``disconnect`` (raise ``ConnectionResetError`` —
  for socket I/O sites);
* params: ``times=N`` fires only the first N hits (default:
  unlimited), ``after=N`` skips the first N hits, ``secs=S`` sets the
  hang duration (default 30).

Arms count down under a lock, so concurrent workers never double-fire
a ``times=1`` arm.  The registry costs one dict lookup per checkpoint
when armed and a single attribute read when not.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional

#: Instrumented checkpoints.  Keep in sync with the DESIGN fault table.
SITE_CACHE_LOAD = "cache.disk.load"
SITE_CODEGEN_CACHE_LOAD = "cache.codegen.load"
SITE_MODULE_CACHE_LOAD = "cache.module.load"
SITE_MODULE_IFACE = "cache.module.iface"
SITE_WORKER_EXECUTE = "worker.execute"
SITE_SOCKET_READ = "socket.read"
SITE_SOCKET_WRITE = "socket.write"

MODES = ("raise", "hang", "crash", "corrupt", "disconnect")


class FaultSpecError(ValueError):
    """A malformed ``MAYA_FAULTS`` spec."""


class InjectedFault(RuntimeError):
    """An injected ``raise``-mode fault (a recoverable internal error)."""

    def __init__(self, site: str):
        super().__init__(f"injected fault at {site}")
        self.site = site


class WorkerCrash(BaseException):
    """An injected hard worker death.

    Deliberately *not* an ``Exception``: ordinary recovery layers
    (Mayan error conversion, per-member recovery, the worker's own
    request handler) must not absorb it — only the worker pool's
    crash-containment boundary may."""

    def __init__(self, site: str):
        super().__init__(f"injected worker crash at {site}")
        self.site = site


class _Arm:
    """One armed fault: a site, a mode, and firing bookkeeping."""

    __slots__ = ("site", "mode", "secs", "_skip", "_remaining", "fired")

    def __init__(self, site: str, mode: str, secs: float = 30.0,
                 times: Optional[int] = None, after: int = 0):
        self.site = site
        self.mode = mode
        self.secs = secs
        self._skip = after
        self._remaining = times
        self.fired = 0

    @property
    def times(self) -> Optional[int]:
        """Firings left (None = unlimited)."""
        return self._remaining

    @property
    def after(self) -> int:
        """Hits still to be skipped before this arm fires."""
        return self._skip

    def take(self) -> bool:
        """Consume one firing (call with the plan lock held)."""
        if self._skip > 0:
            self._skip -= 1
            return False
        if self._remaining is not None:
            if self._remaining <= 0:
                return False
            self._remaining -= 1
        self.fired += 1
        return True

    def __repr__(self) -> str:
        return (f"<fault {self.site}:{self.mode} fired={self.fired} "
                f"remaining={self._remaining}>")


def _parse_arm(text: str) -> _Arm:
    fields = [f for f in text.strip().split(":") if f]
    if len(fields) < 2:
        raise FaultSpecError(
            f"fault arm {text!r} must be site:mode[:key=value ...]")
    site, mode, params = fields[0], fields[1], fields[2:]
    if mode not in MODES:
        raise FaultSpecError(
            f"unknown fault mode {mode!r} in {text!r} "
            f"(expected one of {', '.join(MODES)})")
    kwargs: Dict[str, object] = {}
    for param in params:
        key, sep, value = param.partition("=")
        if not sep:
            raise FaultSpecError(f"fault param {param!r} must be key=value")
        try:
            if key == "secs":
                kwargs["secs"] = float(value)
            elif key == "times":
                kwargs["times"] = int(value)
            elif key == "after":
                kwargs["after"] = int(value)
            else:
                raise FaultSpecError(
                    f"unknown fault param {key!r} in {text!r}")
        except ValueError as error:
            if isinstance(error, FaultSpecError):
                raise
            raise FaultSpecError(
                f"bad value for {key!r} in {text!r}") from None
    return _Arm(site, mode, **kwargs)


class FaultPlan:
    """The parsed arms of one ``MAYA_FAULTS`` spec."""

    def __init__(self, spec: str = ""):
        self.spec = spec or ""
        self._lock = threading.Lock()
        self._arms: Dict[str, List[_Arm]] = {}
        for chunk in self.spec.split(","):
            if chunk.strip():
                arm = _parse_arm(chunk)
                self._arms.setdefault(arm.site, []).append(arm)

    @classmethod
    def from_environment(cls) -> "FaultPlan":
        return cls(os.environ.get("MAYA_FAULTS", ""))

    @property
    def arms(self) -> List[_Arm]:
        """Every armed fault, grouped by site in spec order."""
        return [arm for arms in self._arms.values() for arm in arms]

    def __bool__(self) -> bool:
        return bool(self._arms)

    def _fire(self, site: str, modes: tuple) -> Optional[_Arm]:
        arms = self._arms.get(site)
        if not arms:
            return None
        with self._lock:
            for arm in arms:
                if arm.mode in modes and arm.take():
                    return arm
        return None

    def fired(self, site: str) -> int:
        """Total firings at a site (all modes) — for assertions."""
        return sum(arm.fired for arm in self._arms.get(site, ()))


#: The process-wide active plan.  Never None; an empty plan is inert.
_active: FaultPlan = FaultPlan(os.environ.get("MAYA_FAULTS", ""))


def configure(spec: Optional[str]) -> FaultPlan:
    """Install (and return) a fresh plan parsed from ``spec``."""
    global _active
    _active = FaultPlan(spec or "")
    return _active


def reset() -> None:
    """Disarm every fault."""
    configure("")


def active_plan() -> FaultPlan:
    return _active


def check(site: str) -> None:
    """The checkpoint: raise/hang/crash/disconnect if ``site`` is armed.

    ``corrupt`` arms are never fired here — sites that can substitute
    garbage data poll :func:`corrupting` instead."""
    plan = _active
    if not plan:
        return
    arm = plan._fire(site, ("raise", "hang", "crash", "disconnect"))
    if arm is None:
        return
    if arm.mode == "raise":
        raise InjectedFault(site)
    if arm.mode == "crash":
        raise WorkerCrash(site)
    if arm.mode == "disconnect":
        raise ConnectionResetError(f"injected disconnect at {site}")
    time.sleep(arm.secs)


def corrupting(site: str) -> bool:
    """True when a ``corrupt`` arm fires at ``site`` (consumes one)."""
    plan = _active
    if not plan:
        return False
    return plan._fire(site, ("corrupt",)) is not None
