"""A direct (non-Maya) multimethod compiler: the comparison baseline.

The paper compares the Maya-based MultiJava against Clifton's direct
modification of the kjc compiler.  This module is the analogous
baseline for our benchmarks: it implements the same multimethod
dispatch semantics by *hand-building* dispatcher ASTs from an explicit
specification, without any of Maya's machinery (no grammar extension,
no Mayans, no templates, no hygiene) — the style of code one writes
when patching a compiler directly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.ast import nodes as n
from repro.types import ClassType, Type, VOID


class DirectMultimethodCompiler:
    """Builds instanceof-chain dispatchers for explicitly listed cases.

    ``cases`` is a list of (specializer classes or None, impl name)
    pairs, most generic last.
    """

    def __init__(self, owner: ClassType, name: str,
                 param_types: Sequence[Type], return_type: Type):
        self.owner = owner
        self.name = name
        self.param_types = list(param_types)
        self.return_type = return_type
        self.cases: List[Tuple[List[Optional[ClassType]], str]] = []

    def add_case(self, specializers: Sequence[Optional[ClassType]],
                 impl_name: str) -> None:
        self.cases.append((list(specializers), impl_name))

    def build_dispatcher(self) -> n.MethodDecl:
        formal_names = [f"arg{i}" for i in range(len(self.param_types))]
        formals = [
            n.Formal([], n.StrictTypeName.make(t), n.Ident(name))
            for t, name in zip(self.param_types, formal_names)
        ]
        # Most generic case is the innermost else.
        ordered = sorted(
            self.cases,
            key=lambda case: sum(
                len(s.ancestors()) if s else 0 for s in case[0]
            ),
        )
        expr = self._call(ordered[0], formal_names)
        for case in ordered[1:]:
            expr = n.ConditionalExpr(
                self._test(case[0], formal_names),
                self._call(case, formal_names),
                expr,
            )
        if self.return_type is VOID:
            stmts = [n.ExprStmt(expr), n.ReturnStmt(None)]
        else:
            stmts = [n.ReturnStmt(expr)]
        return n.MethodDecl(
            ["public"],
            n.StrictTypeName.make(self.return_type),
            n.Ident(self.name),
            formals,
            [],
            n.BlockStmts(stmts),
        )

    def _test(self, specializers, formal_names) -> n.Expression:
        tests: List[n.Expression] = []
        for spec, name in zip(specializers, formal_names):
            if spec is None:
                continue
            tests.append(
                n.ParenExpr(
                    n.InstanceofExpr(
                        n.NameExpr((name,)), n.StrictTypeName.make(spec)
                    )
                )
            )
        expr = tests[0]
        for test in tests[1:]:
            expr = n.BinaryExpr("&&", expr, test)
        return expr

    def _call(self, case, formal_names) -> n.Expression:
        specializers, impl_name = case
        args: List[n.Expression] = []
        for spec, name in zip(specializers, formal_names):
            arg: n.Expression = n.NameExpr((name,))
            if spec is not None:
                arg = n.CastExpr(n.StrictTypeName.make(spec), arg)
            args.append(arg)
        return n.MethodInvocation(
            n.MethodName(n.ThisExpr(), (impl_name,)), args
        )
