"""MultiJava implemented on Maya (paper section 5).

MultiJava (Clifton et al., OOPSLA 2000) adds *open classes* (external
top-level methods) and *multimethods* (runtime dispatch on all
arguments) to Java with separate compilation.  The paper evaluates Maya
by implementing MultiJava in under 2,500 lines versus ~20,000 lines of
changes to the kjc compiler; this package is our reproduction of that
implementation, using the same Maya features:

* the extensible LALR(1) grammar for the two new syntactic forms,
* lexical tie-breaking to transparently retranslate ordinary method
  declarations,
* standard type information for MultiJava's checks,
* local Mayans for ``super`` sends inside multimethods,
* the figure-8 recursive generation of instanceof dispatchers.
"""

from repro.multijava.genericfn import (
    GenericFunction,
    MultiJavaError,
    MultiMethod,
)
from repro.multijava.metaprogram import MultiJava, install_multijava
from repro.multijava.baseline import DirectMultimethodCompiler

__all__ = [
    "DirectMultimethodCompiler",
    "GenericFunction",
    "MultiJava",
    "MultiJavaError",
    "MultiMethod",
    "install_multijava",
]
