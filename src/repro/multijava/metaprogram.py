"""The MultiJava metaprogram: grammar extensions, Mayans, and hooks.

Grammar extensions (paper 5.2):

* external methods — ``Declaration`` gains::

      list(Modifier) TypeName QName \\. Identifier (FormalList) Throws
      lazy(BraceTree, BlockStmts)

* parameter specializers — ``Formal`` gains::

      list(Modifier) TypeName \\@ TypeName UnboundLocal

Translation happens in two steps, as in the paper: Mayans annotate and
collect declarations while the parser runs, and the class-shaper hook
assembles generic functions, enforces MultiJava's checks, renames the
implementations to ``name$implK``, and adds the figure-8 dispatcher
method.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ast import nodes as n
from repro.dispatch import Mayan, MetaProgram
from repro.obs import lazy as obs_lazy
from repro.javalang import node_symbol
from repro.typecheck import Scope, check_block, resolve_type_name
from repro.types import ClassType, VOID
from repro.multijava.genericfn import GenericFunction, MultiJavaError, MultiMethod
from repro.multijava.supersend import SuperSend


class SpecializedFormal(Mayan):
    """Builds a Formal carrying its ``@`` specializer."""

    result = "Formal"
    pattern = (
        "list(Modifier) mods TypeName base \\@ TypeName spec "
        "UnboundLocal name"
    )

    def expand(self, ctx, mods, base, spec, name):
        formal = n.Formal(mods, base, name, location=base.location)
        formal.specializer_name = spec
        return formal


class ExternalMethodDecl(n.Declaration):
    """Marker node for a parsed external (open-class) method."""

    _fields = ("modifiers", "return_type", "receiver", "name", "formals",
               "throws", "body")


class ExternalMethod(Mayan):
    """Collects external method declarations for the unit hook."""

    result = "Declaration"
    pattern = (
        "list(Modifier) mods TypeName ret QName receiver \\. Identifier "
        "name (FormalList formalsTok) Throws thr "
        "lazy(BraceTree, BlockStmts) body"
    )

    def __init__(self, owner: "MultiJava"):
        super().__init__()
        self.owner = owner

    def expand(self, ctx, mods, ret, receiver, name, formalsTok, thr, body):
        formals = formalsTok
        if not isinstance(formals, list):
            formals = ctx.parse_subtree(formalsTok, node_symbol("FormalList"))
        decl = ExternalMethodDecl(mods, ret, receiver, n.Ident(name.text),
                                  formals, thr, body, location=ctx.location)
        self.owner.pending_externals.append((decl, ctx.env))
        return decl


class MultiJava(MetaProgram):
    """``use multijava.MultiJava;`` enables open classes and
    multimethods for the rest of the compilation unit."""

    EXTERNAL_PRODUCTION = (
        "list(Modifier) TypeName QName \\. Identifier (FormalList) Throws "
        "lazy(BraceTree, BlockStmts)"
    )
    FORMAL_PRODUCTION = (
        "list(Modifier) TypeName \\@ TypeName UnboundLocal"
    )

    def __init__(self):
        self.pending_externals: List[Tuple[ExternalMethodDecl, object]] = []
        self.generic_functions: Dict[Tuple[str, str], GenericFunction] = {}

    def run(self, env) -> None:
        env.add_production("Declaration", self.EXTERNAL_PRODUCTION,
                           tag="mj_external")
        env.add_production("Formal", self.FORMAL_PRODUCTION,
                           tag="mj_formal")
        SpecializedFormal().run(env)
        ExternalMethod(self).run(env)
        if self._hook not in env.class_hooks:
            env.class_hooks.append(self._hook)
        if self._unit_hook not in env.unit_hooks:
            env.unit_hooks.append(self._unit_hook)

    # ------------------------------------------------------------------
    # Class hook: multimethods declared inside class bodies.
    # ------------------------------------------------------------------

    def _hook(self, item, env) -> None:
        from repro.core import CompileContext

        klass: ClassType = item.type
        groups: Dict[Tuple[str, Tuple[str, ...]], List[n.MethodDecl]] = {}
        for member in item.decl.members:
            if not isinstance(member, n.MethodDecl):
                continue
            base_types = tuple(
                str(formal.type_name) for formal in member.formals
            )
            groups.setdefault((member.name.name, base_types), []).append(member)

        ctx = CompileContext(env)
        for (name, _), members in groups.items():
            specialized = [
                m for m in members
                if any(hasattr(f, "specializer_name") for f in m.formals)
            ]
            if not specialized:
                continue
            self._assemble(ctx, klass, item.decl, name, members, env)

    def _assemble(self, ctx, klass: ClassType, class_decl, name: str,
                  members: List[n.MethodDecl], env) -> None:
        scope = Scope(env=env)
        first = members[0]
        param_types = [
            self._resolve(f.type_name, scope) for f in first.formals
        ]
        return_type = self._resolve(first.return_type, scope)
        gf = GenericFunction(klass, name, param_types, return_type)
        self.generic_functions[(klass.name, name)] = gf

        # Remove the colliding shaped methods; redeclare as impls.
        for existing in list(klass.methods.get(name, ())):
            if len(existing.param_types) == len(param_types):
                klass.remove_method(existing)

        for index, member in enumerate(members):
            specializers = []
            impl_param_types = []
            for formal in member.formals:
                spec_name = getattr(formal, "specializer_name", None)
                base = self._resolve(formal.type_name, scope)
                if spec_name is None:
                    specializers.append(None)
                    impl_param_types.append(base)
                else:
                    spec = self._resolve(spec_name, scope)
                    specializers.append(spec)
                    impl_param_types.append(spec)
                    # Inside the body the parameter has the specializer
                    # type (MultiJava's semantics).
                    formal.type_name = n.StrictTypeName.make(spec)
            impl_name = f"{name}$impl{index + 1}"
            member.name = n.Ident(impl_name, location=member.name.location)
            member.modifiers = ["private"] + [
                m for m in member.modifiers if m not in ("public", "protected")
            ]
            method = klass.declare_method(
                impl_name, impl_param_types, return_type,
                member.modifiers, decl=member,
            )
            member.method = method
            multimethod = MultiMethod(member, klass, param_types,
                                      specializers, impl_name)
            gf.add(multimethod)
            self._wire_super_sends(ctx, member, gf, multimethod, env)

        gf.check()
        dispatcher = self._make_dispatcher(ctx, gf)
        class_decl.members.append(dispatcher)
        method = klass.declare_method(
            name, param_types, return_type, ("public",), decl=dispatcher,
        )
        dispatcher.method = method

    def _wire_super_sends(self, ctx, member: n.MethodDecl,
                          gf: GenericFunction, multimethod: MultiMethod,
                          env) -> None:
        """Scope a method-local SuperSend Mayan over the body — "the
        actual translation of super sends is performed by a
        method-local Mayan defined in MultiMethod" (paper 5.2)."""
        if not isinstance(member.body, n.LazyNode):
            return
        child_env = env.child()
        SuperSend(gf, multimethod).run(child_env)
        member.body = ctx.with_env(child_env).rescope_lazy(
            member.body, child_env
        )

    def _make_dispatcher(self, ctx, gf: GenericFunction) -> n.MethodDecl:
        formal_names = [f"arg{i}" for i in range(len(gf.param_types))]
        formals = [
            n.Formal([], n.StrictTypeName.make(t), n.Ident(name))
            for t, name in zip(gf.param_types, formal_names)
        ]
        body_expr = gf.dispatch_expr(ctx, formal_names)
        if gf.return_type is VOID:
            stmts = [n.ExprStmt(body_expr), n.ReturnStmt(None)]
        else:
            stmts = [n.ReturnStmt(body_expr)]
        return n.MethodDecl(
            ["public"],
            n.StrictTypeName.make(gf.return_type),
            n.Ident(gf.name),
            formals,
            [],
            n.BlockStmts(stmts),
        )

    # ------------------------------------------------------------------
    # Unit hook: external (open-class) methods.
    # ------------------------------------------------------------------

    def _unit_hook(self, program, unit, env) -> None:
        from repro.core import CompileContext

        if not self.pending_externals:
            return
        pending = self.pending_externals
        self.pending_externals = []
        ctx = CompileContext(env)
        scope = Scope(env=env)

        groups: Dict[Tuple[str, str, int], List] = {}
        for decl, decl_env in pending:
            receiver = env.registry.resolve(
                decl.receiver.parts, env.imports, env.package
            )
            if receiver is None:
                raise MultiJavaError(
                    f"{decl.location}: unknown receiver class "
                    f"{'.'.join(decl.receiver.parts)}"
                )
            key = (receiver.name, decl.name.name, len(decl.formals))
            groups.setdefault(key, []).append((decl, receiver))

        for (_, name, _), entries in groups.items():
            receiver = entries[0][1]
            self._assemble_external(ctx, receiver, name, entries, env)

    def _assemble_external(self, ctx, klass: ClassType, name: str,
                           entries, env) -> None:
        scope = Scope(env=env)
        first = entries[0][0]
        param_types = [self._resolve(f.type_name, scope) for f in first.formals]
        return_type = self._resolve(first.return_type, scope)
        gf = GenericFunction(klass, name, param_types, return_type)
        self.generic_functions[(klass.name, name)] = gf

        compiled_members: List[n.MethodDecl] = []
        for index, (decl, _) in enumerate(entries):
            specializers = []
            impl_param_types = []
            for formal in decl.formals:
                spec_name = getattr(formal, "specializer_name", None)
                base = self._resolve(formal.type_name, scope)
                if spec_name is None:
                    specializers.append(None)
                    impl_param_types.append(base)
                else:
                    spec = self._resolve(spec_name, scope)
                    specializers.append(spec)
                    impl_param_types.append(spec)
                    formal.type_name = n.StrictTypeName.make(spec)
            impl_name = f"{name}$ext{index + 1}"
            member = n.MethodDecl(
                ["public"], decl.return_type, n.Ident(impl_name),
                decl.formals, decl.throws, decl.body,
                location=decl.location,
            )
            method = klass.declare_method(
                impl_name, impl_param_types, return_type, ("public",),
                decl=member,
            )
            member.method = method
            multimethod = MultiMethod(member, klass, param_types,
                                      specializers, impl_name, external=True)
            gf.add(multimethod)
            self._wire_super_sends(ctx, member, gf, multimethod, env)
            compiled_members.append(member)

        gf.check()
        dispatcher = self._make_dispatcher(ctx, gf)
        method = klass.declare_method(
            name, param_types, return_type, ("public",), decl=dispatcher,
        )
        dispatcher.method = method
        compiled_members.append(dispatcher)

        # Make the moved methods visible in the receiver's source form.
        if klass.decl is not None:
            klass.decl.members.extend(compiled_members)

        # Compile the bodies now (the receiver may not be a class of
        # this unit — open classes extend anything in the registry).
        root = Scope(env=env)
        class_scope = root.class_scope(klass)
        for member in compiled_members:
            method_scope = class_scope.method_scope(
                klass, False, member.method.return_type
            )
            for formal, param_type in zip(member.formals,
                                          member.method.param_types):
                formal.scope = method_scope
                method_scope.define(formal.name.name, param_type, "param",
                                    formal)
            body = member.body
            if isinstance(body, n.LazyNode):
                obs_lazy.thunk_forcing(body)
                body = body.force(method_scope)
                member.body = body
            if isinstance(body, n.BlockStmts):
                check_block(body, method_scope)

    # ------------------------------------------------------------------

    @staticmethod
    def _resolve(type_name: n.TypeName, scope: Scope):
        if type_name.scope is None:
            type_name.scope = scope
        return resolve_type_name(type_name, scope)


def install_multijava(compiler) -> MultiJava:
    """Register MultiJava with a compiler; returns the metaprogram."""
    metaprogram = MultiJava()
    compiler.provide("multijava.MultiJava", metaprogram)
    return metaprogram
