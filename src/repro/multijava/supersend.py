"""Super sends inside multimethods.

"A super call in a multimethod (to the same generic function) selects
the next applicable method, rather than the method defined by a
superclass" (paper 5.1).  The translation is a *method-local Mayan*
scoped over the multimethod's body: it matches ``super.name(args)``
with the generic function's own name (a token-value specializer) and
rewrites it to a direct call of the next-most-applicable
implementation; other super sends fall through with nextRewrite.
"""

from __future__ import annotations

from typing import List

from repro.ast import nodes as n
from repro.dispatch import Mayan
from repro.javalang import node_symbol


class SuperSend(Mayan):
    result = "MethodInvocation"

    def __init__(self, generic_function, multimethod):
        super().__init__()
        self.generic_function = generic_function
        self.multimethod = multimethod
        self.pattern = (
            f"super \\. {generic_function.name} (ArgList args)"
        )

    def expand(self, ctx, args):
        arg_list = args
        if not isinstance(arg_list, list):
            arg_list = ctx.parse_subtree(args, node_symbol("ArgList"))
        if len(arg_list) != len(self.generic_function.param_types):
            return ctx.next_rewrite()
        target = self.generic_function.next_applicable(self.multimethod)
        call_args: List[n.Expression] = []
        for value, spec in zip(arg_list, target.specializers):
            if spec is not None:
                value = n.CastExpr(n.StrictTypeName.make(spec), value)
            call_args.append(value)
        return n.MethodInvocation(
            n.MethodName(n.ThisExpr(), (target.impl_name,)),
            call_args,
            location=ctx.location,
        )
