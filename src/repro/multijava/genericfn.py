"""Generic functions, multimethods, and dispatcher generation.

``GenericFunction`` and ``MultiMethod`` mirror the classes of the same
names in the paper's implementation (section 5.2): they "store
information that is used to ensure that generic function definitions
cannot produce dispatch errors, and to compute the method of super
sends from multimethods".  ``GenericFunction.dispatch_expr`` is the
paper's figure-8 ``dispatchArg``: a recursive generation of nested
``instanceof`` conditionals, subclasses tested before superclasses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.diag import DiagnosticError
from repro.ast import nodes as n
from repro.patterns import Template
from repro.types import ClassType, Type


class MultiJavaError(DiagnosticError):
    """A MultiJava restriction or completeness violation."""

    phase = "check"


class MultiMethod:
    """One method implementation within a generic function.

    ``specializers[i]`` is the runtime class the i-th argument is
    narrowed to, or None when the argument is unspecialized (the static
    parameter type applies).
    """

    def __init__(self, decl: n.MethodDecl, owner: ClassType,
                 param_types: Sequence[Type],
                 specializers: Sequence[Optional[ClassType]],
                 impl_name: str, external: bool = False):
        self.decl = decl
        self.owner = owner
        self.param_types = list(param_types)
        self.specializers = list(specializers)
        self.impl_name = impl_name
        self.external = external

    def effective_types(self) -> List[Type]:
        return [
            spec if spec is not None else base
            for spec, base in zip(self.specializers, self.param_types)
        ]

    def more_specific_than(self, other: "MultiMethod") -> bool:
        mine = self.effective_types()
        theirs = other.effective_types()
        return all(a.is_subtype_of(b) for a, b in zip(mine, theirs)) and \
            mine != theirs

    def applicable_to(self, arg_types: Sequence[Type]) -> bool:
        return all(
            arg.is_subtype_of(eff)
            for arg, eff in zip(arg_types, self.effective_types())
        )

    def __repr__(self):
        types = ", ".join(str(t) for t in self.effective_types())
        return f"<multimethod {self.owner.simple_name}.{self.impl_name}({types})>"


_COND_TEMPLATE = Template(
    "Expression",
    "($ref instanceof $type) ? $then : $else",
    ref="Expression",
    type="TypeName",
    then="Expression",
    **{"else": "Expression"},
)


class GenericFunction:
    """All multimethods sharing a receiver class, name, and base
    parameter types."""

    def __init__(self, owner: ClassType, name: str,
                 param_types: Sequence[Type], return_type: Type):
        self.owner = owner
        self.name = name
        self.param_types = list(param_types)
        self.return_type = return_type
        self.methods: List[MultiMethod] = []

    def add(self, method: MultiMethod) -> None:
        self.methods.append(method)

    # -- static checks (paper 5.1: MultiJava's restrictions) -------------

    def check(self) -> None:
        self._check_specializers()
        self._check_completeness()
        self._check_ambiguity()

    def _check_specializers(self) -> None:
        for method in self.methods:
            for spec, base in zip(method.specializers, method.param_types):
                if spec is None:
                    continue
                if not isinstance(base, ClassType):
                    raise MultiJavaError(
                        f"{self.describe()}: only class-typed parameters "
                        f"may be specialized (got {base})"
                    )
                if not isinstance(spec, ClassType) or spec.is_interface:
                    raise MultiJavaError(
                        f"{self.describe()}: specializers must be classes "
                        f"(got {spec})"
                    )
                if not spec.is_subtype_of(base) or spec is base:
                    raise MultiJavaError(
                        f"{self.describe()}: specializer {spec.simple_name} "
                        f"must be a proper subclass of {base}"
                    )

    def _check_completeness(self) -> None:
        # "A concrete class must define or inherit multimethods for all
        # argument types": there must be a method applicable to the
        # declared (top) parameter types.
        if not any(
            all(spec is None for spec in method.specializers)
            for method in self.methods
        ):
            raise MultiJavaError(
                f"{self.describe()}: no method covers the full argument "
                f"types {[str(t) for t in self.param_types]}"
            )

    def _check_ambiguity(self) -> None:
        # Any two methods that can both apply to some call must be
        # ordered.  With class-only specializers, both apply only when
        # each argument position's types are related.
        for index, left in enumerate(self.methods):
            for right in self.methods[index + 1:]:
                if not _can_overlap(left, right):
                    continue
                if left.more_specific_than(right) or \
                        right.more_specific_than(left):
                    continue
                if left.effective_types() == right.effective_types():
                    raise MultiJavaError(
                        f"{self.describe()}: duplicate multimethods "
                        f"{left} and {right}"
                    )
                raise MultiJavaError(
                    f"{self.describe()}: ambiguous multimethods "
                    f"{left} and {right} (neither is more specific)"
                )

    def describe(self) -> str:
        return f"{self.owner.simple_name}.{self.name}"

    # -- dispatcher generation (figure 8) -----------------------------------

    def dispatch_expr(self, ctx, formal_names: List[str]) -> n.Expression:
        """Generate the dispatcher body expression.

        Mirrors figure 8: recurse over arguments left to right; at each
        specialized position, sort the observed specializers subclasses
        first and emit instanceof tests right to left (superclass cases
        innermost).
        """
        applicable = sorted(
            self.methods,
            key=lambda m: sum(1 for s in m.specializers if s is not None),
        )
        return self._dispatch_arg(ctx, formal_names, list(applicable), 0)

    def _dispatch_arg(self, ctx, formal_names: List[str],
                      applicable: List[MultiMethod], index: int) -> n.Expression:
        if index == len(formal_names) or len(applicable) == 1:
            most_specific = _most_specific(applicable)
            return self._call(most_specific, formal_names)

        # Tie-break equal-depth specializers by name so the generated
        # dispatcher source is deterministic (sets iterate in id order).
        specializers = sorted(
            {m.specializers[index] for m in applicable
             if m.specializers[index] is not None},
            key=lambda klass: (len(klass.ancestors()), klass.name),
        )
        if not specializers:
            return self._dispatch_arg(ctx, formal_names, applicable, index + 1)

        # The default branch: methods unspecialized at this position.
        default = [m for m in applicable if m.specializers[index] is None]
        ret = self._dispatch_arg(ctx, formal_names, default, index + 1)

        # Generate superclass cases first (right to left), so subclasses
        # are tested before superclasses.
        for spec in specializers:
            subset = [
                m for m in applicable
                if m.specializers[index] is None
                or spec.is_subtype_of(m.specializers[index])
            ]
            ref = n.NameExpr((formal_names[index],))
            ret = ctx.instantiate(
                _COND_TEMPLATE,
                ref=ref,
                type=n.StrictTypeName.make(spec),
                then=self._dispatch_arg(ctx, formal_names, subset, index + 1),
                **{"else": ret},
            )
        return ret

    def _call(self, method: MultiMethod, formal_names: List[str]) -> n.Expression:
        args: List[n.Expression] = []
        for name, spec, base in zip(formal_names, method.specializers,
                                    method.param_types):
            arg: n.Expression = n.NameExpr((name,))
            if spec is not None:
                arg = n.CastExpr(n.StrictTypeName.make(spec), arg)
            args.append(arg)
        return n.MethodInvocation(
            n.MethodName(n.ThisExpr(), (method.impl_name,)),
            args,
        )

    # -- super sends ----------------------------------------------------------

    def next_applicable(self, current: MultiMethod) -> MultiMethod:
        """The next-most-applicable method after ``current``: used to
        translate super sends in multimethods (paper 5.1: "a super call
        in a multimethod selects the next applicable method")."""
        candidates = [
            m for m in self.methods
            if m is not current and current.more_specific_than(m)
        ]
        if not candidates:
            raise MultiJavaError(
                f"{self.describe()}: no next applicable method after "
                f"{current}"
            )
        return _most_specific(candidates)


def _most_specific(methods: List[MultiMethod]) -> MultiMethod:
    best = methods[0]
    for method in methods[1:]:
        if method.more_specific_than(best):
            best = method
    return best


def _can_overlap(left: MultiMethod, right: MultiMethod) -> bool:
    for a, b in zip(left.effective_types(), right.effective_types()):
        if not (a.is_subtype_of(b) or b.is_subtype_of(a)):
            return False
    return True
