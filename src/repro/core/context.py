"""The compile context: ParserContext implementation.

One context = one (environment, scope) pair.  It routes reductions to
the dispatcher, recursively parses subtree tokens (eagerly or lazily),
and is what Mayan bodies receive (wrapped in MayanCtx) — so it also
carries the convenience API metaprograms use: template instantiation,
scope access, fresh names.
"""

from __future__ import annotations

from typing import Optional

from repro.ast import nodes as n
from repro.grammar import Nonterminal, Production
from repro.lalr import Parser, ParserContext
from repro.lexer import Location, Token
from repro.obs import lazy as obs_lazy
from repro.typecheck import Scope
from repro.core.env import CompileEnv, MayaError


class CompileContext(ParserContext):
    """Parsing/expansion context for one environment and scope."""

    def __init__(self, env: CompileEnv, scope: Optional[Scope] = None):
        self.env = env
        self.scope = scope if scope is not None else Scope(env=env)
        # The dispatcher tree's provenance stack, cached so reduce()
        # pays one truthiness check per reduction when no expansion is
        # active (the common case).
        self._origins = env.dispatcher.root.origin_stack

    # -- derived contexts ------------------------------------------------

    def with_env(self, env: CompileEnv) -> "CompileContext":
        return CompileContext(env, self.scope)

    def with_scope(self, scope: Scope) -> "CompileContext":
        return CompileContext(self.env, scope)

    def child_scope(self) -> "CompileContext":
        return CompileContext(self.env, self.scope.child())

    # -- ParserContext ------------------------------------------------------

    def reduce(self, production: Production, values, location: Location):
        value = self.env.dispatcher.dispatch(production, values, location, self)
        if isinstance(value, n.Node):
            if value.syntax is None:
                value.syntax = (production, tuple(values))
            if value.scope is None:
                value.scope = self.scope
            if value.location is Location.UNKNOWN:
                value.location = location
            # Provenance: anything reduced while a Mayan activation is
            # live was produced by that expansion.
            if self._origins and value.origin is None:
                value.origin = self._origins[-1]
        return value

    def parse_subtree(self, tree, content_symbol):
        from repro.patterns.templates import PseudoToken

        if isinstance(tree, PseudoToken):
            return tree.value
        name = content_symbol.name if isinstance(content_symbol, Nonterminal) \
            else str(content_symbol)
        tokens = tree.children if tree.children is not None else ()
        if name == "BlockStmts":
            from repro.core.drivers import parse_block_stmts

            return parse_block_stmts(self.child_scope(), list(tokens))
        if name == "MemberList":
            from repro.core.drivers import parse_members

            return parse_members(self, list(tokens))
        parser = Parser(self.env.tables(), self)
        value, _ = parser.parse(name, list(tokens))
        return value

    def lazy_subtree(self, tree, content_symbol):
        from repro.patterns.templates import PseudoToken

        if isinstance(tree, PseudoToken):
            return tree.value
        lazy = n.LazyNode(tree, content_symbol, location=tree.location)
        env = self.env  # captured: the parse environment at creation

        def parse(scope):
            ctx = CompileContext(env, scope if scope is not None else self.scope)
            return ctx.parse_subtree(tree, content_symbol)

        lazy._parse = parse
        return obs_lazy.thunk_created(lazy)

    # -- use handling -----------------------------------------------------------

    def make_use_statement(self, parts, location: Location) -> n.UseStmt:
        metaprogram = self.env.find_metaprogram(parts)
        stmt = n.UseStmt(metaprogram, [], location=location)
        # The block driver fills the body with the following statements;
        # Mayan-built UseStmts (ctx.use_in) are already complete.
        stmt.pending = True
        return stmt

    def make_use_member(self, parts, location: Location):
        metaprogram = self.env.find_metaprogram(parts)
        marker = n.UseDecl(tuple(parts), location=location)
        marker.metaprogram = metaprogram
        return marker

    # -- services for Mayan bodies -------------------------------------------

    @property
    def registry(self):
        return self.env.registry

    def declare_local(self, decl: n.LocalVarDecl) -> None:
        """Bind a local declaration into the current scope (used by the
        block driver so later statements see earlier declarations)."""
        from repro.typecheck import resolve_type_name
        from repro.types import array_of

        if decl.type_name.scope is None:
            decl.type_name.scope = self.scope
        declared = resolve_type_name(decl.type_name, self.scope)
        for ident, dims, _ in decl.bindings():
            var_type = array_of(declared, dims) if dims else declared
            self.scope.define(ident.name, var_type, "local", decl)

    def instantiate(self, template, **values):
        """Instantiate a Template in this context."""
        return template.instantiate(self, **values)

    def use_in(self, metaprogram, lazy_node: n.LazyNode) -> n.UseStmt:
        """Scope a metaprogram over a lazy body: build a UseStmt whose
        body parses in a child environment with the metaprogram imported
        (how Typedef exposes its local Subst Mayan, paper figure 3)."""
        child_env = self.env.child()
        metaprogram.run(child_env)
        rebound = self.rescope_lazy(lazy_node, child_env)
        return n.UseStmt(metaprogram, [rebound])

    def rescope_lazy(self, lazy_node: n.LazyNode, env: CompileEnv) -> n.LazyNode:
        """A copy of a lazy node that will parse under another environment."""
        if lazy_node.tree_token is None:
            return lazy_node  # template-made thunk; already scoped
        rebound = n.LazyNode(lazy_node.tree_token, lazy_node.symbol,
                             location=lazy_node.location)

        def parse(scope, _tree=lazy_node.tree_token,
                  _symbol=lazy_node.symbol, _env=env):
            ctx = CompileContext(_env, scope if scope is not None else self.scope)
            return ctx.parse_subtree(_tree, _symbol)

        rebound._parse = parse
        return obs_lazy.thunk_created(rebound)

    def error(self, message: str, location: Location = Location.UNKNOWN):
        return MayaError(message, location=location)

    def resolve_type(self, name: str):
        """Resolve a dotted type name string against this environment."""
        parts = tuple(name.split("."))
        dims = 0
        while parts[-1].endswith("[]"):
            parts = parts[:-1] + (parts[-1][:-2],)
            dims += 1
        return self.env.registry.resolve_type(parts, dims, self.env.imports,
                                              self.env.package)
