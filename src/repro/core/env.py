"""Compilation environments.

A CompileEnv bundles everything a compilation sees: the (extensible)
grammar, the type registry, the Mayan dispatcher, the metaprogram
namespace for ``use``, and the current file's imports/package.  ``use``
scoping makes *child* environments whose dispatcher imports shadow the
parent without leaking.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.diag import Diagnostic, DiagnosticEngine, DiagnosticError, SourceSpan
from repro.dispatch import Dispatcher, MetaProgram
from repro.grammar import Grammar, Production
from repro.javalang import BASE_ACTIONS, base_grammar
from repro.lalr.tables import ParseTables, tables_for
from repro.types.builtins import standard_registry


class MayaError(DiagnosticError):
    """A compilation error raised by the driver."""

    phase = "compile"

    def __init__(self, message: str, location=None):
        super().__init__(f"{location}: {message}" if location is not None
                         else message)
        self.location = location
        if location is not None:
            self.diagnostic = Diagnostic(
                message, phase=self.phase,
                span=SourceSpan.from_location(location), cause=self,
            )


class CompileEnv:
    """One compilation's environment (lexically scoped via child())."""

    def __init__(self, grammar: Optional[Grammar] = None, registry=None,
                 dispatcher: Optional[Dispatcher] = None,
                 parent: Optional["CompileEnv"] = None):
        if parent is not None:
            self.grammar = parent.grammar
            self.registry = parent.registry
            self.dispatcher = parent.dispatcher.child()
            self.metaprograms = parent.metaprograms
            self.imports = parent.imports
            self.package = parent.package
            self.class_hooks = parent.class_hooks
            self.unit_hooks = parent.unit_hooks
            self.diag = parent.diag
        else:
            self.grammar = grammar if grammar is not None \
                else base_grammar().copy("maya")
            self.registry = registry if registry is not None \
                else standard_registry()
            self.dispatcher = dispatcher if dispatcher is not None \
                else Dispatcher(BASE_ACTIONS)
            self.metaprograms: Dict[str, MetaProgram] = {}
            self.imports: List[Tuple[Tuple[str, ...], bool]] = []
            self.package: str = ""
            self.class_hooks: List = []
            self.unit_hooks: List = []
            # One diagnostic engine per compilation tree: children share
            # the root's, so every phase reports into the same stream.
            self.diag = DiagnosticEngine()
        self.parent = parent
        # Per-env table memo: skips even the fingerprint/cache lookup
        # while the grammar version is unchanged (the common case —
        # drivers refresh tables between every top-level element).
        self._tables: Optional[ParseTables] = None
        self._tables_version = -1

    # -- scoping ------------------------------------------------------------

    def child(self) -> "CompileEnv":
        return CompileEnv(parent=self)

    @classmethod
    def fresh_session(cls, *, fuel: Optional[int] = None,
                      max_errors: Optional[int] = None,
                      deadline: Optional[float] = None) -> "CompileEnv":
        """A fully isolated per-session environment (the daemon's unit
        of tenant isolation): its own grammar copy, type registry,
        dispatcher, and diagnostic engine, configured with the
        session's guard-rail budgets.  Nothing mutable is shared with
        any other session — only the process-wide *content-keyed*
        caches (LALR tables by grammar fingerprint) are reachable, and
        those are immutable per key.

        ``deadline`` is a ``time.monotonic()`` timestamp; the engine's
        cooperative checks make it compose with the fuel/step budgets
        (whichever trips first ends the compile with a diagnostic).
        """
        env = cls()
        if fuel is not None:
            env.diag.max_expansion_depth = max(1, fuel)
        if max_errors is not None:
            env.diag.max_errors = max(1, max_errors)
        env.diag.deadline = deadline
        return env

    # -- parsing -------------------------------------------------------------

    def tables(self) -> ParseTables:
        """Current parse tables (regenerated when the grammar grows)."""
        grammar = self.grammar
        if self._tables is None or self._tables_version != grammar.version:
            self._tables = tables_for(grammar)
            self._tables_version = grammar.version
        return self._tables

    def add_production(self, result: str, pattern: str,
                       tag: Optional[str] = None) -> Production:
        """Declare a production (the paper's ``abstract ... syntax``)."""
        from repro.patterns import production_from_pattern

        return production_from_pattern(self.grammar, result, pattern, tag)

    # -- metaprogram namespace --------------------------------------------------

    def provide(self, name: str, metaprogram) -> None:
        """Register a MetaProgram under a qualified name for ``use``."""
        if isinstance(metaprogram, type):
            metaprogram = metaprogram()
        metaprogram.use_name = name
        self.metaprograms[name] = metaprogram
        simple = name.rsplit(".", 1)[-1]
        self.metaprograms.setdefault(simple, metaprogram)

    def find_metaprogram(self, parts) -> MetaProgram:
        name = ".".join(parts)
        metaprogram = self.metaprograms.get(name)
        if metaprogram is None:
            raise MayaError(f"use: unknown metaprogram {name!r}")
        return metaprogram

    def use(self, name: str) -> "CompileEnv":
        """Import a metaprogram into a fresh child environment."""
        child = self.child()
        child.find_metaprogram(name.split(".")).run(child)
        return child
