"""Driver loops: statement lists, member lists, compilation units.

These parse one element at a time with ``allow_prefix``, refreshing the
parse tables between elements.  That is what lets a ``use`` directive
extend the grammar and dispatcher for the *following* syntax — "syntax
that follows an imported Mayan must be parsed lazily, after the Mayan
defines any new productions" (paper section 1).
"""

from __future__ import annotations

from typing import List

from repro.ast import nodes as n
from repro.lalr import ParseError, Parser
from repro.lexer import Token
from repro.obs.metrics import REGISTRY

#: Elements parsed one-at-a-time by the incremental driver loops — the
#: work the drivers *did* do eagerly, the denominator to the laziness
#: profiler's never-forced thunks.  Children bound once; each driver
#: iteration pays a single integer add.
_DRIVER_ELEMENTS = REGISTRY.counter(
    "maya_driver_elements_total",
    "Elements parsed by the incremental drivers, by driver loop.",
    ("driver",))
_STMT_ELEMENTS = _DRIVER_ELEMENTS.labels("block_stmts")
_MEMBER_ELEMENTS = _DRIVER_ELEMENTS.labels("members")
_DECL_ELEMENTS = _DRIVER_ELEMENTS.labels("compilation_unit")


def _skip_to_boundary(tokens: List[Token], position: int) -> int:
    """Panic-mode recovery: consume at least one token, then everything
    up to (and including) the next ``;`` or brace group.

    The stream lexer has already matched delimiters, so a ``{...}``
    body is a single BraceTree token here — skipping it lands exactly
    on the next declaration."""
    position += 1
    while position < len(tokens):
        kind = tokens[position].kind
        position += 1
        if kind in (";", "BraceTree"):
            break
    return position


def _parse_error_recovery(ctx, error: ParseError) -> bool:
    """Absorb a declaration-level parse error into the environment's
    diagnostic engine; False means fail fast (no engine / over budget)."""
    engine = getattr(ctx.env, "diag", None)
    return engine is not None and engine.try_absorb(error, "parse")


def parse_block_stmts(ctx, tokens: List[Token]) -> n.BlockStmts:
    """Parse a statement list; ``use`` rescopes the remainder."""
    stmts: List[object] = []
    position = 0
    while position < len(tokens):
        parser = Parser(ctx.env.tables(), ctx)
        stmt, position = parser.parse("Statement", tokens,
                                      allow_prefix=True, offset=position)
        _STMT_ELEMENTS.value += 1
        if isinstance(stmt, n.UseStmt) and getattr(stmt, "pending", False):
            stmt.pending = False
            child_env = ctx.env.child()
            stmt.metaprogram.run(child_env)
            child_ctx = ctx.with_env(child_env)
            rest = parse_block_stmts(child_ctx, tokens[position:])
            stmt.body = rest.stmts
            stmts.append(stmt)
            position = len(tokens)
            break
        if isinstance(stmt, n.LocalVarDecl):
            ctx.declare_local(stmt)
        stmts.append(stmt)
    return n.BlockStmts(stmts)


def parse_members(ctx, tokens: List[Token]) -> List[object]:
    """Parse a class-body member list; ``use`` rescopes the remainder."""
    members: List[object] = []
    position = 0
    while position < len(tokens):
        parser = Parser(ctx.env.tables(), ctx)
        try:
            member, position = parser.parse("MemberDecl", tokens,
                                            allow_prefix=True, offset=position)
        except ParseError as error:
            if not _parse_error_recovery(ctx, error):
                raise
            position = _skip_to_boundary(tokens, position)
            continue
        _MEMBER_ELEMENTS.value += 1
        if isinstance(member, n.UseDecl):
            child_env = ctx.env.child()
            member.metaprogram.run(child_env)
            ctx = ctx.with_env(child_env)
        members.append(member)
    return members


def parse_compilation_unit(ctx, tokens: List[Token]) -> n.CompilationUnit:
    """Parse a whole source file, top-level declaration at a time."""
    package = None
    imports: List[n.ImportDecl] = []
    types: List[object] = []
    position = 0
    while position < len(tokens):
        parser = Parser(ctx.env.tables(), ctx)
        try:
            decl, position = parser.parse("Declaration", tokens,
                                          allow_prefix=True, offset=position)
        except ParseError as error:
            if not _parse_error_recovery(ctx, error):
                raise
            position = _skip_to_boundary(tokens, position)
            continue
        _DECL_ELEMENTS.value += 1
        if isinstance(decl, n.PackageDecl):
            package = decl
            ctx.env.package = ".".join(decl.parts)
        elif isinstance(decl, n.ImportDecl):
            imports.append(decl)
            ctx.env.imports.append((tuple(decl.parts), decl.on_demand))
        elif isinstance(decl, n.UseDecl):
            metaprogram = getattr(decl, "metaprogram", None)
            if metaprogram is None:
                metaprogram = ctx.env.find_metaprogram(decl.parts)
            child_env = ctx.env.child()
            metaprogram.run(child_env)
            ctx = ctx.with_env(child_env)
            types.append(decl)
        else:
            types.append(decl)
    unit = n.CompilationUnit(package, imports, types)
    unit.final_ctx = ctx
    return unit
