"""The Maya compiler driver (mayac).

Pipeline (paper figure 4): file reader -> class shaper -> class
compiler, with the parser invoked in all three stages to incrementally
refine ASTs, and the Mayan dispatcher invoked on every reduction.
"""

from repro.core.env import CompileEnv, MayaError
from repro.core.context import CompileContext
from repro.core.compiler import CompiledProgram, MayaCompiler

__all__ = [
    "CompileContext",
    "CompileEnv",
    "CompiledProgram",
    "MayaCompiler",
    "MayaError",
]
